//! Console-table and CSV reporting for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use fl_sim::history::TrainingHistory;
use mec_sim::units::Seconds;

/// Renders a simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use helcfl_bench::report::ascii_table;
///
/// let t = ascii_table(
///     &["scheme", "accuracy"],
///     &[vec!["helcfl".into(), "0.85".into()]],
/// );
/// assert!(t.contains("scheme"));
/// assert!(t.contains("helcfl"));
/// ```
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "| {:width$} ", h, width = widths[i]);
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Formats a `time_to_accuracy` result the way Table I prints it:
/// minutes with two decimals, or the paper's ✗ when unreachable.
pub fn table1_cell(value: Option<Seconds>) -> String {
    match value {
        Some(t) => format!("{:.2}min", t.minutes()),
        None => "✗".to_string(),
    }
}

/// Writes every history's per-round records into `dir`, two files per
/// scheme: `<prefix>_<scheme>.csv` (spreadsheets) and
/// `<prefix>_<scheme>.jsonl` (one machine-readable JSON object per
/// round, concatenation-friendly with the telemetry trace files).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_histories(
    dir: &Path,
    prefix: &str,
    histories: &[TrainingHistory],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    for h in histories {
        fs::write(dir.join(format!("{prefix}_{}.csv", h.scheme())), h.to_csv())?;
        fs::write(dir.join(format!("{prefix}_{}.jsonl", h.scheme())), h.to_jsonl())?;
    }
    Ok(())
}

/// Downsamples an accuracy curve to at most `n` points for console
/// sparklines (keeps first and last).
pub fn downsample(curve: &[(usize, f64)], n: usize) -> Vec<(usize, f64)> {
    if n == 0 || curve.len() <= n {
        return curve.to_vec();
    }
    let stride = (curve.len() - 1) as f64 / (n - 1) as f64;
    (0..n).map(|i| curve[(i as f64 * stride).round() as usize]).collect()
}

/// Renders an accuracy curve as a unicode sparkline.
pub fn sparkline(curve: &[(usize, f64)]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    curve
        .iter()
        .map(|&(_, a)| {
            let idx = ((a.clamp(0.0, 1.0)) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns_columns() {
        let t = ascii_table(
            &["a", "long-header"],
            &[
                vec!["xxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // rule, header, rule, 2 rows, rule.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
    }

    #[test]
    fn table1_cell_formats_minutes_and_cross() {
        assert_eq!(table1_cell(Some(Seconds::from_minutes(6.82))), "6.82min");
        assert_eq!(table1_cell(None), "✗");
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let curve: Vec<(usize, f64)> = (0..100).map(|i| (i, i as f64 / 100.0)).collect();
        let d = downsample(&curve, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], curve[0]);
        assert_eq!(d[4], curve[99]);
        // Short curves pass through unchanged.
        assert_eq!(downsample(&curve[..3], 5), curve[..3].to_vec());
    }

    #[test]
    fn sparkline_maps_accuracy_to_bars() {
        let s = sparkline(&[(0, 0.0), (1, 1.0)]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn write_histories_creates_one_file_per_scheme() {
        let dir = std::env::temp_dir().join("helcfl_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let h1 = TrainingHistory::new("alpha");
        let h2 = TrainingHistory::new("beta");
        write_histories(&dir, "fig2_iid", &[h1, h2]).unwrap();
        assert!(dir.join("fig2_iid_alpha.csv").exists());
        assert!(dir.join("fig2_iid_beta.csv").exists());
        assert!(dir.join("fig2_iid_alpha.jsonl").exists());
        assert!(dir.join("fig2_iid_beta.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
