//! Perf-regression gating over `BENCH_round_engine.json` reports.
//!
//! [`gate`] diffs a candidate bench report against a committed
//! baseline and fails when throughput, telemetry overhead, or
//! per-round latency regress beyond the configured tolerances. The
//! comparison is deliberately coarse — bench numbers move with host
//! load — so the defaults only catch *gross* regressions; CI pins even
//! looser ones (the committed baseline was produced on different
//! hardware at full scale).
//!
//! Also home to [`percentile_nearest_rank`], the exact (not
//! histogram-approximated) percentile the bench harness uses to derive
//! per-round p50/p99 from a traced run.

use helcfl_telemetry::json::{parse, JsonValue};

/// Tolerances for [`gate`]. All are "how much worse may the candidate
/// be" — improvements always pass.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Max allowed drop in rounds/sec, percent of baseline.
    pub max_rps_drop_pct: f64,
    /// Max allowed growth in per-round p50/p99 latency, percent.
    pub max_latency_growth_pct: f64,
    /// Max allowed growth in telemetry overhead, percentage points.
    pub max_overhead_pp: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { max_rps_drop_pct: 30.0, max_latency_growth_pct: 50.0, max_overhead_pp: 5.0 }
    }
}

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Dotted path of the value (`"round_engine.serial.rounds_per_sec"`).
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// The worst candidate value that still passes.
    pub limit: f64,
    /// Whether the candidate is within the limit.
    pub passed: bool,
}

/// Outcome of a [`gate`] comparison.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every quantity compared.
    pub checks: Vec<GateCheck>,
    /// Non-fatal observations (skipped sections, scenario mismatch).
    pub notes: Vec<String>,
}

impl GateReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Multi-line human summary: verdict, per-check lines, notes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let failed = self.checks.iter().filter(|c| !c.passed).count();
        let _ = writeln!(
            out,
            "gate: {} — {} checks, {} failed",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.len(),
            failed
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  [{}] {:<44} baseline {:>12.4} candidate {:>12.4} (limit {:>12.4})",
                if c.passed { "ok " } else { "BAD" },
                c.name,
                c.baseline,
                c.candidate,
                c.limit
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

fn lookup<'a>(root: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut cur = root;
    for key in path.split('.') {
        cur = cur.get(key)?;
    }
    Some(cur)
}

fn lookup_f64(root: &JsonValue, path: &str) -> Option<f64> {
    lookup(root, path).and_then(JsonValue::as_f64)
}

/// Compares a candidate bench report against a baseline.
///
/// Checked quantities (each skipped with a note when absent from
/// either report, so gating old baselines without a `latency` section
/// still works):
///
/// * `round_engine.serial.rounds_per_sec` and
///   `round_engine.parallel.rounds_per_sec` — may drop at most
///   [`GateConfig::max_rps_drop_pct`] percent;
/// * `round_engine.telemetry.overhead_pct` and
///   `round_engine.latency.events_overhead_pct` — may grow at most
///   [`GateConfig::max_overhead_pp`] percentage points. Both sides are
///   clamped at zero first: a negative overhead (the metered run beat
///   the untraced one) is host noise, and letting it into the limit
///   would gate future candidates against a below-zero baseline;
/// * `round_engine.latency.p50_us` and `…p99_us` — may grow at most
///   [`GateConfig::max_latency_growth_pct`] percent.
///
/// A scenario mismatch (`num_devices` / `max_rounds` / `seed` differ)
/// is reported as a note, not a failure: CI compares a `--fast`
/// candidate against the committed full-scale baseline on purpose,
/// relying on the generous tolerances it passes in.
///
/// # Errors
///
/// Returns `Err` when either input is not valid JSON or is not a
/// `round_engine` bench report.
pub fn gate(
    baseline_text: &str,
    candidate_text: &str,
    cfg: &GateConfig,
) -> Result<GateReport, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: invalid JSON: {e}"))?;
    let candidate =
        parse(candidate_text).map_err(|e| format!("candidate: invalid JSON: {e}"))?;
    for (side, report) in [("baseline", &baseline), ("candidate", &candidate)] {
        if lookup(report, "bench").and_then(JsonValue::as_str) != Some("round_engine") {
            return Err(format!("{side}: not a round_engine bench report"));
        }
    }

    let mut report = GateReport::default();
    for key in ["num_devices", "max_rounds", "seed"] {
        let path = format!("scenario.{key}");
        let (b, c) = (lookup_f64(&baseline, &path), lookup_f64(&candidate, &path));
        if b != c {
            report.notes.push(format!(
                "scenario mismatch: {key} baseline={b:?} candidate={c:?} — \
                 comparing different workloads"
            ));
        }
    }

    let mut check = |path: &str,
                     limit_of: &dyn Fn(f64) -> f64,
                     higher_is_worse: bool,
                     clamp: bool| {
        match (lookup_f64(&baseline, path), lookup_f64(&candidate, path)) {
            (Some(b), Some(c)) => {
                // Overheads recorded by older harnesses can be
                // negative (timing noise); gate on the clamped values.
                let (b, c) = if clamp { (b.max(0.0), c.max(0.0)) } else { (b, c) };
                let limit = limit_of(b);
                let passed = if higher_is_worse { c <= limit } else { c >= limit };
                report.checks.push(GateCheck {
                    name: path.to_string(),
                    baseline: b,
                    candidate: c,
                    limit,
                    passed,
                });
            }
            _ => report.notes.push(format!("skipped {path}: absent from one report")),
        }
    };

    let rps_floor = 1.0 - cfg.max_rps_drop_pct / 100.0;
    check("round_engine.serial.rounds_per_sec", &|b| b * rps_floor, false, false);
    check("round_engine.parallel.rounds_per_sec", &|b| b * rps_floor, false, false);
    check(
        "round_engine.telemetry.overhead_pct",
        &|b| b + cfg.max_overhead_pp,
        true,
        true,
    );
    check(
        "round_engine.latency.events_overhead_pct",
        &|b| b + cfg.max_overhead_pp,
        true,
        true,
    );
    let lat_ceil = 1.0 + cfg.max_latency_growth_pct / 100.0;
    check("round_engine.latency.p50_us", &|b| b * lat_ceil, true, false);
    check("round_engine.latency.p99_us", &|b| b * lat_ceil, true, false);

    Ok(report)
}

/// Tolerances for [`gate_kernels`]. Kernel throughput is far noisier
/// than whole-engine throughput (individual timings are microseconds,
/// and CI hosts are shared), so the default is deliberately loose —
/// it catches a kernel falling off a cliff, not a few-percent drift.
#[derive(Debug, Clone, Copy)]
pub struct KernelGateConfig {
    /// Max allowed drop in per-kernel GFLOP/s, percent of baseline.
    pub max_gflops_drop_pct: f64,
}

impl Default for KernelGateConfig {
    fn default() -> Self {
        Self { max_gflops_drop_pct: 50.0 }
    }
}

/// Compares a candidate `BENCH_kernels.json` report (from the
/// `bench_kernels` bin) against a baseline: every kernel present in
/// both reports may lose at most
/// [`KernelGateConfig::max_gflops_drop_pct`] percent of its baseline
/// GFLOP/s. Kernels present on only one side are noted, not failed,
/// so adding or retiring a bench shape never breaks the gate; a
/// `smoke` flag mismatch is likewise a note (CI gates a `--smoke`
/// candidate against the committed full-budget baseline on purpose).
///
/// # Errors
///
/// Returns `Err` when either input is not valid JSON or is not a
/// `kernels` bench report.
pub fn gate_kernels(
    baseline_text: &str,
    candidate_text: &str,
    cfg: &KernelGateConfig,
) -> Result<GateReport, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: invalid JSON: {e}"))?;
    let candidate =
        parse(candidate_text).map_err(|e| format!("candidate: invalid JSON: {e}"))?;
    let kernels_of = |side: &str, report: &JsonValue| -> Result<Vec<(String, f64)>, String> {
        if report.get("bench").and_then(JsonValue::as_str) != Some("kernels") {
            return Err(format!("{side}: not a kernels bench report"));
        }
        let JsonValue::Array(items) = report
            .get("kernels")
            .ok_or_else(|| format!("{side}: missing kernels array"))?
        else {
            return Err(format!("{side}: kernels is not an array"));
        };
        items
            .iter()
            .map(|item| {
                let name = item
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{side}: kernel entry without a name"))?;
                let gflops = item
                    .get("gflops")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("{side}: kernel {name} has no gflops"))?;
                Ok((name.to_string(), gflops))
            })
            .collect()
    };
    let base_kernels = kernels_of("baseline", &baseline)?;
    let cand_kernels = kernels_of("candidate", &candidate)?;

    let mut report = GateReport::default();
    let smoke = |r: &JsonValue| r.get("smoke").and_then(JsonValue::as_bool);
    if smoke(&baseline) != smoke(&candidate) {
        report.notes.push(format!(
            "smoke mismatch: baseline={:?} candidate={:?} — different measurement budgets",
            smoke(&baseline),
            smoke(&candidate)
        ));
    }
    let floor = 1.0 - cfg.max_gflops_drop_pct / 100.0;
    for (name, b) in &base_kernels {
        match cand_kernels.iter().find(|(n, _)| n == name) {
            Some((_, c)) => {
                let limit = b * floor;
                report.checks.push(GateCheck {
                    name: format!("kernels.{name}.gflops"),
                    baseline: *b,
                    candidate: *c,
                    limit,
                    passed: *c >= limit,
                });
            }
            None => report.notes.push(format!("kernel {name}: absent from candidate")),
        }
    }
    for (name, _) in &cand_kernels {
        if !base_kernels.iter().any(|(n, _)| n == name) {
            report.notes.push(format!("kernel {name}: absent from baseline"));
        }
    }
    Ok(report)
}

/// Tolerances for [`gate_population`]. Latency percentiles at small
/// populations are single-digit microseconds, so relative noise is
/// large; the defaults catch a complexity-class regression (the
/// indexed selector silently falling back to rescans), not scheduler
/// jitter.
#[derive(Debug, Clone, Copy)]
pub struct PopulationGateConfig {
    /// Max allowed growth in per-round p50/p99 latency, percent.
    pub max_latency_growth_pct: f64,
    /// Max allowed growth in resident bytes per device, percent.
    pub max_bytes_growth_pct: f64,
    /// Absolute ceiling on the digest-trace overhead of a round
    /// (`trace_overhead_pct`), percent. Unlike the growth checks this
    /// is not relative to the baseline: the contract is "watching a
    /// round costs under this much", whatever it cost last time.
    pub max_trace_overhead_pct: f64,
    /// Smallest population size the relative-overhead ceiling applies
    /// to. Digest tracing costs a fixed amount per round, so at small
    /// `Q` the ratio against a microsecond-scale round is all fixed
    /// cost and no signal; below this size only the absolute
    /// `trace_cost_us_per_round` growth check runs.
    pub min_trace_overhead_q: u64,
    /// Floor on the `trace_cost_us_per_round` growth limit, µs. The
    /// cost is a *difference* of two timings, so a lightly-loaded
    /// baseline run can legitimately record ~0 µs at a size where the
    /// rounds dwarf the tracing cost — and a multiplicative limit on
    /// zero would fail any positive candidate. Limits never drop
    /// below this; baselines above it are unaffected.
    pub trace_cost_floor_us: f64,
}

impl Default for PopulationGateConfig {
    fn default() -> Self {
        Self {
            max_latency_growth_pct: 200.0,
            max_bytes_growth_pct: 25.0,
            max_trace_overhead_pct: 10.0,
            min_trace_overhead_q: 1_000_000,
            trace_cost_floor_us: 120.0,
        }
    }
}

/// Compares a candidate `BENCH_population.json` report (from the
/// `bench_population` bin) against a baseline, matching per-size
/// entries by `q`:
///
/// * `population.q{q}.round_p50_us` and `…round_p99_us` — may grow at
///   most [`PopulationGateConfig::max_latency_growth_pct`] percent;
/// * `population.q{q}.bytes_per_device` — may grow at most
///   [`PopulationGateConfig::max_bytes_growth_pct`] percent;
/// * `population.q{q}.trace_cost_us_per_round` — the absolute
///   per-round cost of digest tracing may grow at most
///   [`PopulationGateConfig::max_latency_growth_pct`] percent (it is
///   a latency of the same flavor), with the limit floored at
///   [`PopulationGateConfig::trace_cost_floor_us`] so a ~0 µs
///   baseline cannot fail every positive candidate. Checked at every
///   size; absent from either side (an old harness) is a note;
/// * `population.q{q}.trace_overhead_pct` — for sizes at or above
///   [`PopulationGateConfig::min_trace_overhead_q`], must stay under
///   the absolute [`PopulationGateConfig::max_trace_overhead_pct`]
///   ceiling. A candidate entry without the field is a note; a
///   baseline without one still gates the candidate against the fixed
///   ceiling. Smaller sizes skip this check silently — there the
///   ratio is all fixed per-round cost and no signal.
///
/// Sizes present on only one side are noted, not failed (a `--smoke`
/// candidate legitimately stops at `Q = 10^5` while the committed
/// baseline sweeps to `10^7`); a `smoke` flag mismatch is likewise a
/// note.
///
/// # Errors
///
/// Returns `Err` when either input is not valid JSON or is not a
/// `population` bench report.
pub fn gate_population(
    baseline_text: &str,
    candidate_text: &str,
    cfg: &PopulationGateConfig,
) -> Result<GateReport, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: invalid JSON: {e}"))?;
    let candidate =
        parse(candidate_text).map_err(|e| format!("candidate: invalid JSON: {e}"))?;
    // (q, p50, p99, bytes/device, trace overhead %, trace µs/round —
    // the trace fields are optional so reports from harnesses
    // predating digest tracing still gate)
    type Entry = (u64, f64, f64, f64, Option<f64>, Option<f64>);
    let entries_of = |side: &str, report: &JsonValue| -> Result<Vec<Entry>, String> {
        if report.get("bench").and_then(JsonValue::as_str) != Some("population") {
            return Err(format!("{side}: not a population bench report"));
        }
        let JsonValue::Array(items) = report
            .get("populations")
            .ok_or_else(|| format!("{side}: missing populations array"))?
        else {
            return Err(format!("{side}: populations is not an array"));
        };
        items
            .iter()
            .map(|item| {
                let get = |key: &str| {
                    item.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                        format!("{side}: population entry without a numeric {key}")
                    })
                };
                Ok((
                    get("q")? as u64,
                    get("round_p50_us")?,
                    get("round_p99_us")?,
                    get("bytes_per_device")?,
                    item.get("trace_overhead_pct").and_then(JsonValue::as_f64),
                    item.get("trace_cost_us_per_round").and_then(JsonValue::as_f64),
                ))
            })
            .collect()
    };
    let base_entries = entries_of("baseline", &baseline)?;
    let cand_entries = entries_of("candidate", &candidate)?;

    let mut report = GateReport::default();
    let smoke = |r: &JsonValue| r.get("smoke").and_then(JsonValue::as_bool);
    if smoke(&baseline) != smoke(&candidate) {
        report.notes.push(format!(
            "smoke mismatch: baseline={:?} candidate={:?} — different sweep depths",
            smoke(&baseline),
            smoke(&candidate)
        ));
    }
    let lat_ceil = 1.0 + cfg.max_latency_growth_pct / 100.0;
    let bytes_ceil = 1.0 + cfg.max_bytes_growth_pct / 100.0;
    for &(q, b_p50, b_p99, b_bytes, b_trace, b_cost) in &base_entries {
        let Some(&(_, c_p50, c_p99, c_bytes, c_trace, c_cost)) =
            cand_entries.iter().find(|(cq, ..)| *cq == q)
        else {
            report.notes.push(format!("population q={q}: absent from candidate"));
            continue;
        };
        let mut check = |name: &str, b: f64, c: f64, limit: f64| {
            report.checks.push(GateCheck {
                name: format!("population.q{q}.{name}"),
                baseline: b,
                candidate: c,
                limit,
                passed: c <= limit,
            });
        };
        check("round_p50_us", b_p50, c_p50, b_p50 * lat_ceil);
        check("round_p99_us", b_p99, c_p99, b_p99 * lat_ceil);
        check("bytes_per_device", b_bytes, c_bytes, b_bytes * bytes_ceil);
        match (b_cost, c_cost) {
            (Some(b_c), Some(c_c)) => {
                check(
                    "trace_cost_us_per_round",
                    b_c,
                    c_c,
                    (b_c * lat_ceil).max(cfg.trace_cost_floor_us),
                );
            }
            _ => report.notes.push(format!(
                "skipped population.q{q}.trace_cost_us_per_round: absent from one report"
            )),
        }
        if q >= cfg.min_trace_overhead_q {
            match c_trace {
                // Absolute ceiling: the baseline value is informational
                // (0.0 when the baseline predates digest tracing).
                Some(c_t) => check(
                    "trace_overhead_pct",
                    b_trace.unwrap_or(0.0),
                    c_t.max(0.0),
                    cfg.max_trace_overhead_pct,
                ),
                None => report.notes.push(format!(
                    "population q={q}: no trace_overhead_pct in candidate"
                )),
            }
        }
    }
    for &(q, ..) in &cand_entries {
        if !base_entries.iter().any(|(bq, ..)| *bq == q) {
            report.notes.push(format!("population q={q}: absent from baseline"));
        }
    }
    Ok(report)
}

/// Exact nearest-rank percentile of an ascending-sorted slice: the
/// smallest element such that at least `q·n` samples are ≤ it.
///
/// Unlike `Histogram::approx_quantile` this operates on the raw
/// samples, so the bench report records true percentiles, not
/// bucket midpoints.
///
/// # Panics
///
/// Panics on an empty slice — percentiles of nothing are a caller bug.
pub fn percentile_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(serial_rps: f64, parallel_rps: f64, overhead: f64, latency: Option<(f64, f64)>) -> String {
        let latency = match latency {
            Some((p50, p99)) => {
                format!(
                    r#","latency":{{"rounds":300,"p50_us":{p50},"p99_us":{p99},"events_overhead_pct":1.2}}"#
                )
            }
            None => String::new(),
        };
        format!(
            r#"{{"bench":"round_engine","scenario":{{"num_devices":100,"max_rounds":300,"seed":2022}},"round_engine":{{"serial":{{"rounds_per_sec":{serial_rps}}},"parallel":{{"rounds_per_sec":{parallel_rps}}},"telemetry":{{"overhead_pct":{overhead}}}{latency}}}}}"#
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(80.0, 81.0, 0.5, Some((12000.0, 15000.0)));
        let g = gate(&r, &r, &GateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert_eq!(g.checks.len(), 6);
        assert!(g.notes.is_empty(), "{:?}", g.notes);
    }

    /// A baseline recorded by an older harness can carry a negative
    /// overhead (the metered run beat the untraced one by noise); the
    /// gate clamps it so the limit never drops below `0 + tolerance`.
    #[test]
    fn negative_overhead_baselines_are_clamped_before_gating() {
        let base = report(80.0, 81.0, -2.369415660932006, None);
        let ok = report(80.0, 81.0, 4.0, None);
        let g = gate(&base, &ok, &GateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        let check = g
            .checks
            .iter()
            .find(|c| c.name.ends_with("overhead_pct"))
            .expect("overhead check present");
        assert_eq!(check.baseline, 0.0, "baseline not clamped");
        assert!((check.limit - 5.0).abs() < 1e-12, "limit is 0 + 5pp");
        // Beyond the clamped limit still fails.
        let heavy = report(80.0, 81.0, 6.0, None);
        let g = gate(&base, &heavy, &GateConfig::default()).unwrap();
        assert!(!g.passed(), "{}", g.render());
    }

    #[test]
    fn rps_drop_beyond_tolerance_fails() {
        let base = report(80.0, 81.0, 0.5, None);
        let cand = report(40.0, 81.0, 0.5, None);
        let g = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(!g.passed());
        let bad: Vec<_> = g.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "round_engine.serial.rounds_per_sec");
        assert!(g.render().contains("FAIL"), "{}", g.render());
        // A 30% drop limit on an 80 rps baseline means 56 rps floor.
        assert!((bad[0].limit - 56.0).abs() < 1e-12);
    }

    #[test]
    fn latency_growth_and_overhead_growth_fail() {
        let base = report(80.0, 81.0, 0.5, Some((10000.0, 12000.0)));
        let slow = report(80.0, 81.0, 0.5, Some((16000.0, 12000.0)));
        let g = gate(&base, &slow, &GateConfig::default()).unwrap();
        assert!(!g.passed());
        assert!(g.checks.iter().any(|c| !c.passed && c.name.ends_with("p50_us")));

        let heavy = report(80.0, 81.0, 7.0, Some((10000.0, 12000.0)));
        let g = gate(&base, &heavy, &GateConfig::default()).unwrap();
        assert!(g.checks.iter().any(|c| !c.passed && c.name.ends_with("overhead_pct")));
    }

    #[test]
    fn missing_latency_section_is_a_note_not_a_failure() {
        let base = report(80.0, 81.0, 0.5, None);
        let cand = report(80.0, 81.0, 0.5, Some((10000.0, 12000.0)));
        let g = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert_eq!(g.checks.len(), 3);
        assert!(g.notes.iter().any(|n| n.contains("p50_us")), "{:?}", g.notes);
    }

    #[test]
    fn scenario_mismatch_is_noted() {
        let base = report(80.0, 81.0, 0.5, None);
        let cand = base.replace(r#""num_devices":100"#, r#""num_devices":20"#);
        let g = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(g.notes.iter().any(|n| n.contains("num_devices")), "{:?}", g.notes);
    }

    #[test]
    fn non_bench_reports_are_rejected() {
        assert!(gate("{}", "{}", &GateConfig::default()).is_err());
        assert!(gate("not json", "{}", &GateConfig::default()).is_err());
    }

    fn kernel_report(smoke: bool, kernels: &[(&str, f64)]) -> String {
        let entries: Vec<String> = kernels
            .iter()
            .map(|(name, gflops)| {
                format!(
                    r#"{{"name":"{name}","m":200,"k":64,"n":64,"iters":100,"secs_per_iter":0.0001,"gflops":{gflops}}}"#
                )
            })
            .collect();
        format!(
            r#"{{"bench":"kernels","smoke":{smoke},"seed":2022,"kernels":[{}]}}"#,
            entries.join(",")
        )
    }

    #[test]
    fn identical_kernel_reports_pass() {
        let r = kernel_report(false, &[("matmul 200x64x64", 30.0), ("matmul_nt 200x10x64", 6.0)]);
        let g = gate_kernels(&r, &r, &KernelGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert_eq!(g.checks.len(), 2);
        assert!(g.notes.is_empty(), "{:?}", g.notes);
    }

    #[test]
    fn kernel_gflops_cliff_fails() {
        let base = kernel_report(false, &[("matmul 200x64x64", 30.0), ("matmul_tn 64x200x64", 17.0)]);
        let cand = kernel_report(false, &[("matmul 200x64x64", 10.0), ("matmul_tn 64x200x64", 17.0)]);
        let g = gate_kernels(&base, &cand, &KernelGateConfig::default()).unwrap();
        assert!(!g.passed());
        let bad: Vec<_> = g.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "kernels.matmul 200x64x64.gflops");
        // 50% drop tolerance on 30 GFLOP/s means a 15 GFLOP/s floor.
        assert!((bad[0].limit - 15.0).abs() < 1e-12);
        // A tighter tolerance flips the verdict on smaller drifts.
        let g = gate_kernels(&base, &cand, &KernelGateConfig { max_gflops_drop_pct: 70.0 })
            .unwrap();
        assert!(g.passed(), "{}", g.render());
    }

    #[test]
    fn kernel_set_and_smoke_mismatches_are_notes() {
        let base = kernel_report(false, &[("matmul 200x64x64", 30.0), ("retired", 5.0)]);
        let cand = kernel_report(true, &[("matmul 200x64x64", 29.0), ("brand_new", 9.0)]);
        let g = gate_kernels(&base, &cand, &KernelGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert_eq!(g.checks.len(), 1);
        assert!(g.notes.iter().any(|n| n.contains("smoke mismatch")), "{:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("retired")), "{:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("brand_new")), "{:?}", g.notes);
    }

    #[test]
    fn kernel_gate_rejects_wrong_reports() {
        let kernels = kernel_report(false, &[("matmul 200x64x64", 30.0)]);
        let engine = report(80.0, 81.0, 0.5, None);
        assert!(gate_kernels(&engine, &kernels, &KernelGateConfig::default()).is_err());
        assert!(gate_kernels(&kernels, &engine, &KernelGateConfig::default()).is_err());
        assert!(gate_kernels("not json", &kernels, &KernelGateConfig::default()).is_err());
    }

    fn population_report(smoke: bool, entries: &[(u64, f64, f64, f64)]) -> String {
        population_report_traced(smoke, entries, Some((1.5, 40.0)))
    }

    /// `trace` is the optional `(overhead %, µs/round)` pair every
    /// entry carries; `None` mimics a report from an older harness.
    fn population_report_traced(
        smoke: bool,
        entries: &[(u64, f64, f64, f64)],
        trace: Option<(f64, f64)>,
    ) -> String {
        let trace = match trace {
            Some((pct, cost)) => format!(
                r#","trace_exemplars":8,"trace_overhead_pct":{pct},"trace_cost_us_per_round":{cost}"#
            ),
            None => String::new(),
        };
        let items: Vec<String> = entries
            .iter()
            .map(|(q, p50, p99, bytes)| {
                format!(
                    r#"{{"q":{q},"target":10,"rounds":10,"build_us":100,"select_p50_us":1,"round_p50_us":{p50},"round_p99_us":{p99},"resident_bytes":1000,"bytes_per_device":{bytes}{trace}}}"#
                )
            })
            .collect();
        format!(
            r#"{{"bench":"population","smoke":{smoke},"seed":2022,"populations":[{}]}}"#,
            items.join(",")
        )
    }

    #[test]
    fn identical_population_reports_pass() {
        let r = population_report(
            false,
            &[(1000, 2.0, 4.0, 58.0), (1_000_000, 900.0, 1500.0, 60.0)],
        );
        let g = gate_population(&r, &r, &PopulationGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        // 2 sizes × (p50, p99, bytes, trace cost) + the relative
        // overhead ceiling at the one size ≥ min_trace_overhead_q.
        assert_eq!(g.checks.len(), 9);
        assert!(g.notes.is_empty(), "{:?}", g.notes);
    }

    /// The trace-overhead check is an absolute ceiling at large sizes:
    /// a candidate over the budget fails even when the baseline was
    /// just as slow, and a baseline without the field still gates the
    /// candidate. Small sizes skip the ceiling — their ratio is all
    /// fixed per-round cost.
    #[test]
    fn population_trace_overhead_ceiling_is_absolute_and_scale_scoped() {
        let entries = [(1_000_000, 900.0, 1500.0, 60.0)];
        let base = population_report_traced(false, &entries, Some((12.0, 40.0)));
        let cand = population_report_traced(false, &entries, Some((12.0, 40.0)));
        let g = gate_population(&base, &cand, &PopulationGateConfig::default()).unwrap();
        assert!(!g.passed(), "{}", g.render());
        let bad: Vec<_> = g.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "population.q1000000.trace_overhead_pct");
        assert!((bad[0].limit - 10.0).abs() < 1e-12, "default 10% ceiling");

        // The same numbers at a small size pass: only the per-round
        // cost is gated there, and it did not grow.
        let small = [(1000, 2.0, 4.0, 58.0)];
        let base_small = population_report_traced(false, &small, Some((1455.0, 40.0)));
        let g = gate_population(&base_small, &base_small, &PopulationGateConfig::default())
            .unwrap();
        assert!(g.passed(), "{}", g.render());
        assert!(
            !g.checks.iter().any(|c| c.name.ends_with("trace_overhead_pct")),
            "{}",
            g.render()
        );
        assert!(g.checks.iter().any(|c| c.name.ends_with("trace_cost_us_per_round")));

        // Old baseline without the trace fields: the candidate is
        // still held to the absolute ceiling, the cost check is noted.
        let old = population_report_traced(false, &entries, None);
        let fast = population_report_traced(false, &entries, Some((3.0, 40.0)));
        let g = gate_population(&old, &fast, &PopulationGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert!(g.checks.iter().any(|c| c.name.ends_with("trace_overhead_pct")));
        assert!(
            g.notes.iter().any(|n| n.contains("trace_cost_us_per_round")),
            "{:?}",
            g.notes
        );
        // And an old candidate is a note, not a failure.
        let g = gate_population(&fast, &old, &PopulationGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert!(
            g.notes.iter().any(|n| n.contains("no trace_overhead_pct")),
            "{:?}",
            g.notes
        );
    }

    /// A tracing-cost regression (say, an accidental per-device span
    /// re-emission) is caught by the per-round cost check at any size.
    #[test]
    fn population_trace_cost_growth_fails() {
        let base =
            population_report_traced(false, &[(1000, 2.0, 4.0, 58.0)], Some((1400.0, 40.0)));
        let cand =
            population_report_traced(false, &[(1000, 2.0, 4.0, 58.0)], Some((1400.0, 400.0)));
        let g = gate_population(&base, &cand, &PopulationGateConfig::default()).unwrap();
        assert!(!g.passed(), "{}", g.render());
        let bad: Vec<_> = g.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "population.q1000.trace_cost_us_per_round");
        // 200% growth tolerance on 40 µs means a 120 µs ceiling
        // (which coincides with the floor).
        assert!((bad[0].limit - 120.0).abs() < 1e-9);
    }

    /// A baseline that measured ~zero tracing cost (the diff of two
    /// timings legitimately hits 0 when rounds dwarf the trace write)
    /// must not turn every positive candidate into a failure: the
    /// growth limit is floored.
    #[test]
    fn population_trace_cost_zero_baseline_uses_the_floor() {
        let entries = [(10_000_000, 9000.0, 15000.0, 60.0)];
        let base = population_report_traced(false, &entries, Some((0.0, 0.0)));
        let ok = population_report_traced(false, &entries, Some((0.5, 80.0)));
        let cfg = PopulationGateConfig::default();
        let g = gate_population(&base, &ok, &cfg).unwrap();
        assert!(g.passed(), "{}", g.render());
        let cost = g
            .checks
            .iter()
            .find(|c| c.name.ends_with("trace_cost_us_per_round"))
            .unwrap();
        assert!((cost.limit - cfg.trace_cost_floor_us).abs() < 1e-12);
        // Beyond the floor still fails.
        let slow = population_report_traced(false, &entries, Some((0.5, 400.0)));
        let g = gate_population(&base, &slow, &cfg).unwrap();
        assert!(!g.passed(), "{}", g.render());
    }

    #[test]
    fn population_latency_cliff_fails() {
        let base = population_report(false, &[(1_000_000, 900.0, 1500.0, 60.0)]);
        // 10× p50: the complexity-class regression the gate exists for.
        let cand = population_report(false, &[(1_000_000, 9000.0, 1500.0, 60.0)]);
        let g = gate_population(&base, &cand, &PopulationGateConfig::default()).unwrap();
        assert!(!g.passed());
        let bad: Vec<_> = g.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "population.q1000000.round_p50_us");
        // 200% growth tolerance on 900 µs means a 2700 µs ceiling.
        assert!((bad[0].limit - 2700.0).abs() < 1e-9);
    }

    #[test]
    fn population_memory_growth_fails() {
        let base = population_report(false, &[(1_000_000, 900.0, 1500.0, 60.0)]);
        let cand = population_report(false, &[(1_000_000, 900.0, 1500.0, 90.0)]);
        let g = gate_population(&base, &cand, &PopulationGateConfig::default()).unwrap();
        assert!(!g.passed());
        assert!(g
            .checks
            .iter()
            .any(|c| !c.passed && c.name.ends_with("bytes_per_device")));
        // A looser budget flips the verdict.
        let loose = PopulationGateConfig { max_bytes_growth_pct: 60.0, ..Default::default() };
        assert!(gate_population(&base, &cand, &loose).unwrap().passed());
    }

    #[test]
    fn population_size_and_smoke_mismatches_are_notes() {
        // Committed full sweep vs a smoke candidate that stops early.
        let base = population_report(
            false,
            &[(1000, 2.0, 4.0, 58.0), (10_000_000, 8000.0, 12000.0, 62.0)],
        );
        let cand = population_report(true, &[(1000, 2.1, 4.2, 58.0), (500, 1.0, 2.0, 55.0)]);
        let g = gate_population(&base, &cand, &PopulationGateConfig::default()).unwrap();
        assert!(g.passed(), "{}", g.render());
        assert_eq!(g.checks.len(), 4, "only the shared size is checked");
        assert!(g.notes.iter().any(|n| n.contains("smoke mismatch")), "{:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("q=10000000")), "{:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("q=500")), "{:?}", g.notes);
    }

    #[test]
    fn population_gate_rejects_wrong_reports() {
        let pop = population_report(false, &[(1000, 2.0, 4.0, 58.0)]);
        let engine = report(80.0, 81.0, 0.5, None);
        assert!(gate_population(&engine, &pop, &PopulationGateConfig::default()).is_err());
        assert!(gate_population(&pop, &engine, &PopulationGateConfig::default()).is_err());
        assert!(gate_population("not json", &pop, &PopulationGateConfig::default()).is_err());
    }

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&samples, 0.5), 50);
        assert_eq!(percentile_nearest_rank(&samples, 0.99), 99);
        assert_eq!(percentile_nearest_rank(&samples, 0.0), 1);
        assert_eq!(percentile_nearest_rank(&samples, 1.0), 100);
        assert_eq!(percentile_nearest_rank(&[7], 0.5), 7);
    }
}
