//! The paper's §VII-A experimental scenario, reproducible at full or
//! reduced scale.
//!
//! One deliberate deviation (DESIGN.md §4): the paper trains on
//! CIFAR-10 (500 samples/user); our synthetic task uses 200
//! samples/user, so we set `π = 2.5×10^7` cycles/sample to keep every
//! device's per-round work at the paper's `5×10^9` cycles — timing and
//! energy stay paper-scale while the learning workload stays tractable
//! on one CPU core.

use fl_sim::dataset::{DatasetConfig, SyntheticTask};
use fl_sim::error::Result;
use fl_sim::partition::Partition;
use fl_sim::runner::{FederatedSetup, TrainingConfig};
use fl_sim::seeds::{derive, SeedDomain};
use mec_sim::population::{Population, PopulationBuilder};
use mec_sim::units::Bits;

/// IID vs Non-IID data placement (Fig. 2a vs Fig. 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// Shuffled, evenly dealt samples.
    Iid,
    /// Sort-by-label 400-shard split, 4 shards/user.
    NonIid,
}

impl Setting {
    /// Lower-case label used in file names and tables.
    pub fn label(self) -> &'static str {
        match self {
            Self::Iid => "iid",
            Self::NonIid => "noniid",
        }
    }
}

impl core::fmt::Display for Setting {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The full §VII-A scenario with a scale knob for CI-speed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperScenario {
    /// Number of user devices `Q` (paper: 100).
    pub num_devices: usize,
    /// Training iterations `J` (paper: 300).
    pub max_rounds: usize,
    /// Selection fraction `C` (paper: 0.1).
    pub fraction: f64,
    /// Train/test sizes of the synthetic task.
    pub train_samples: usize,
    /// Held-out evaluation samples.
    pub test_samples: usize,
    /// Shards per user in the Non-IID split (paper: 4).
    pub shards_per_user: usize,
    /// Model layer widths.
    pub model_dims: Vec<usize>,
    /// Learning rate τ.
    pub learning_rate: f32,
    /// Upload payload `C_model`.
    pub payload: Bits,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for PaperScenario {
    fn default() -> Self {
        Self {
            num_devices: 100,
            max_rounds: 300,
            fraction: 0.1,
            train_samples: 20_000,
            test_samples: 2_000,
            shards_per_user: 4,
            model_dims: vec![64, 64, 10],
            learning_rate: 0.5,
            payload: Bits::from_megabits(40.0),
            eval_every: 1,
            seed: 2022,
        }
    }
}

impl PaperScenario {
    /// A heavily reduced variant for tests and timing harnesses:
    /// 20 devices, 30 rounds, a tiny model — same code paths, seconds
    /// of wall clock.
    pub fn fast() -> Self {
        Self {
            num_devices: 20,
            max_rounds: 30,
            fraction: 0.2,
            train_samples: 2_000,
            test_samples: 400,
            shards_per_user: 2,
            model_dims: vec![64, 32, 10],
            learning_rate: 0.5,
            payload: Bits::from_megabits(40.0),
            eval_every: 1,
            seed: 2022,
        }
    }

    /// The training configuration for this scenario.
    pub fn training_config(&self) -> TrainingConfig {
        TrainingConfig {
            max_rounds: self.max_rounds,
            fraction: self.fraction,
            payload: self.payload,
            learning_rate: self.learning_rate,
            eval_every: self.eval_every,
            model_dims: self.model_dims.clone(),
            seed: self.seed,
            ..TrainingConfig::default()
        }
    }

    /// Generates the synthetic learning task.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation errors.
    pub fn task(&self) -> Result<SyntheticTask> {
        SyntheticTask::generate(DatasetConfig {
            num_classes: 10,
            feature_dim: self.model_dims[0],
            train_samples: self.train_samples,
            test_samples: self.test_samples,
            seed: derive(self.seed, SeedDomain::Dataset),
            ..DatasetConfig::default()
        })
    }

    /// Generates the heterogeneous device population with
    /// work-equivalent `π` (see module docs).
    ///
    /// # Errors
    ///
    /// Propagates population-building errors.
    pub fn population(&self) -> Result<Population> {
        // Paper per-user work: 500 samples × 1e7 cycles = 5e9 cycles.
        let samples_per_user = (self.train_samples / self.num_devices).max(1);
        let pi = 5.0e9 / samples_per_user as f64;
        Ok(PopulationBuilder::paper_default()
            .num_devices(self.num_devices)
            .cycles_per_sample(pi)
            .seed(derive(self.seed, SeedDomain::Population))
            .build()?)
    }

    /// Builds the data partition for `setting`.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors.
    pub fn partition(&self, task: &SyntheticTask, setting: Setting) -> Result<Partition> {
        let seed = derive(self.seed, SeedDomain::Partition);
        match setting {
            Setting::Iid => Partition::iid(task.train().len(), self.num_devices, seed),
            Setting::NonIid => Partition::shards(
                task.train().labels(),
                self.num_devices,
                self.shards_per_user,
                seed,
            ),
        }
    }

    /// Builds the complete federated setup for `setting`.
    ///
    /// # Errors
    ///
    /// Propagates task, population, partition, and wiring errors.
    pub fn setup(&self, setting: Setting) -> Result<FederatedSetup> {
        let task = self.task()?;
        let population = self.population()?;
        let partition = self.partition(&task, setting)?;
        FederatedSetup::new(population, &task, &partition, &self.training_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scenario_wires_end_to_end() {
        let s = PaperScenario::fast();
        let setup = s.setup(Setting::Iid).unwrap();
        assert_eq!(setup.population().len(), 20);
        assert_eq!(setup.clients().len(), 20);
        // Per-round work is paper-scale regardless of sample counts.
        let d = &setup.population().devices()[0];
        assert!((d.work().get() - 5.0e9).abs() < 1e-3, "work {}", d.work());
    }

    #[test]
    fn noniid_partition_concentrates_labels() {
        let s = PaperScenario::fast();
        let task = s.task().unwrap();
        let iid = s.partition(&task, Setting::Iid).unwrap();
        let noniid = s.partition(&task, Setting::NonIid).unwrap();
        let mean = |p: &Partition| {
            (0..s.num_devices)
                .map(|u| p.distinct_labels(task.train().labels(), u))
                .sum::<usize>() as f64
                / s.num_devices as f64
        };
        assert!(mean(&noniid) < mean(&iid));
    }

    #[test]
    fn settings_have_stable_labels() {
        assert_eq!(Setting::Iid.label(), "iid");
        assert_eq!(Setting::NonIid.to_string(), "noniid");
    }

    #[test]
    fn default_matches_paper_parameters() {
        let s = PaperScenario::default();
        assert_eq!(s.num_devices, 100);
        assert_eq!(s.max_rounds, 300);
        assert_eq!(s.fraction, 0.1);
        assert_eq!(s.shards_per_user, 4);
    }
}
