//! Table I — training delay to obtain desired accuracy.
//!
//! Regenerates the paper's Table I: cumulative (simulated) training
//! delay until each scheme first reaches the desired accuracy —
//! {60, 70, 80}% in the IID setting and {40, 50, 60}% Non-IID — with
//! the paper's ✗ for schemes that never get there, plus the speedup
//! of HELCFL over each baseline at the hardest target.
//!
//! Usage: `table1_delay [--fast] [--seed N] [--setting iid|noniid]
//! [--trace-out PATH]`
//!
//! Tracing: `HELCFL_TRACE=jsonl table1_delay` streams per-round spans
//! to `results/trace_table1_delay.jsonl` (or pass `--trace-out PATH`);
//! `HELCFL_TRACE=stderr` prints them live. Either way a metrics
//! summary ([`helcfl_telemetry::TelemetryReport`]) lands on stderr
//! after the runs.

use std::path::Path;

use helcfl_bench::report::{ascii_table, table1_cell, write_histories};
use helcfl_bench::{CommonArgs, Scheme, Setting};

fn targets(setting: Setting, fast: bool) -> Vec<f64> {
    match (setting, fast) {
        (Setting::Iid, false) => vec![0.60, 0.70, 0.80],
        (Setting::NonIid, false) => vec![0.40, 0.50, 0.60],
        // The fast scenario trains a much smaller run; use reachable
        // smoke-test targets.
        (Setting::Iid, true) => vec![0.30, 0.40, 0.50],
        (Setting::NonIid, true) => vec![0.25, 0.35, 0.45],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let tele = args.telemetry("table1_delay");
    println!(
        "Table I reproduction — {} devices, {} rounds",
        scenario.num_devices, scenario.max_rounds
    );

    for setting in args.settings() {
        let targets = targets(setting, args.fast);
        let config = scenario.training_config();
        let mut histories = Vec::new();
        for scheme in Scheme::lineup() {
            let mut setup = scenario.setup(setting)?;
            let history = scheme.run_traced(&mut setup, &config, &tele)?;
            eprintln!(
                "  ran {:<8} (best accuracy {:.4})",
                history.scheme(),
                history.best_accuracy()
            );
            histories.push(history);
        }

        let mut header: Vec<String> = vec![format!("{} / target", setting.label())];
        header.extend(targets.iter().map(|t| format!("{:.0}%", t * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for h in &histories {
            let mut row = vec![h.scheme().to_string()];
            for &t in &targets {
                row.push(table1_cell(h.time_to_accuracy(t)));
            }
            rows.push(row);
        }
        println!("\n=== {} setting ===", setting.label().to_uppercase());
        println!("{}", ascii_table(&header_refs, &rows));

        // Speedups at the hardest reachable target (paper quotes e.g.
        // 275.03% over FedCS at 60% Non-IID).
        let hardest = *targets.last().expect("non-empty targets");
        if let Some(ours) = histories[0].time_to_accuracy(hardest) {
            for h in &histories[1..] {
                match h.time_to_accuracy(hardest) {
                    Some(theirs) => println!(
                        "  speedup vs {:<8} at {:.0}%: {:.2}%",
                        h.scheme(),
                        hardest * 100.0,
                        (theirs.get() / ours.get() - 1.0) * 100.0
                    ),
                    None => println!(
                        "  speedup vs {:<8} at {:.0}%: ✗ (never reaches it)",
                        h.scheme(),
                        hardest * 100.0
                    ),
                }
            }
        }
        write_histories(
            Path::new("results"),
            &format!("table1_{}", setting.label()),
            &histories,
        )?;
    }
    if tele.is_enabled() {
        eprintln!("\n{}", tele.report());
    }
    tele.finish();
    Ok(())
}
