//! Training-kernel microbenchmarks at the paper's MLP shapes.
//!
//! Times each tinynn matmul kernel — plain, fused bias, fused
//! bias+ReLU, transposed-left (`tn`), transposed-right (`nt`) — on the
//! exact shapes one local update of the §VII-A scenario runs them at
//! (shard batch 200, model `[64, 64, 10]`, eval chunk 256), plus one
//! square reference size for cross-report comparability with
//! `bench_round_engine`. GFLOP/s counts `2·m·k·n` per product; the
//! fused epilogues add a few percent more real work, so their reported
//! rate is slightly conservative.
//!
//! Results go to stdout and `results/BENCH_kernels.json`
//! (`helcfl-trace gate` diffs two such reports on per-kernel GFLOP/s).
//!
//! Usage: `bench_kernels [--smoke] [--seed N]`
//!
//! `--smoke` cuts the per-kernel FLOP budget ~16× for CI: rates get
//! noisier but stay within the loose default gate tolerance.

use std::path::Path;
use std::time::Instant;

use detrand::Rng;
use helcfl_bench::json::JsonObject;
use tinynn::batch::{CohortArena, CohortJob};
use tinynn::model::{Mlp, TrainScratch};
use tinynn::tensor::Matrix;

/// ReLU-like sparsity applied to the left operand of the kernels that
/// consume activations, so the zero-skip path is exercised the way the
/// engine exercises it.
const ACTIVATION_SPARSITY: f64 = 0.5;

/// Per-kernel FLOP budget for the full run (`--smoke` divides by 16).
const FLOP_BUDGET: f64 = 2.0e9;

/// Minimum measured time per kernel for the full run (`--smoke`
/// divides by 16). The FLOP budget alone schedules narrow shapes
/// (e.g. `matmul_tn 64x200x10`) for so few microseconds of work that
/// timer noise dominates; a timed warmup scales the iteration count up
/// until at least this much wall clock is sampled.
const MIN_BENCH_SECS: f64 = 0.25;

/// Clients per grouped dispatch in the cohort section — one pool
/// worker's share of a 64-client round on an 8-way host.
const COHORT_CLIENTS: usize = 8;

struct Args {
    smoke: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args { smoke: false, seed: 2022 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                args.seed = v.parse().expect("--seed must be an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--smoke] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("from_vec")
}

/// A matrix with roughly [`ACTIVATION_SPARSITY`] of its entries zeroed
/// and the rest positive — the value profile of a post-ReLU
/// activation, which drives the kernels' zero-skip branch.
fn sparse_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            let v = rng.uniform_f32(0.0, 1.0);
            if rng.uniform_f32(0.0, 1.0) < ACTIVATION_SPARSITY as f32 { 0.0 } else { v }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("from_vec")
}

/// One benchmarked kernel invocation: `(m, k, n)` are the product
/// dimensions used for the `2·m·k·n` FLOP count.
struct Bench<'a> {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    run: Box<dyn FnMut() + 'a>,
}

fn time_bench(b: &mut Bench<'_>, budget: f64, min_secs: f64) -> (usize, f64, f64) {
    let flops = 2.0 * b.m as f64 * b.k as f64 * b.n as f64;
    let (iters, secs) = time_closure(&mut b.run, budget / flops, min_secs);
    (iters, secs, flops / secs / 1e9)
}

/// Iteration count for a kernel: the FLOP budget's schedule, raised
/// until the timed warmup predicts at least `min_secs` of samples.
fn calibrated_iters(run: &mut (dyn FnMut() + '_), budget_iters: f64, min_secs: f64) -> usize {
    // First run faults pages and fills caches; the second, warm run
    // estimates the per-iteration cost for calibration.
    run();
    let est = Instant::now();
    run();
    let t_est = est.elapsed().as_secs_f64().max(1e-9);
    let from_time = (min_secs / t_est) as usize;
    (budget_iters as usize).max(from_time).max(4)
}

/// Times `run` over a calibrated iteration count and returns
/// `(iters, mean seconds per iteration)`.
fn time_closure(
    run: &mut (dyn FnMut() + '_),
    budget_iters: f64,
    min_secs: f64,
) -> (usize, f64) {
    let iters = calibrated_iters(run, budget_iters, min_secs);
    let started = Instant::now();
    for _ in 0..iters {
        run();
    }
    (iters, started.elapsed().as_secs_f64() / iters as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let budget = if args.smoke { FLOP_BUDGET / 16.0 } else { FLOP_BUDGET };
    let min_secs = if args.smoke { MIN_BENCH_SECS / 16.0 } else { MIN_BENCH_SECS };
    let mut rng = Rng::seed_from_u64(args.seed);

    // Engine shapes: shard batch 200 (20 000 samples / 100 devices),
    // model [64, 64, 10], eval chunk 256 rows.
    let x = random_matrix(200, 64, &mut rng); // dense input batch
    let act = sparse_matrix(200, 64, &mut rng); // post-ReLU activation
    let w1 = random_matrix(64, 64, &mut rng); // hidden weights
    let w2 = random_matrix(64, 10, &mut rng); // head weights
    let b1: Vec<f32> = (0..64).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
    let b2: Vec<f32> = (0..10).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
    let dz = random_matrix(200, 10, &mut rng); // head gradient
    let chunk = random_matrix(256, 64, &mut rng); // eval chunk
    let sq = random_matrix(256, 256, &mut rng);
    let sq_b = random_matrix(256, 256, &mut rng);

    // Each closure owns its output buffer (the `*_into` kernels resize
    // it on first use, then reuse it allocation-free) and captures the
    // operands by shared reference.
    let mk_out = || Matrix::zeros(1, 1).expect("zeros");
    let (x, act, w1, w2, dz, chunk, sq, sq_b) = (&x, &act, &w1, &w2, &dz, &chunk, &sq, &sq_b);
    let (b1, b2) = (&b1, &b2);
    let mut benches: Vec<Bench<'_>> = vec![
        Bench {
            name: "matmul 200x64x64",
            m: 200,
            k: 64,
            n: 64,
            run: {
                let mut out = mk_out();
                Box::new(move || x.matmul_into(w1, &mut out).expect("matmul"))
            },
        },
        Bench {
            name: "matmul_bias_relu 200x64x64",
            m: 200,
            k: 64,
            n: 64,
            run: {
                let mut out = mk_out();
                Box::new(move || x.matmul_bias_relu_into(w1, b1, &mut out).expect("fused"))
            },
        },
        Bench {
            name: "matmul_bias 200x64x10",
            m: 200,
            k: 64,
            n: 10,
            run: {
                let mut out = mk_out();
                Box::new(move || act.matmul_bias_into(w2, b2, &mut out).expect("fused"))
            },
        },
        Bench {
            name: "matmul_tn 64x200x64",
            m: 64,
            k: 200,
            n: 64,
            run: {
                let mut out = mk_out();
                Box::new(move || act.matmul_tn_into(x, &mut out).expect("tn"))
            },
        },
        Bench {
            name: "matmul_tn 64x200x10",
            m: 64,
            k: 200,
            n: 10,
            run: {
                let mut out = mk_out();
                Box::new(move || act.matmul_tn_into(dz, &mut out).expect("tn"))
            },
        },
        Bench {
            name: "matmul_nt 200x10x64",
            m: 200,
            k: 10,
            n: 64,
            run: {
                let mut out = mk_out();
                Box::new(move || dz.matmul_nt_into(w2, &mut out).expect("nt"))
            },
        },
        Bench {
            name: "matmul_bias_relu 256x64x64",
            m: 256,
            k: 64,
            n: 64,
            run: {
                let mut out = mk_out();
                Box::new(move || chunk.matmul_bias_relu_into(w1, b1, &mut out).expect("fused"))
            },
        },
        Bench {
            name: "matmul 256x256x256",
            m: 256,
            k: 256,
            n: 256,
            run: {
                let mut out = mk_out();
                Box::new(move || sq.matmul_into(sq_b, &mut out).expect("matmul"))
            },
        },
    ];

    println!(
        "Kernel bench — paper MLP shapes, {} FLOP budget/kernel{}",
        budget,
        if args.smoke { " (smoke)" } else { "" }
    );
    let mut kernels = Vec::new();
    for b in &mut benches {
        let (iters, secs, gflops) = time_bench(b, budget, min_secs);
        println!("  {:<28} {gflops:7.2} GFLOP/s ({:.1} µs/iter)", b.name, secs * 1e6);
        let mut k = JsonObject::new();
        k.field("name", b.name)
            .field("m", b.m)
            .field("k", b.k)
            .field("n", b.n)
            .field("iters", iters)
            .field("secs_per_iter", secs)
            .field("gflops", gflops);
        kernels.push(k);
    }

    // Cohort batching: one pool worker's stride of a full-batch round —
    // K identical-architecture clients trained solo (per-client
    // dispatch) vs through one grouped `CohortArena` call. Both paths
    // produce bit-identical parameters (pinned in tinynn's and
    // fl-sim's tests); the delta is pure dispatch/packing amortization.
    let dims = [64usize, 64, 10];
    let client_data: Vec<(Matrix, Vec<usize>)> = (0..COHORT_CLIENTS)
        .map(|_| {
            let features = random_matrix(200, 64, &mut rng);
            let labels: Vec<usize> =
                (0..200).map(|_| rng.below(10)).collect();
            (features, labels)
        })
        .collect();
    let global = Mlp::new(&dims, 7).expect("mlp").parameters();
    let mut solo_model = Mlp::new(&dims, 0).expect("mlp");
    let mut solo_scratch = TrainScratch::for_model(&solo_model).expect("scratch");
    let mut solo = || {
        for (features, labels) in &client_data {
            solo_model.set_parameters(&global).expect("params");
            solo_model
                .train_step_with(features, labels, 0.05, &mut solo_scratch)
                .expect("step");
            // The engine's solo path uploads each client's updated
            // parameters; charge the same flat-vector extraction here.
            std::hint::black_box(solo_model.parameters());
        }
    };
    // Calibrate on time alone (budget 0): one iteration is K full
    // local steps, far more work than a single kernel call.
    let (solo_iters, solo_secs) = time_closure(&mut solo, 0.0, min_secs);
    let mut arena = CohortArena::new(&dims).expect("arena");
    let jobs: Vec<CohortJob<'_>> = client_data
        .iter()
        .map(|(features, labels)| CohortJob { features, labels })
        .collect();
    let mut cohort = || {
        std::hint::black_box(arena.train(&jobs, &global, 0.05, 1).expect("cohort"));
    };
    let (cohort_iters, cohort_secs) = time_closure(&mut cohort, 0.0, min_secs);
    let solo_us = solo_secs * 1e6 / COHORT_CLIENTS as f64;
    let cohort_us = cohort_secs * 1e6 / COHORT_CLIENTS as f64;
    println!(
        "  cohort x{COHORT_CLIENTS} [64,64,10]:      solo {solo_us:7.1} µs/client, \
         grouped {cohort_us:7.1} µs/client ({:.2}x)",
        solo_us / cohort_us
    );
    let mut cohort_section = JsonObject::new();
    cohort_section
        .field("clients", COHORT_CLIENTS)
        .field("batch_rows", 200usize)
        .field("solo_iters", solo_iters)
        .field("cohort_iters", cohort_iters)
        .field("solo_us_per_client", solo_us)
        .field("cohort_us_per_client", cohort_us)
        .field("speedup", solo_us / cohort_us);

    let mut host = JsonObject::new();
    host.field(
        "available_parallelism",
        std::thread::available_parallelism().map_or(0usize, std::num::NonZeroUsize::get),
    );

    let mut report = JsonObject::new();
    report
        .field("bench", "kernels")
        .field("smoke", args.smoke)
        .field("seed", args.seed)
        .object("host", host)
        .field("kernels", kernels)
        .object("cohort", cohort_section);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, report.finish() + "\n")?;
    println!("  report written to {}", path.display());
    Ok(())
}
