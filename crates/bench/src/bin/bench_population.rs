//! Population-scaling benchmark: selection + frequency determination
//! at fleet sizes the paper never reaches.
//!
//! For each population size `Q` the harness builds a struct-of-arrays
//! [`Fleet`](mec_sim::fleet::Fleet) (no `Vec<Device>` is ever
//! materialized), runs the indexed HELCFL selector plus the Alg.-3
//! slack DVFS policy over a fleet-backed context, and reports
//! per-round latency percentiles and resident bytes per device. The
//! first warmup round absorbs the one-time index build; measured
//! rounds reflect the steady state a long training run lives in.
//!
//! The selection target scales as `min(max(Q/1000, 10), 10 000)` —
//! the paper's `C = 0.1` would select 100 000 devices at `Q = 10^6`,
//! which no real deployment does per round; a sub-percent cohort is
//! the realistic regime the 50 ms latency budget applies to.
//!
//! Each size also measures the cost of *watching* a round at scale:
//! the same selection + DVFS + TDMA pipeline runs with telemetry
//! disabled and under digest-mode tracing, alternating, and the
//! per-round medians of the two arms are compared (one `cohort_digest`
//! aggregate plus [`TRACE_EXEMPLARS`] sampled `device_activity` spans
//! per round, instead of `target` per-device spans). Digest tracing
//! costs a *fixed amount per round* — the trace grows with rounds,
//! not with the cohort — so the report records both forms:
//! `trace_cost_us_per_round` (absolute, roughly flat across sizes)
//! and `trace_overhead_pct` (relative, melting toward zero as rounds
//! get heavier; at `Q = 10^3` a ~3 µs round cannot absorb a ~40 µs
//! trace write, at `Q = 10^6` the same write disappears into a
//! millisecond round). `helcfl-trace gate` accordingly bounds the
//! per-round cost at every size and holds the relative overhead under
//! [`PopulationGateConfig::max_trace_overhead_pct`] only at sizes
//! where the round is heavy enough for the ratio to mean anything
//! (`Q ≥ min_trace_overhead_q`). Both clamp at zero; the raw signed
//! overhead is preserved alongside.
//!
//! Results go to stdout and `results/BENCH_population.json`
//! (`helcfl-trace gate` diffs two such reports per population size).
//!
//! Usage: `bench_population [--smoke] [--seed N] [--trace PATH]`
//!
//! `--smoke` stops the size sweep at `Q = 10^5` and trims rounds for
//! CI; the per-Q numbers stay comparable to the full report under the
//! loose gate tolerances. `--trace PATH` keeps the digest-mode JSONL
//! trace (all sizes, one stream) for `helcfl-trace check`/`audit`;
//! without it the trace goes to a temp file that is deleted on exit.
//!
//! [`PopulationGateConfig::max_trace_overhead_pct`]:
//! helcfl_bench::gate::PopulationGateConfig

use std::path::{Path, PathBuf};
use std::time::Instant;

use detrand::splitmix64;
use fl_sim::frequency::FrequencyPolicy;
use fl_sim::selection::{ClientSelector, SelectionContext};
use helcfl::{IndexedDecaySelector, SlackFrequencyPolicy};
use helcfl_bench::gate::percentile_nearest_rank;
use helcfl_bench::json::JsonObject;
use helcfl_telemetry::Telemetry;
use mec_sim::population::PopulationBuilder;
use mec_sim::timeline::{DigestConfig, RoundTimeline};
use mec_sim::units::Bits;

/// Population sizes of the full sweep (`--smoke` keeps the first 3).
const SIZES: [usize; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];
const SMOKE_SIZES: usize = 3;

/// Exemplar devices per digest round — enough to spot-check the
/// aggregates, small enough that trace volume is round-bound.
const TRACE_EXEMPLARS: usize = 8;

struct Args {
    smoke: bool,
    seed: u64,
    trace: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args { smoke: false, seed: 2022, trace: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                args.seed = v.parse().expect("--seed must be an integer");
            }
            "--trace" => {
                let v = it.next().expect("--trace requires a path");
                args.trace = Some(PathBuf::from(v));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_population [--smoke] [--seed N] [--trace PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Realistic per-round cohort: sub-percent of the fleet, at least 10,
/// capped at 10 000 (see module docs).
fn target_for(q: usize) -> usize {
    (q / 1000).clamp(10, 10_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let sizes = if args.smoke { &SIZES[..SMOKE_SIZES] } else { &SIZES[..] };
    let (warmup, rounds) = if args.smoke { (2, 10) } else { (3, 30) };
    let payload = Bits::from_megabits(40.0);

    println!(
        "Population-scaling bench — {} rounds/size after {warmup} warmup{}",
        rounds,
        if args.smoke { " (smoke)" } else { "" }
    );
    // One digest-mode JSONL stream covers the whole sweep, so the CI
    // audit sees rounds at every size in a single file.
    let trace_path = args.trace.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("bench_population_{}.jsonl", std::process::id()))
    });
    let tele_traced = Telemetry::to_file(&trace_path)?;
    let tele_off = Telemetry::disabled();
    let mut trace_round: u64 = 0;
    let mut populations = Vec::new();
    for &q in sizes {
        let target = target_for(q);
        let built = Instant::now();
        let fleet = PopulationBuilder::paper_default()
            .num_devices(q)
            .seed(args.seed)
            .build_fleet()?;
        let mut selector = IndexedDecaySelector::default();
        // Warmup: round 1 pays the one-time index build; later warmup
        // rounds settle counters into their steady-state spread.
        for round in 1..=warmup {
            let ctx = SelectionContext {
                round,
                devices: (&fleet).into(),
                payload,
                target,
            };
            let selected = selector.select(&ctx)?;
            let _ = SlackFrequencyPolicy.frequencies(&fleet.gather(&selected), payload)?;
        }
        let build_us = built.elapsed().as_micros() as u64;

        let mut select_us: Vec<u64> = Vec::with_capacity(rounds);
        let mut round_us: Vec<u64> = Vec::with_capacity(rounds);
        for round in 1..=rounds {
            let started = Instant::now();
            let ctx = SelectionContext {
                round: warmup + round,
                devices: (&fleet).into(),
                payload,
                target,
            };
            let selected = selector.select(&ctx)?;
            select_us.push(started.elapsed().as_micros() as u64);
            let freqs =
                SlackFrequencyPolicy.frequencies(&fleet.gather(&selected), payload)?;
            round_us.push(started.elapsed().as_micros() as u64);
            assert_eq!(freqs.len(), target, "policy must cover the whole cohort");
        }
        select_us.sort_unstable();
        round_us.sort_unstable();
        let bytes = fleet.memory_bytes() + selector.memory_bytes();
        let bytes_per_device = bytes as f64 / q as f64;
        let p50 = percentile_nearest_rank(&round_us, 0.5);
        let p99 = percentile_nearest_rank(&round_us, 0.99);
        println!(
            "  Q={q:>9}  target {target:>6}  round p50 {p50:>8} µs  p99 {p99:>8} µs  \
             {bytes_per_device:7.1} B/device  (setup+warmup {:.2} s)",
            build_us as f64 / 1e6
        );

        // Telemetry overhead: the full selection + DVFS + TDMA round
        // pipeline, untraced vs digest-traced. Same selector, same
        // fleet — the round counter just keeps advancing, so both
        // loops run in the selector's steady state.
        let mut next_round = warmup + rounds;
        // Phase children mirror the federated runner's round structure
        // (selection → frequency → timeline) so the emitted trace
        // satisfies the same ≥ 80 % span-coverage rule: at heavy sizes
        // the round's wall-clock lives in those phases, and a round
        // span whose only child wrapped the digest write would be
        // almost entirely uncovered.
        let mut sim_round = |round: usize, tele: &Telemetry, trace_round: u64| {
            let mut round_span = tele.span("round");
            round_span.set("index", trace_round);
            let span_sel = round_span.child("selection");
            let ctx = SelectionContext {
                round,
                devices: (&fleet).into(),
                payload,
                target,
            };
            let selected = selector.select(&ctx)?;
            let cohort = fleet.gather(&selected);
            span_sel.end();
            let span_freq = round_span.child("frequency");
            let freqs = SlackFrequencyPolicy.frequencies(&cohort, payload)?;
            span_freq.end();
            let mut span_tl = round_span.child("timeline");
            let timeline = RoundTimeline::simulate(&cohort, &freqs, payload)?;
            if tele.events_enabled() {
                span_tl.set("policy", SlackFrequencyPolicy.name());
                span_tl.set("delay_neutral", SlackFrequencyPolicy.delay_neutral());
                timeline.trace_digest_into(
                    &mut span_tl,
                    DigestConfig {
                        exemplars: TRACE_EXEMPLARS,
                        seed: splitmix64(args.seed ^ trace_round),
                    },
                );
            }
            tele.with_metrics(|m| timeline.record_metrics(m));
            span_tl.end();
            round_span.end();
            Ok::<(), Box<dyn std::error::Error>>(())
        };
        // The overhead is a difference of two per-round timings on a
        // shared host, where a single scheduler hiccup can cost more
        // than the entire effect being measured (observed: 3 ms
        // outlier rounds against a ~50 µs tracing cost). So: time
        // every round individually, alternate plain/traced passes,
        // and compare the *medians* of the two per-round populations
        // — outlier rounds land in the tails and never touch the
        // estimate.
        const OVERHEAD_REPS: usize = 3;
        let mut plain_ns: Vec<u64> = Vec::with_capacity(OVERHEAD_REPS * rounds);
        let mut traced_ns: Vec<u64> = Vec::with_capacity(OVERHEAD_REPS * rounds);
        for _ in 0..OVERHEAD_REPS {
            for _ in 0..rounds {
                next_round += 1;
                let t = Instant::now();
                sim_round(next_round, &tele_off, 0)?;
                plain_ns.push(t.elapsed().as_nanos() as u64);
            }
            for _ in 0..rounds {
                next_round += 1;
                trace_round += 1;
                let t = Instant::now();
                sim_round(next_round, &tele_traced, trace_round)?;
                traced_ns.push(t.elapsed().as_nanos() as u64);
            }
        }
        // The round-barrier drain happens once per size here, outside
        // the timed loops — a tailing `watch` still sees whole sizes.
        tele_traced.flush();
        plain_ns.sort_unstable();
        traced_ns.sort_unstable();
        let plain_p50_ns = percentile_nearest_rank(&plain_ns, 0.5) as f64;
        let traced_p50_ns = percentile_nearest_rank(&traced_ns, 0.5) as f64;
        // Clamp at zero for gating — a traced median that happens to
        // beat the untraced one is host noise, not negative cost. The
        // raw signed value stays in the report for honesty.
        let raw_trace_overhead_pct = (traced_p50_ns / plain_p50_ns - 1.0) * 100.0;
        let trace_overhead_pct = raw_trace_overhead_pct.max(0.0);
        // The absolute form of the same measurement: digest tracing
        // costs a fixed amount per round (the trace grows with rounds,
        // not devices), so this is the number that stays flat with Q
        // while the relative overhead above melts toward zero.
        let trace_cost_us_per_round = (traced_p50_ns - plain_p50_ns).max(0.0) / 1e3;
        println!(
            "             digest trace {trace_cost_us_per_round:7.1} µs/round \
             ({trace_overhead_pct:.2} % of the round, raw {raw_trace_overhead_pct:+.2} %, \
             {TRACE_EXEMPLARS} exemplars)"
        );

        let mut entry = JsonObject::new();
        entry
            .field("q", q)
            .field("target", target)
            .field("rounds", rounds)
            .field("build_us", build_us)
            .field("select_p50_us", percentile_nearest_rank(&select_us, 0.5))
            .field("round_p50_us", p50)
            .field("round_p99_us", p99)
            .field("resident_bytes", bytes)
            .field("bytes_per_device", bytes_per_device)
            .field("trace_exemplars", TRACE_EXEMPLARS)
            .field("trace_overhead_pct", trace_overhead_pct)
            .field("raw_trace_overhead_pct", raw_trace_overhead_pct)
            .field("trace_cost_us_per_round", trace_cost_us_per_round);
        populations.push(entry);
    }
    tele_traced.finish();
    if args.trace.is_some() {
        println!("  digest trace written to {}", trace_path.display());
    } else {
        let _ = std::fs::remove_file(&trace_path);
    }

    let mut host = JsonObject::new();
    host.field(
        "available_parallelism",
        std::thread::available_parallelism().map_or(0usize, std::num::NonZeroUsize::get),
    );

    let mut report = JsonObject::new();
    report
        .field("bench", "population")
        .field("smoke", args.smoke)
        .field("seed", args.seed)
        .object("host", host)
        .field("populations", populations);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_population.json");
    std::fs::write(&path, report.finish() + "\n")?;
    println!("  report written to {}", path.display());
    Ok(())
}
