//! Population-scaling benchmark: selection + frequency determination
//! at fleet sizes the paper never reaches.
//!
//! For each population size `Q` the harness builds a struct-of-arrays
//! [`Fleet`](mec_sim::fleet::Fleet) (no `Vec<Device>` is ever
//! materialized), runs the indexed HELCFL selector plus the Alg.-3
//! slack DVFS policy over a fleet-backed context, and reports
//! per-round latency percentiles and resident bytes per device. The
//! first warmup round absorbs the one-time index build; measured
//! rounds reflect the steady state a long training run lives in.
//!
//! The selection target scales as `min(max(Q/1000, 10), 10 000)` —
//! the paper's `C = 0.1` would select 100 000 devices at `Q = 10^6`,
//! which no real deployment does per round; a sub-percent cohort is
//! the realistic regime the 50 ms latency budget applies to.
//!
//! Results go to stdout and `results/BENCH_population.json`
//! (`helcfl-trace gate` diffs two such reports per population size).
//!
//! Usage: `bench_population [--smoke] [--seed N]`
//!
//! `--smoke` stops the size sweep at `Q = 10^5` and trims rounds for
//! CI; the per-Q numbers stay comparable to the full report under the
//! loose gate tolerances.

use std::path::Path;
use std::time::Instant;

use fl_sim::frequency::FrequencyPolicy;
use fl_sim::selection::{ClientSelector, SelectionContext};
use helcfl::{IndexedDecaySelector, SlackFrequencyPolicy};
use helcfl_bench::gate::percentile_nearest_rank;
use helcfl_bench::json::JsonObject;
use mec_sim::population::PopulationBuilder;
use mec_sim::units::Bits;

/// Population sizes of the full sweep (`--smoke` keeps the first 3).
const SIZES: [usize; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];
const SMOKE_SIZES: usize = 3;

struct Args {
    smoke: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args { smoke: false, seed: 2022 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                args.seed = v.parse().expect("--seed must be an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_population [--smoke] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Realistic per-round cohort: sub-percent of the fleet, at least 10,
/// capped at 10 000 (see module docs).
fn target_for(q: usize) -> usize {
    (q / 1000).clamp(10, 10_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let sizes = if args.smoke { &SIZES[..SMOKE_SIZES] } else { &SIZES[..] };
    let (warmup, rounds) = if args.smoke { (2, 10) } else { (3, 30) };
    let payload = Bits::from_megabits(40.0);

    println!(
        "Population-scaling bench — {} rounds/size after {warmup} warmup{}",
        rounds,
        if args.smoke { " (smoke)" } else { "" }
    );
    let mut populations = Vec::new();
    for &q in sizes {
        let target = target_for(q);
        let built = Instant::now();
        let fleet = PopulationBuilder::paper_default()
            .num_devices(q)
            .seed(args.seed)
            .build_fleet()?;
        let mut selector = IndexedDecaySelector::default();
        // Warmup: round 1 pays the one-time index build; later warmup
        // rounds settle counters into their steady-state spread.
        for round in 1..=warmup {
            let ctx = SelectionContext {
                round,
                devices: (&fleet).into(),
                payload,
                target,
            };
            let selected = selector.select(&ctx)?;
            let _ = SlackFrequencyPolicy.frequencies(&fleet.gather(&selected), payload)?;
        }
        let build_us = built.elapsed().as_micros() as u64;

        let mut select_us: Vec<u64> = Vec::with_capacity(rounds);
        let mut round_us: Vec<u64> = Vec::with_capacity(rounds);
        for round in 1..=rounds {
            let started = Instant::now();
            let ctx = SelectionContext {
                round: warmup + round,
                devices: (&fleet).into(),
                payload,
                target,
            };
            let selected = selector.select(&ctx)?;
            select_us.push(started.elapsed().as_micros() as u64);
            let freqs =
                SlackFrequencyPolicy.frequencies(&fleet.gather(&selected), payload)?;
            round_us.push(started.elapsed().as_micros() as u64);
            assert_eq!(freqs.len(), target, "policy must cover the whole cohort");
        }
        select_us.sort_unstable();
        round_us.sort_unstable();
        let bytes = fleet.memory_bytes() + selector.memory_bytes();
        let bytes_per_device = bytes as f64 / q as f64;
        let p50 = percentile_nearest_rank(&round_us, 0.5);
        let p99 = percentile_nearest_rank(&round_us, 0.99);
        println!(
            "  Q={q:>9}  target {target:>6}  round p50 {p50:>8} µs  p99 {p99:>8} µs  \
             {bytes_per_device:7.1} B/device  (setup+warmup {:.2} s)",
            build_us as f64 / 1e6
        );

        let mut entry = JsonObject::new();
        entry
            .field("q", q)
            .field("target", target)
            .field("rounds", rounds)
            .field("build_us", build_us)
            .field("select_p50_us", percentile_nearest_rank(&select_us, 0.5))
            .field("round_p50_us", p50)
            .field("round_p99_us", p99)
            .field("resident_bytes", bytes)
            .field("bytes_per_device", bytes_per_device);
        populations.push(entry);
    }

    let mut host = JsonObject::new();
    host.field(
        "available_parallelism",
        std::thread::available_parallelism().map_or(0usize, std::num::NonZeroUsize::get),
    );

    let mut report = JsonObject::new();
    report
        .field("bench", "population")
        .field("smoke", args.smoke)
        .field("seed", args.seed)
        .object("host", host)
        .field("populations", populations);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_population.json");
    std::fs::write(&path, report.finish() + "\n")?;
    println!("  report written to {}", path.display());
    Ok(())
}
