//! Ablation A4 — battery-constrained training (the paper's §I
//! motivation made measurable).
//!
//! Gives every device a finite battery and compares HELCFL with and
//! without Alg. 3 under shrinking availability: the DVFS arm spends
//! less energy per round, keeps more devices alive longer, and
//! therefore trains on more data — energy optimization becomes an
//! *accuracy* feature, not just a cost saving.
//!
//! Usage: `ablation_battery [--fast] [--seed N] [--setting iid|noniid]`

use helcfl_bench::report::ascii_table;
use helcfl_bench::{CommonArgs, Scheme};
use mec_sim::units::Joules;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    // Budgets chosen so the fleet visibly thins out within the run:
    // a participating device spends roughly 2–6 J per round.
    let budgets = [50.0, 100.0, 200.0];
    println!("Ablation — per-device battery budgets {budgets:?} J");

    for setting in args.settings() {
        println!("\n=== {} setting ===", setting.label().to_uppercase());
        let mut rows = Vec::new();
        for &budget in &budgets {
            let mut config = scenario.training_config();
            config.battery_capacity = Some(Joules::new(budget));
            let mut with_setup = scenario.setup(setting)?;
            let with_dvfs =
                Scheme::Helcfl { eta: 0.5, dvfs: true }.run(&mut with_setup, &config)?;
            let mut without_setup = scenario.setup(setting)?;
            let without =
                Scheme::Helcfl { eta: 0.5, dvfs: false }.run(&mut without_setup, &config)?;
            let survivors = |h: &fl_sim::history::TrainingHistory| {
                h.records().last().map_or(0, |r| r.alive_devices)
            };
            rows.push(vec![
                format!("{budget:.0} J"),
                format!("{:.4}", with_dvfs.best_accuracy()),
                format!("{:.4}", without.best_accuracy()),
                format!("{}", survivors(&with_dvfs)),
                format!("{}", survivors(&without)),
                format!("{}", with_dvfs.len()),
                format!("{}", without.len()),
            ]);
        }
        println!(
            "{}",
            ascii_table(
                &[
                    "budget",
                    "acc w/ DVFS",
                    "acc w/o DVFS",
                    "alive w/ DVFS",
                    "alive w/o",
                    "rounds w/ DVFS",
                    "rounds w/o"
                ],
                &rows
            )
        );
        println!(
            "  With finite batteries, Alg. 3's energy savings convert directly \
             into surviving devices and retained accuracy."
        );
    }
    Ok(())
}
