//! Ablation A2 — the user selection fraction C.
//!
//! The paper fixes C = 0.1 (10 of 100 users per round). This sweep
//! shows the cost surface around that choice: more users per round
//! means faster learning per iteration but longer (TDMA-serialized)
//! rounds and more energy per round.
//!
//! Usage: `ablation_fraction [--fast] [--seed N] [--setting iid|noniid]`

use std::path::Path;

use helcfl_bench::report::{ascii_table, table1_cell, write_histories};
use helcfl_bench::{CommonArgs, Scheme, Setting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let fractions = [0.05, 0.1, 0.2, 0.4];
    println!("Ablation — selection fraction C over {fractions:?}");

    for setting in args.settings() {
        let target = match (setting, args.fast) {
            (Setting::Iid, false) => 0.70,
            (Setting::NonIid, false) => 0.50,
            (Setting::Iid, true) => 0.40,
            (Setting::NonIid, true) => 0.35,
        };
        let mut rows = Vec::new();
        let mut histories = Vec::new();
        for &fraction in &fractions {
            let mut config = scenario.training_config();
            config.fraction = fraction;
            let mut setup = scenario.setup(setting)?;
            let history = Scheme::Helcfl { eta: 0.5, dvfs: true }.run(&mut setup, &config)?;
            let mean_round = history.total_time().get() / history.len() as f64;
            let mean_energy = history.total_energy().get() / history.len() as f64;
            rows.push(vec![
                format!("{fraction}"),
                format!("{:.4}", history.best_accuracy()),
                table1_cell(history.time_to_accuracy(target)),
                format!("{mean_round:.1}s"),
                format!("{mean_energy:.1} J"),
            ]);
            histories.push(history);
        }
        println!("\n=== {} setting (target {:.0}%) ===", setting.label(), target * 100.0);
        println!(
            "{}",
            ascii_table(
                &["C", "best acc", "time to target", "mean round", "mean round energy"],
                &rows
            )
        );
        write_histories(
            Path::new("results"),
            &format!("ablation_fraction_{}", setting.label()),
            &histories,
        )?;
    }
    Ok(())
}
