//! Fig. 1 — the slack-time illustration.
//!
//! Renders the TDMA round of a 5-user selection as an ASCII Gantt
//! chart, first with every device at `f_max` (the paper's energy-waste
//! picture: `.` marks idle slack) and then with Alg. 3's frequencies
//! (slack converted into slower, cheaper computation), plus the
//! per-device frequency/energy table.
//!
//! Usage: `fig1_slack [--fast] [--seed N]`

use fl_sim::frequency::FrequencyPolicy;
use helcfl::SlackFrequencyPolicy;
use helcfl_bench::report::ascii_table;
use helcfl_bench::CommonArgs;
use mec_sim::timeline::RoundTimeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let population = scenario.population()?;
    let payload = scenario.payload;

    // Five representative users, spread across the speed spectrum.
    let mut by_speed: Vec<_> = population.devices().to_vec();
    by_speed.sort_by(|a, b| {
        a.compute_delay_at_max().partial_cmp(&b.compute_delay_at_max()).unwrap()
    });
    let q = by_speed.len();
    let selected: Vec<_> =
        [0, q / 4, q / 2, 3 * q / 4, q - 1].iter().map(|&i| by_speed[i]).collect();

    println!("Fig. 1 reproduction — TDMA energy waste and its recovery\n");
    let at_max = RoundTimeline::simulate_at_max(&selected, payload)?;
    println!("Traditional FL (all at f_max): '=' compute, '.' slack wait, '#' upload");
    println!("{}", at_max.gantt(72));
    println!(
        "  makespan {:.1}s | total slack {:.1}s | energy {:.2} J\n",
        at_max.makespan().get(),
        at_max.total_slack().get(),
        at_max.total_energy().get()
    );

    let freqs = SlackFrequencyPolicy.frequencies(&selected, payload)?;
    let tuned = RoundTimeline::simulate(&selected, &freqs, payload)?;
    println!("HELCFL (Alg. 3 frequencies): slack reclaimed as slower computation");
    println!("{}", tuned.gantt(72));
    println!(
        "  makespan {:.1}s | total slack {:.1}s | energy {:.2} J",
        tuned.makespan().get(),
        tuned.total_slack().get(),
        tuned.total_energy().get()
    );
    println!(
        "  energy saving: {:.2}% at identical makespan\n",
        (1.0 - tuned.total_energy().get() / at_max.total_energy().get()) * 100.0
    );

    let mut rows = Vec::new();
    for (device, &f) in selected.iter().zip(&freqs) {
        let max_f = device.cpu().range().max();
        rows.push(vec![
            device.id().to_string(),
            format!("{:.2} GHz", max_f.ghz()),
            format!("{:.2} GHz", f.ghz()),
            format!("{:.2} J", device.compute_energy(max_f)?.get()),
            format!("{:.2} J", device.compute_energy(f)?.get()),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["device", "f_max", "Alg.3 f", "E_cal @ f_max", "E_cal @ Alg.3 f"],
            &rows
        )
    );
    Ok(())
}
