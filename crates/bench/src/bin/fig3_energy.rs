//! Fig. 3 — training-energy reduction via the DVFS-enabled frequency
//! determination (Alg. 3).
//!
//! Runs HELCFL twice on identical setups — once with Alg. 3, once with
//! every device pinned at `f_max` — and reports the cumulative energy
//! needed to reach each desired accuracy. Selection is deterministic,
//! so both arms see the same users, the same round delays, and the
//! same accuracy curve: the *only* difference is energy, exactly the
//! comparison Fig. 3 makes.
//!
//! Usage: `fig3_energy [--fast] [--seed N] [--setting iid|noniid]
//! [--trace-out PATH]` — set `HELCFL_TRACE=jsonl|stderr` (or
//! `--trace-out`) for per-round spans and a post-run metrics summary.

use std::path::Path;

use helcfl_bench::report::{ascii_table, write_histories};
use helcfl_bench::{CommonArgs, Scheme, Setting};

fn targets(setting: Setting, fast: bool) -> Vec<f64> {
    match (setting, fast) {
        (Setting::Iid, false) => vec![0.60, 0.70, 0.80],
        (Setting::NonIid, false) => vec![0.40, 0.50, 0.60],
        (Setting::Iid, true) => vec![0.30, 0.40, 0.50],
        (Setting::NonIid, true) => vec![0.25, 0.35, 0.45],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let tele = args.telemetry("fig3_energy");
    println!(
        "Fig. 3 reproduction — DVFS energy optimization, {} devices",
        scenario.num_devices
    );

    for setting in args.settings() {
        let config = scenario.training_config();
        let mut with_setup = scenario.setup(setting)?;
        let with_dvfs = Scheme::Helcfl { eta: 0.5, dvfs: true }
            .run_traced(&mut with_setup, &config, &tele)?;
        let mut without_setup = scenario.setup(setting)?;
        let without_dvfs = Scheme::Helcfl { eta: 0.5, dvfs: false }
            .run_traced(&mut without_setup, &config, &tele)?;

        println!("\n=== {} setting ===", setting.label().to_uppercase());
        let mut rows = Vec::new();
        for &t in &targets(setting, args.fast) {
            let on = with_dvfs.energy_to_accuracy(t);
            let off = without_dvfs.energy_to_accuracy(t);
            let (on_s, off_s, saving) = match (on, off) {
                (Some(a), Some(b)) => (
                    format!("{:.1} J", a.get()),
                    format!("{:.1} J", b.get()),
                    format!("{:.2}%", (1.0 - a.get() / b.get()) * 100.0),
                ),
                _ => ("✗".into(), "✗".into(), "-".into()),
            };
            rows.push(vec![format!("{:.0}%", t * 100.0), on_s, off_s, saving]);
        }
        // Whole-run totals (the J = 300 endpoint of the figure).
        rows.push(vec![
            "full run".into(),
            format!("{:.1} J", with_dvfs.total_energy().get()),
            format!("{:.1} J", without_dvfs.total_energy().get()),
            format!(
                "{:.2}%",
                (1.0 - with_dvfs.total_energy().get() / without_dvfs.total_energy().get())
                    * 100.0
            ),
        ]);
        println!(
            "{}",
            ascii_table(
                &["target acc", "energy w/ DVFS", "energy w/o DVFS", "saving"],
                &rows
            )
        );

        // Compute-only view (uploads are untouched by Alg. 3).
        let compute_with: f64 =
            with_dvfs.records().iter().map(|r| r.compute_energy.get()).sum();
        let compute_without: f64 =
            without_dvfs.records().iter().map(|r| r.compute_energy.get()).sum();
        println!(
            "  compute-energy saving across the run: {:.2}%",
            (1.0 - compute_with / compute_without) * 100.0
        );

        write_histories(
            Path::new("results"),
            &format!("fig3_{}", setting.label()),
            &[with_dvfs, without_dvfs],
        )?;
    }
    if tele.is_enabled() {
        eprintln!("\n{}", tele.report());
    }
    tele.finish();
    Ok(())
}
