//! `helcfl-trace` — inspect, audit, and gate telemetry artifacts.
//!
//! The read-side companion to `HELCFL_TRACE=jsonl`: everything the
//! workspace emits (span trees, per-device schedules, metrics lines,
//! bench reports) can be interpreted and verified from here.
//!
//! ```text
//! helcfl-trace tree   [PATH] [--round N] [--max-depth D] [--limit N]
//! helcfl-trace phases [PATH] [--json]
//! helcfl-trace check  [PATH]
//! helcfl-trace audit  [PATH]
//! helcfl-trace watch  [PATH] [--interval-ms N] [--max-polls N]
//! helcfl-trace diff   BASELINE CANDIDATE [--json] [--ignore-manifest]
//!                     [--max-phase-p50-growth-pct X]
//!                     [--max-phase-total-growth-pct X]
//!                     [--max-round-total-growth-pct X]
//! helcfl-trace flame  [PATH] [--out FILE]
//! helcfl-trace series [PATH] [--json] [--window N] [--mad-k X]
//! helcfl-trace gate   BASELINE CANDIDATE [--max-rps-drop-pct X]
//!                     [--max-latency-growth-pct X] [--max-overhead-pp X]
//!                     [--max-gflops-drop-pct X] [--max-bytes-growth-pct X]
//!                     [--max-trace-overhead-pct X]
//! ```
//!
//! `PATH` defaults to `results/trace_table1_delay.jsonl`. Every
//! subcommand exits non-zero on failure, so all of them can gate CI:
//! `check` enforces the ≥ 80 % per-round span-coverage rule, `audit`
//! replays the trace against the paper's analytic model (slack ≥ 0,
//! TDMA serialization, Alg. 3 delay-neutrality, `E ∝ f²` consistency,
//! metrics/span agreement), `diff` compares two *traces* (refusing
//! cross-experiment comparisons via their `run_manifest` provenance
//! lines, then reporting per-phase p50/p99/total deltas, a metrics
//! diff, an audit diff, and a ranked attribution of the round-time
//! delta), and `gate` diffs two scalar bench reports — round-engine,
//! kernel, or population-scaling, told apart by their `"bench"` tag —
//! against regression tolerances.
//!
//! `flame` exports folded stacks (`path;to;span self_µs`) consumable
//! by flamegraph.pl / speedscope; `series` prints the per-round
//! timeseries with rolling-median/MAD anomaly flags, catching phases
//! that drift *within* one long run.
//!
//! `watch` tails a trace that is *still being written*: the runner
//! flushes whole rounds at its round barrier, so each poll parses the
//! well-formed prefix (a partially-flushed tail line and
//! not-yet-parented spans are skipped, not fatal), prints a one-line
//! snapshot whenever new rounds land (announcing each run_manifest as
//! it appears), and exits once the trailing metrics line marks the run
//! finished.

use std::process::ExitCode;
use std::time::Duration;

use helcfl_bench::gate::{
    gate, gate_kernels, gate_population, GateConfig, KernelGateConfig, PopulationGateConfig,
};
use helcfl_telemetry::analyze::{
    check_coverage, folded_stacks, mad_flags, phase_breakdown, prune_orphan_spans,
    round_series, SpanTree, Trace,
};
use helcfl_telemetry::audit::{audit, AuditConfig};
use helcfl_telemetry::diff::{diff_traces, DiffConfig};
use helcfl_telemetry::json::JsonObject;

const DEFAULT_TRACE: &str = "results/trace_table1_delay.jsonl";

const USAGE: &str =
    "usage: helcfl-trace <tree|phases|check|audit|watch|diff|flame|series|gate> [args]
  tree   [PATH] [--round N] [--max-depth D] [--limit N]   render span trees
  phases [PATH] [--json]                                  per-round phase table
  check  [PATH]                                           schema + coverage check
  audit  [PATH]                                           model-invariant audit
  watch  [PATH] [--interval-ms N] [--max-polls N]         tail a growing trace
  diff   BASELINE CANDIDATE [--json] [--ignore-manifest]
         [--max-phase-p50-growth-pct X] [--max-phase-total-growth-pct X]
         [--max-round-total-growth-pct X]
                                                          cross-run trace diff
              (refuses mismatched run_manifest provenance)
  flame  [PATH] [--out FILE]                              folded-stack export
  series [PATH] [--json] [--window N] [--mad-k X]         per-round timeseries
              (rolling-median/MAD anomaly flags)
  gate   BASELINE CANDIDATE [--max-rps-drop-pct X]
         [--max-latency-growth-pct X] [--max-overhead-pp X]
         [--max-gflops-drop-pct X] [--max-bytes-growth-pct X]
         [--max-trace-overhead-pct X]
                                                          bench regression gate
              (round_engine, kernels, or population reports, by \"bench\" tag)
PATH defaults to results/trace_table1_delay.jsonl";

/// Flags that take no value (presence-only switches).
const SWITCHES: &[&str] = &["json", "ignore-manifest"];

/// Positional arguments and `--flag value` pairs, untangled.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut out = Self { positional: Vec::new(), flags: Vec::new() };
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.flags.push((name.to_string(), String::new()));
                    i += 1;
                } else {
                    let value = raw
                        .get(i + 1)
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    out.flags.push((name.to_string(), value.clone()));
                    i += 2;
                }
            } else {
                out.positional.push(raw[i].clone());
                i += 1;
            }
        }
        Ok(out)
    }

    fn flag_f64(&self, name: &str) -> Result<Option<f64>, String> {
        match self.flags.iter().find(|(k, _)| k == name) {
            Some((_, v)) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} wants a number, got {v:?}")),
            None => Ok(None),
        }
    }

    fn flag_usize(&self, name: &str) -> Result<Option<usize>, String> {
        match self.flags.iter().find(|(k, _)| k == name) {
            Some((_, v)) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
            None => Ok(None),
        }
    }

    fn flag_str(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when a presence-only switch (`--json`, …) was given.
    fn flag_set(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn trace_path(&self) -> &str {
        self.positional.first().map_or(DEFAULT_TRACE, String::as_str)
    }
}

fn cmd_tree(args: &Args) -> Result<(), String> {
    let trace = Trace::load(args.trace_path())?;
    let tree = SpanTree::build(&trace)?;
    let max_depth = args.flag_usize("max-depth")?.unwrap_or(8);
    let limit = args.flag_usize("limit")?.unwrap_or(5);
    let round_filter = args.flag_usize("round")?;

    let roots: Vec<_> = tree
        .roots()
        .filter(|s| match round_filter {
            Some(n) => s.name == "round" && s.attr_u64("index") == Some(n as u64),
            None => true,
        })
        .collect();
    if roots.is_empty() {
        return Err(match round_filter {
            Some(n) => format!("no round span with index {n}"),
            None => "no root spans".to_string(),
        });
    }
    for root in roots.iter().take(limit) {
        print!("{}", tree.render(root.id, max_depth));
        let path = tree.critical_path(root.id);
        if path.len() > 1 {
            let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
            println!("  critical path: {}", names.join(" → "));
        }
    }
    if roots.len() > limit {
        println!(
            "({} more root spans not shown; raise --limit to see them)",
            roots.len() - limit
        );
    }
    Ok(())
}

fn cmd_phases(args: &Args) -> Result<(), String> {
    let trace = Trace::load(args.trace_path())?;
    let tree = SpanTree::build(&trace)?;
    let breakdown = phase_breakdown(&trace, &tree);
    if breakdown.rounds == 0 {
        return Err("no round spans — was a federated run traced?".to_string());
    }
    if args.flag_set("json") {
        println!("{}", breakdown.to_json().finish());
    } else {
        print!("{}", breakdown.render());
    }
    Ok(())
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args.trace_path();
    let trace = Trace::load(path)?;
    let report = check_coverage(&trace)?;
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    println!("{path}: OK — {}", report.summary());
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let path = args.trace_path();
    let trace = Trace::load(path)?;
    let report = audit(&trace, &AuditConfig::default())?;
    print!("{path}: {}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} invariant violation(s)", report.violations.len()))
    }
}

/// Tails a growing trace file. Each poll re-reads the file, parses the
/// well-formed prefix leniently, and prints a one-line snapshot when
/// new rounds have landed. Exits when the trailing metrics line
/// appears (the writer called `finish()`), or after `--max-polls`
/// polls — both are success: a watcher outliving its run is not a
/// trace defect.
fn cmd_watch(args: &Args) -> Result<(), String> {
    let path = args.trace_path();
    let interval =
        Duration::from_millis(args.flag_usize("interval-ms")?.unwrap_or(500) as u64);
    let max_polls = args.flag_usize("max-polls")?.unwrap_or(usize::MAX);
    let mut last_rounds = 0usize;
    let mut seen_manifests = 0usize;
    let mut reported_final = false;
    let mut polls = 0usize;
    loop {
        // The file may not exist yet (watch started before the run).
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let (mut trace, mut pending) = Trace::parse_prefix(&text);
        pending += prune_orphan_spans(&mut trace);
        let finished = trace.metrics.is_some();
        // Announce provenance as soon as the runner stamps it, so a
        // watcher knows *which* run it is tailing.
        for manifest in trace.manifests.iter().skip(seen_manifests) {
            println!("watch: {}", manifest.to_human_line());
        }
        seen_manifests = seen_manifests.max(trace.manifests.len());
        if !trace.spans.is_empty() {
            // Lenient parsing guarantees every surviving span's parent
            // chain resolves, so the tree build cannot fail here.
            let tree = SpanTree::build(&trace)?;
            let b = phase_breakdown(&trace, &tree);
            if b.rounds > last_rounds || (finished && !reported_final) {
                last_rounds = b.rounds;
                reported_final = finished;
                let top = b.phases.first().map_or_else(
                    || "-".to_string(),
                    |p| {
                        format!(
                            "{} {:.0}%",
                            p.name,
                            100.0 * p.total_us as f64 / b.rounds_total_us.max(1) as f64
                        )
                    },
                );
                println!(
                    "watch: {} round(s), {:.2} s spanned, top phase {top}, \
                     {pending} pending line(s)",
                    b.rounds,
                    b.rounds_total_us as f64 / 1e6,
                );
            }
        }
        if finished {
            println!("watch: run finished — metrics line seen");
            return Ok(());
        }
        polls += 1;
        if polls >= max_polls {
            println!("watch: stopped after {polls} poll(s) without a metrics line");
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Cross-run trace diff: refuse incompatible runs, then report deltas.
fn cmd_diff(args: &Args) -> Result<(), String> {
    let [baseline, candidate] = args.positional.as_slice() else {
        return Err("diff wants exactly two paths: BASELINE CANDIDATE".to_string());
    };
    let base = Trace::load(baseline)?;
    let cand = Trace::load(candidate)?;
    let cfg = DiffConfig {
        max_phase_p50_growth_pct: args.flag_f64("max-phase-p50-growth-pct")?,
        max_phase_total_growth_pct: args.flag_f64("max-phase-total-growth-pct")?,
        max_round_total_growth_pct: args.flag_f64("max-round-total-growth-pct")?,
        ignore_manifest: args.flag_set("ignore-manifest"),
    };
    let report = diff_traces(&base, &cand, &cfg)?;
    if args.flag_set("json") {
        println!("{}", report.to_json().finish());
    } else {
        print!("{}", report.render());
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} regression(s) beyond tolerance", report.failures.len()))
    }
}

/// Folded-stack export: one `path;to;span self_µs` line per stack,
/// directly consumable by flamegraph.pl or speedscope.
fn cmd_flame(args: &Args) -> Result<(), String> {
    let trace = Trace::load(args.trace_path())?;
    let tree = SpanTree::build(&trace)?;
    let stacks = folded_stacks(&tree);
    if stacks.is_empty() {
        return Err("no spans with self-time — was anything traced?".to_string());
    }
    let mut out = String::new();
    for (path, self_us) in &stacks {
        out.push_str(path);
        out.push(' ');
        out.push_str(&self_us.to_string());
        out.push('\n');
    }
    match args.flag_str("out") {
        Some(path) => std::fs::write(path, &out)
            .map_err(|e| format!("cannot write {path}: {e}"))?,
        None => print!("{out}"),
    }
    Ok(())
}

/// Per-round timeseries with rolling-median/MAD anomaly flags.
fn cmd_series(args: &Args) -> Result<(), String> {
    let trace = Trace::load(args.trace_path())?;
    let tree = SpanTree::build(&trace)?;
    let points = round_series(&trace, &tree);
    if points.is_empty() {
        return Err("no round spans — was a federated run traced?".to_string());
    }
    let window = args.flag_usize("window")?.unwrap_or(16);
    let mad_k = args.flag_f64("mad-k")?.unwrap_or(5.0);
    let durations: Vec<f64> = points.iter().map(|p| p.dur_us as f64).collect();
    let flags = mad_flags(&durations, window, mad_k);
    if args.flag_set("json") {
        let rows: Vec<JsonObject> = points
            .iter()
            .zip(&flags)
            .map(|(p, &anomalous)| {
                let mut row = JsonObject::new();
                row.field("round", p.index);
                row.field("t_us", p.t_us);
                row.field("dur_us", p.dur_us);
                row.field("anomalous", anomalous);
                let mut phases = JsonObject::new();
                for (name, us) in &p.phases {
                    phases.field(name, *us);
                }
                row.object("phases", phases);
                row
            })
            .collect();
        let mut doc = JsonObject::new();
        doc.field("rounds", points.len() as u64);
        doc.field("window", window as u64);
        doc.field("mad_k", mad_k);
        doc.field("anomalies", flags.iter().filter(|&&f| f).count() as u64);
        doc.field("points", rows);
        println!("{}", doc.finish());
    } else {
        let anomalies = flags.iter().filter(|&&f| f).count();
        println!(
            "series: {} round(s), window {window}, mad-k {mad_k}, {anomalies} anomalie(s)",
            points.len()
        );
        for (p, &anomalous) in points.iter().zip(&flags) {
            let label = p
                .index
                .map_or_else(|| "?".to_string(), |i| i.to_string());
            let top = p.phases.iter().max_by_key(|(_, us)| *us).map_or_else(
                || "-".to_string(),
                |(name, us)| format!("{name} {us} µs"),
            );
            println!(
                "  round {label:>4}  {:>10} µs  top {top}{}",
                p.dur_us,
                if anomalous { "  ← ANOMALY" } else { "" },
            );
        }
    }
    Ok(())
}

fn cmd_gate(args: &Args) -> Result<(), String> {
    let [baseline, candidate] = args.positional.as_slice() else {
        return Err("gate wants exactly two paths: BASELINE CANDIDATE".to_string());
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let baseline_text = read(baseline)?;
    let candidate_text = read(candidate)?;
    // Dispatch on the report family: both `BENCH_round_engine.json`
    // and `BENCH_kernels.json` carry a top-level `"bench"` tag.
    let family = helcfl_telemetry::json::parse(&baseline_text)
        .ok()
        .and_then(|v| v.get("bench").and_then(|b| b.as_str().map(str::to_string)))
        .unwrap_or_default();
    let report = if family == "kernels" {
        let mut cfg = KernelGateConfig::default();
        if let Some(v) = args.flag_f64("max-gflops-drop-pct")? {
            cfg.max_gflops_drop_pct = v;
        }
        gate_kernels(&baseline_text, &candidate_text, &cfg)?
    } else if family == "population" {
        let mut cfg = PopulationGateConfig::default();
        if let Some(v) = args.flag_f64("max-latency-growth-pct")? {
            cfg.max_latency_growth_pct = v;
        }
        if let Some(v) = args.flag_f64("max-bytes-growth-pct")? {
            cfg.max_bytes_growth_pct = v;
        }
        if let Some(v) = args.flag_f64("max-trace-overhead-pct")? {
            cfg.max_trace_overhead_pct = v;
        }
        gate_population(&baseline_text, &candidate_text, &cfg)?
    } else {
        let mut cfg = GateConfig::default();
        if let Some(v) = args.flag_f64("max-rps-drop-pct")? {
            cfg.max_rps_drop_pct = v;
        }
        if let Some(v) = args.flag_f64("max-latency-growth-pct")? {
            cfg.max_latency_growth_pct = v;
        }
        if let Some(v) = args.flag_f64("max-overhead-pp")? {
            cfg.max_overhead_pp = v;
        }
        gate(&baseline_text, &candidate_text, &cfg)?
    };
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err("performance regression beyond tolerance".to_string())
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), String> {
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "tree" => cmd_tree(&args),
            "phases" => cmd_phases(&args),
            "check" => cmd_check(&args),
            "audit" => cmd_audit(&args),
            "watch" => cmd_watch(&args),
            "diff" => cmd_diff(&args),
            "flame" => cmd_flame(&args),
            "series" => cmd_series(&args),
            "gate" => cmd_gate(&args),
            other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("helcfl-trace {cmd}: FAIL — {msg}");
            ExitCode::FAILURE
        }
    }
}
