//! Ablation A3 — slack utilization of Alg. 3.
//!
//! For each round of a HELCFL run, compares the slack the traditional
//! schedule would leave against what remains after Alg. 3's frequency
//! determination (residual slack = head-room DVFS could not use due to
//! `f_min` clamping), and the resulting per-round compute-energy
//! saving.
//!
//! Usage: `ablation_slack [--fast] [--seed N] [--setting iid|noniid]`

use helcfl_bench::report::ascii_table;
use helcfl_bench::{CommonArgs, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    println!("Ablation — slack utilization of the Alg. 3 schedule");

    for setting in args.settings() {
        let config = scenario.training_config();
        let mut with_setup = scenario.setup(setting)?;
        let with_dvfs =
            Scheme::Helcfl { eta: 0.5, dvfs: true }.run(&mut with_setup, &config)?;
        let mut without_setup = scenario.setup(setting)?;
        let without =
            Scheme::Helcfl { eta: 0.5, dvfs: false }.run(&mut without_setup, &config)?;

        // Aggregate over the run.
        let total_slack_before: f64 =
            without.records().iter().map(|r| r.slack.get()).sum();
        let total_slack_after: f64 =
            with_dvfs.records().iter().map(|r| r.slack.get()).sum();
        let compute_before: f64 =
            without.records().iter().map(|r| r.compute_energy.get()).sum();
        let compute_after: f64 =
            with_dvfs.records().iter().map(|r| r.compute_energy.get()).sum();

        println!("\n=== {} setting ===", setting.label().to_uppercase());
        let mut rows = Vec::new();
        // A few representative rounds plus the aggregate.
        let n = with_dvfs.len();
        for idx in [0usize, n / 4, n / 2, 3 * n / 4, n - 1] {
            let a = &without.records()[idx];
            let b = &with_dvfs.records()[idx];
            rows.push(vec![
                format!("round {}", a.round),
                format!("{:.1}s", a.slack.get()),
                format!("{:.1}s", b.slack.get()),
                format!("{:.1} J", a.compute_energy.get()),
                format!("{:.1} J", b.compute_energy.get()),
            ]);
        }
        rows.push(vec![
            "TOTAL".into(),
            format!("{total_slack_before:.0}s"),
            format!("{total_slack_after:.0}s"),
            format!("{compute_before:.0} J"),
            format!("{compute_after:.0} J"),
        ]);
        println!(
            "{}",
            ascii_table(
                &[
                    "round",
                    "slack w/o DVFS",
                    "residual slack",
                    "E_cal w/o DVFS",
                    "E_cal w/ DVFS"
                ],
                &rows
            )
        );
        println!(
            "  slack utilized: {:.1}% | compute-energy saving: {:.2}%",
            (1.0 - total_slack_after / total_slack_before.max(1e-12)) * 100.0,
            (1.0 - compute_after / compute_before) * 100.0
        );
    }
    Ok(())
}
