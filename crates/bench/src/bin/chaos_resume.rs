//! Chaos kill–resume harness: proves the checkpoint/resume subsystem
//! survives real SIGKILLs, torn checkpoint writes, and tampered files.
//!
//! The parent (`--smoke`) first computes the golden uninterrupted
//! history in-process (fast IID scenario, HELCFL scheme — the same run
//! `results/golden/history_fast_iid_helcfl.csv` pins). It then drives
//! a child-process gauntlet against one checkpoint directory:
//!
//! 1. five seeded SIGKILLs at strictly increasing random rounds
//!    (`HELCFL_CHAOS_KILL_AT`, a real uncatchable `kill -9` delivered
//!    from inside the child at the end of the round),
//! 2. one torn checkpoint write (`HELCFL_CHAOS_TORN_AT`: half the
//!    body lands in the slot file with no atomic rename protecting
//!    it, then the process dies) — the next resume must detect the
//!    corruption by checksum and fall back to the ring's other slot,
//! 3. a final clean run that resumes and finishes.
//!
//! The final history CSV must equal the golden run **byte for byte**.
//! A tamper pass then bit-flips both ring slots and asserts the next
//! child refuses to resume, naming the checksum mismatch.
//!
//! Children enable checkpointing purely through the
//! `HELCFL_CHECKPOINT=dir:interval` environment variable — the same
//! path any production run behind the `Scheme` wrappers would use.
//!
//! Usage: `chaos_resume --smoke [--seed N]` (CI) or
//! `chaos_resume --child --out CSV` (internal child mode).

use std::error::Error;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use detrand::Rng;
use fl_sim::checkpoint::{CHAOS_KILL_ENV, CHAOS_TORN_ENV, CHECKPOINT_ENV};
use helcfl_bench::{PaperScenario, Scheme, Setting};

/// Checkpoint every this many rounds in the gauntlet; kept at 2 so
/// kills at odd rounds land between checkpoints and resumes must
/// replay work.
const INTERVAL: usize = 2;

/// Seeded SIGKILL schedule: `kills` strictly increasing rounds in
/// `2..max_rounds - 2`, plus one even (checkpoint-aligned) torn-write
/// round strictly after the last kill.
fn chaos_schedule(seed: u64, kills: usize, max_rounds: usize) -> (Vec<usize>, usize) {
    let mut rng = Rng::seed_from_u64(seed);
    let lo = 2;
    let hi = max_rounds - 2;
    let mut rounds: Vec<usize> =
        rng.sample_indices(hi - lo, kills).into_iter().map(|r| r + lo).collect();
    rounds.sort_unstable();
    // The torn write needs a round the cadence actually saves on
    // (multiple of INTERVAL) after every kill, so each chaos event is
    // reached by the run resumed from the previous one.
    let last = *rounds.last().expect("kills >= 1");
    let torn = if (last + 1).is_multiple_of(INTERVAL) { last + 1 } else { last + 2 };
    (rounds, torn)
}

fn golden_csv() -> Result<String, Box<dyn Error>> {
    let scenario = PaperScenario::fast();
    let config = scenario.training_config();
    let mut setup = scenario.setup(Setting::Iid)?;
    let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
    Ok(scheme.run(&mut setup, &config)?.to_csv())
}

/// Child mode: one fast-IID HELCFL run with checkpointing driven
/// entirely by the environment the parent set. Writes the history CSV
/// to `--out` when (if) the run completes.
fn run_child(raw: &[String]) -> Result<(), Box<dyn Error>> {
    let out = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .ok_or("--child needs --out PATH")?;
    let scenario = PaperScenario::fast();
    let config = scenario.training_config();
    let mut setup = scenario.setup(Setting::Iid)?;
    let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
    let history = scheme.run(&mut setup, &config)?;
    fs::write(out, history.to_csv())?;
    Ok(())
}

struct Gauntlet {
    exe: PathBuf,
    dir: PathBuf,
    out: PathBuf,
}

impl Gauntlet {
    /// Spawns one child. `chaos` optionally names an env var and the
    /// round it triggers at. Returns (success, stderr).
    fn spawn(&self, chaos: Option<(&str, usize)>) -> Result<(bool, String), Box<dyn Error>> {
        let mut cmd = Command::new(&self.exe);
        cmd.args(["--child", "--out"])
            .arg(&self.out)
            .env(CHECKPOINT_ENV, format!("{}:{INTERVAL}", self.dir.display()))
            .env_remove(CHAOS_KILL_ENV)
            .env_remove(CHAOS_TORN_ENV);
        if let Some((var, round)) = chaos {
            cmd.env(var, round.to_string());
        }
        let output = cmd.output()?;
        Ok((output.status.success(), String::from_utf8_lossy(&output.stderr).into_owned()))
    }
}

fn first_divergence(golden: &str, actual: &str) {
    for (line, (g, a)) in golden.lines().zip(actual.lines()).enumerate() {
        if g != a {
            eprintln!(
                "first divergence at line {}:\n  golden: {g}\n  actual: {a}",
                line + 1
            );
            return;
        }
    }
    eprintln!(
        "histories share every common line but differ in length \
         (golden {} lines, actual {})",
        golden.lines().count(),
        actual.lines().count()
    );
}

/// Flips one bit in the middle of every checkpoint slot found under
/// `dir` (env-driven checkpointing namespaces the ring into a
/// per-experiment subdirectory, so the walk recurses).
fn tamper_ring(dir: &Path) -> Result<usize, Box<dyn Error>> {
    let mut tampered = 0;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            tampered += tamper_ring(&path)?;
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("checkpoint_") && name.ends_with(".json")) {
            continue;
        }
        let mut bytes = fs::read(&path)?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes)?;
        tampered += 1;
    }
    Ok(tampered)
}

fn run_smoke(raw: &[String]) -> Result<(), Box<dyn Error>> {
    let seed = raw
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| raw.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022u64);
    let max_rounds = PaperScenario::fast().max_rounds;
    let (kills, torn) = chaos_schedule(seed, 5, max_rounds);
    println!(
        "chaos schedule (seed {seed}): SIGKILL at rounds {kills:?}, \
         torn checkpoint write at round {torn}, interval {INTERVAL}"
    );

    println!("computing golden uninterrupted history in-process…");
    let golden = golden_csv()?;

    let scratch = std::env::temp_dir().join(format!("helcfl_chaos_{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch)?;
    let gauntlet = Gauntlet {
        exe: std::env::current_exe()?,
        dir: scratch.join("ring"),
        out: scratch.join("history.csv"),
    };

    for (i, &round) in kills.iter().enumerate() {
        let (ok, _) = gauntlet.spawn(Some((CHAOS_KILL_ENV, round)))?;
        if ok {
            return Err(format!(
                "kill #{} at round {round} did not terminate the child — \
                 the chaos hook never fired",
                i + 1
            )
            .into());
        }
        println!("kill #{} at round {round}: child died as scheduled", i + 1);
    }

    let (ok, _) = gauntlet.spawn(Some((CHAOS_TORN_ENV, torn)))?;
    if ok {
        return Err(format!("torn write at round {torn} did not terminate the child").into());
    }
    println!("torn checkpoint write at round {torn}: child died mid-write");

    let (ok, stderr) = gauntlet.spawn(None)?;
    if !ok {
        return Err(format!("final clean run failed to resume:\n{stderr}").into());
    }
    if !stderr.contains("ignoring invalid slot") {
        return Err(format!(
            "the torn slot was not detected and skipped — expected a \
             ring-fallback warning on stderr, got:\n{stderr}"
        )
        .into());
    }
    println!("final run resumed past the torn slot and completed");

    let actual = fs::read_to_string(&gauntlet.out)?;
    if actual != golden {
        first_divergence(&golden, &actual);
        return Err(format!(
            "history after {} kills + 1 torn write diverged from the \
             golden uninterrupted run",
            kills.len()
        )
        .into());
    }
    println!(
        "history after {} kills + 1 torn write is byte-identical to the golden run \
         ({} bytes)",
        kills.len(),
        golden.len()
    );

    // Optional pinned-golden check: `--golden PATH` compares the
    // chaos-run history against a committed CSV (CI passes
    // results/golden/history_fast_iid_helcfl.csv).
    if let Some(path) = raw.iter().position(|a| a == "--golden").and_then(|i| raw.get(i + 1)) {
        let pinned = fs::read_to_string(path)?;
        if actual != pinned {
            first_divergence(&pinned, &actual);
            return Err(format!("chaos-run history diverged from pinned golden {path}").into());
        }
        println!("chaos-run history matches pinned golden {path} byte-exactly");
    }

    // Tamper pass: with every ring slot bit-flipped, resume must be
    // refused by name, never silently restarted from round 1.
    let tampered = tamper_ring(&gauntlet.dir)?;
    if tampered == 0 {
        return Err("no checkpoint slots left to tamper with".into());
    }
    let (ok, stderr) = gauntlet.spawn(None)?;
    if ok {
        return Err("a child accepted a tampered (bit-flipped) checkpoint ring".into());
    }
    if !stderr.contains("checksum mismatch") {
        return Err(format!(
            "tampered checkpoint was refused, but not by checksum name:\n{stderr}"
        )
        .into());
    }
    println!("tampered ring ({tampered} slots bit-flipped) refused: checksum mismatch named");

    let _ = fs::remove_dir_all(&scratch);
    println!("chaos_resume smoke: all gates passed");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--child") {
        return run_child(&raw);
    }
    if raw.iter().any(|a| a == "--smoke") {
        return run_smoke(&raw);
    }
    Err("usage: chaos_resume --smoke [--seed N]".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_increasing_in_range_and_torn_is_aligned() {
        for seed in [1u64, 2022, 99] {
            let (kills, torn) = chaos_schedule(seed, 5, 30);
            assert_eq!(kills.len(), 5);
            assert!(kills.windows(2).all(|w| w[0] < w[1]), "{kills:?}");
            assert!(kills.iter().all(|&r| (2..28).contains(&r)), "{kills:?}");
            assert!(torn > *kills.last().unwrap());
            assert!(torn.is_multiple_of(INTERVAL), "torn round {torn} misses the cadence");
            assert!(torn <= 30, "torn round {torn} past the run");
        }
        // Distinct seeds produce distinct schedules.
        assert_ne!(chaos_schedule(1, 5, 30), chaos_schedule(2022, 5, 30));
    }
}
