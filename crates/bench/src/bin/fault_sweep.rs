//! Fault sweep — accuracy and energy vs device fault rate.
//!
//! Sweeps a uniform per-device fault rate (crash, straggler, transient
//! upload failure, channel degradation all at the same rate) across
//! HELCFL and the four baselines, recording how gracefully each scheme
//! degrades: final/best accuracy, the fraction of selected updates
//! actually delivered, total and wasted energy, and how many rounds
//! aggregated. SL trains on-device with no uploads, so it is immune to
//! the communication fault model and appears as a flat reference at
//! every rate.
//!
//! Usage: `fault_sweep [--fast] [--seed N] [--setting iid|noniid]
//! [--trace-out PATH]`
//!
//! Results land in `results/fault_sweep_{setting}.csv`.
//!
//! CI modes (used by `ci.sh`):
//!
//! * `fault_sweep --smoke` — one seeded HELCFL run on the fast IID
//!   scenario with every fault class at rate 0.2, a 30 s round
//!   deadline, and α_q refunds on; fails unless at least one fault
//!   actually fired. With `HELCFL_TRACE=jsonl` the trace lands in
//!   `results/trace_fault_sweep.jsonl` for `helcfl-trace check`/
//!   `audit`.
//! * `fault_sweep --golden-write PATH` — runs HELCFL on the fast IID
//!   scenario with the default (fault-free) engine and writes its
//!   history CSV to `PATH`.
//! * `fault_sweep --golden-check PATH` — reruns the same scenario with
//!   the fault-aware engine forced (an astronomically large round
//!   deadline activates it; the zero-rate fault plan never fires) and
//!   asserts the produced CSV is byte-identical to `PATH`. Any drift
//!   between the two engines on healthy rounds fails the build.

use std::fs;
use std::path::Path;

use fl_sim::faults::{DegradationPolicy, FaultConfig};
use fl_sim::history::TrainingHistory;
use helcfl_bench::{CommonArgs, PaperScenario, Scheme, Setting};
use mec_sim::units::Seconds;

const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

/// The reference run both golden modes reproduce: HELCFL, fast
/// scenario, IID, default seed.
fn golden_history(force_faulted_engine: bool) -> Result<TrainingHistory, Box<dyn std::error::Error>> {
    let scenario = PaperScenario::fast();
    let mut config = scenario.training_config();
    if force_faulted_engine {
        // A never-binding deadline switches the runner onto the
        // fault-aware engine while the zero-rate fault plan stays
        // inert; the histories must still match bit for bit.
        config.degradation = DegradationPolicy {
            round_deadline: Some(Seconds::new(1.0e12)),
            ..DegradationPolicy::default()
        };
    }
    let mut setup = scenario.setup(Setting::Iid)?;
    let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
    Ok(scheme.run(&mut setup, &config)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--golden-write") {
        let path = raw.get(i + 1).map(String::as_str).ok_or("--golden-write needs a path")?;
        let history = golden_history(false)?;
        if let Some(parent) = Path::new(path).parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, history.to_csv())?;
        println!("golden history written to {path}");
        return Ok(());
    }
    if let Some(i) = raw.iter().position(|a| a == "--golden-check") {
        let path = raw.get(i + 1).map(String::as_str).ok_or("--golden-check needs a path")?;
        let golden = fs::read_to_string(path)
            .map_err(|e| format!("cannot read golden history {path}: {e}"))?;
        let actual = golden_history(true)?.to_csv();
        if actual == golden {
            println!(
                "golden check OK: fault-aware engine reproduces {path} byte-for-byte"
            );
            return Ok(());
        }
        for (line, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            if a != g {
                eprintln!("first divergence at line {}:\n  golden: {g}\n  actual: {a}", line + 1);
                break;
            }
        }
        return Err(format!(
            "fault-aware engine with zero faults diverged from the committed \
             golden history {path} — the two engines are no longer bit-identical"
        )
        .into());
    }

    if raw.iter().any(|a| a == "--smoke") {
        let args = CommonArgs::parse(raw);
        let tele = args.telemetry("fault_sweep");
        let scenario = PaperScenario::fast();
        let mut config = scenario.training_config();
        config.faults = FaultConfig::uniform(0.2);
        config.degradation = DegradationPolicy {
            round_deadline: Some(Seconds::new(30.0)),
            min_quorum: 1,
            charge_failed_selections: false,
        };
        let mut setup = scenario.setup(Setting::Iid)?;
        let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
        let history = scheme.run_traced(&mut setup, &config, &tele)?;
        let faults: usize = history.records().iter().map(|r| r.faults).sum();
        println!(
            "fault smoke: {} rounds, {faults} faults, delivered fraction {:.3}, \
             wasted {:.3} J, {} rounds aggregated",
            history.len(),
            history.delivered_fraction(),
            history.total_wasted_energy().get(),
            history.rounds_aggregated(),
        );
        tele.finish();
        if faults == 0 {
            return Err("fault smoke fired zero faults — the plan is inert".into());
        }
        return Ok(());
    }

    let args = CommonArgs::parse(raw);
    let scenario = args.scenario();
    let tele = args.telemetry("fault_sweep");
    println!(
        "Fault sweep — {} devices, {} rounds, rates {RATES:?}",
        scenario.num_devices, scenario.max_rounds
    );

    for setting in args.settings() {
        let mut csv = String::from(
            "rate,scheme,final_accuracy,best_accuracy,delivered_fraction,\
             total_energy_j,wasted_energy_j,rounds_aggregated\n",
        );
        // SL has no round trip to disturb; one run serves every rate.
        let mut sl_history: Option<TrainingHistory> = None;
        for &rate in &RATES {
            println!("\n=== {} setting, fault rate {rate} ===", setting.label());
            for scheme in Scheme::lineup() {
                let history = if matches!(scheme, Scheme::Sl) {
                    if sl_history.is_none() {
                        let mut setup = scenario.setup(setting)?;
                        sl_history = Some(scheme.run_traced(
                            &mut setup,
                            &scenario.training_config(),
                            &tele,
                        )?);
                    }
                    sl_history.clone().expect("populated above")
                } else {
                    let mut config = scenario.training_config();
                    config.faults = FaultConfig::uniform(rate);
                    let mut setup = scenario.setup(setting)?;
                    scheme.run_traced(&mut setup, &config, &tele)?
                };
                let line = format!(
                    "{rate},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                    history.scheme(),
                    history.final_accuracy().unwrap_or(0.0),
                    history.best_accuracy(),
                    history.delivered_fraction(),
                    history.total_energy().get(),
                    history.total_wasted_energy().get(),
                    history.rounds_aggregated(),
                );
                print!("  {line}");
                csv.push_str(&line);
            }
        }
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("fault_sweep_{}.csv", setting.label()));
        fs::write(&path, &csv)?;
        println!("\nwrote {}", path.display());
    }
    tele.finish();
    Ok(())
}
