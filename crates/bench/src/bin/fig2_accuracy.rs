//! Fig. 2 — accuracy vs training iteration, five schemes, IID and
//! Non-IID CIFAR-10-like settings.
//!
//! Regenerates the series behind Fig. 2(a)/(b): per-round global test
//! accuracy for HELCFL, Classic FL, FedCS, FEDL, and SL. Prints a
//! summary table (best accuracy, accuracy at J=300) plus sparkline
//! curves, and writes full per-round CSVs to `results/`.
//!
//! Usage: `fig2_accuracy [--fast] [--seed N] [--setting iid|noniid]
//! [--trace-out PATH]` — set `HELCFL_TRACE=jsonl|stderr` (or
//! `--trace-out`) for per-round spans and a post-run metrics summary.

use std::path::Path;
use std::time::Instant;

use helcfl_bench::report::{ascii_table, downsample, sparkline, write_histories};
use helcfl_bench::{CommonArgs, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let tele = args.telemetry("fig2_accuracy");
    println!(
        "Fig. 2 reproduction — {} devices, {} rounds, C = {}",
        scenario.num_devices, scenario.max_rounds, scenario.fraction
    );

    for setting in args.settings() {
        println!("\n=== {} setting ===", setting.label().to_uppercase());
        let config = scenario.training_config();
        let mut histories = Vec::new();
        for scheme in Scheme::lineup() {
            let started = Instant::now();
            let mut setup = scenario.setup(setting)?;
            let history = scheme.run_traced(&mut setup, &config, &tele)?;
            eprintln!(
                "  ran {:<8} in {:.1}s (best accuracy {:.4})",
                scheme.label(),
                started.elapsed().as_secs_f64(),
                history.best_accuracy()
            );
            histories.push(history);
        }

        let mut rows = Vec::new();
        for h in &histories {
            let curve = h.accuracy_curve();
            rows.push(vec![
                h.scheme().to_string(),
                format!("{:.4}", h.best_accuracy()),
                h.final_accuracy().map_or("-".into(), |a| format!("{a:.4}")),
                sparkline(&downsample(&curve, 40)),
            ]);
        }
        println!(
            "{}",
            ascii_table(&["scheme", "best acc", "final acc", "accuracy curve"], &rows)
        );

        // Paper-style deltas: HELCFL's best accuracy vs each baseline.
        let helcfl_best = histories[0].best_accuracy();
        for h in &histories[1..] {
            println!(
                "  HELCFL vs {:<8}: {:+.2}% best accuracy",
                h.scheme(),
                (helcfl_best - h.best_accuracy()) * 100.0
            );
        }

        write_histories(
            Path::new("results"),
            &format!("fig2_{}", setting.label()),
            &histories,
        )?;
        println!("  per-round CSVs written to results/fig2_{}_*.csv", setting.label());
    }
    if tele.is_enabled() {
        eprintln!("\n{}", tele.report());
    }
    tele.finish();
    Ok(())
}
