//! Round-engine performance harness (no external bench framework).
//!
//! Times three things with plain [`std::time::Instant`]:
//!
//! 1. **Blocked matmul kernels** — GFLOP/s of `matmul_into` at a few
//!    square sizes, steady-state (outputs preallocated, zero
//!    allocation inside the timed loop).
//! 2. **Serial round engine** — rounds/sec of `run_federated` with
//!    `threads = 1`.
//! 3. **Parallel round engine** — the same scenario with the pool
//!    sized to the detected host parallelism, plus the bit-identity
//!    check that both runs produced the same `TrainingHistory`.
//! 4. **Telemetry overhead** — the parallel run repeated with a
//!    metrics-collecting (null-sink) telemetry handle; the report
//!    records the relative slowdown so the <2 % overhead budget in
//!    DESIGN.md stays checkable.
//! 5. **Per-round latency** — the run repeated once more with full
//!    event tracing into a memory sink; the `round` span durations
//!    give exact (nearest-rank, not histogram-approximated) p50/p99
//!    per-round wall-clock, so `helcfl-trace gate` can catch latency
//!    regressions, not just throughput drops.
//!
//! Results go to stdout and `results/BENCH_round_engine.json`. The
//! recorded numbers are whatever the current host produces — on a
//! single-core container the speedup is honestly ~1.0; the ≥2×
//! target applies to hosts with ≥4 cores.
//!
//! Usage: `bench_round_engine [--fast] [--seed N]`

use std::path::Path;
use std::time::Instant;

use detrand::Rng;
use fl_sim::frequency::MaxFrequency;
use fl_sim::history::TrainingHistory;
use fl_sim::parallel::worker_threads;
use fl_sim::runner::run_federated_traced;
use fl_sim::seeds::{derive, SeedDomain};
use fl_baselines::classic::RandomSelector;
use helcfl_bench::gate::percentile_nearest_rank;
use helcfl_bench::json::JsonObject;
use helcfl_bench::{CommonArgs, PaperScenario, Setting};
use helcfl_telemetry::analyze::Trace;
use helcfl_telemetry::{MemorySink, Telemetry};
use tinynn::tensor::Matrix;

/// Measures one square matmul size: returns (seconds/iter, GFLOP/s).
fn bench_matmul(n: usize, iters: usize, rng: &mut Rng) -> (f64, f64) {
    let a = random_matrix(n, n, rng);
    let b = random_matrix(n, n, rng);
    let mut out = Matrix::zeros(n, n).expect("zeros");
    // Warm up (fills caches, faults pages, JIT-free but still fair).
    for _ in 0..2 {
        a.matmul_into(&b, &mut out).expect("matmul");
    }
    let started = Instant::now();
    for _ in 0..iters {
        a.matmul_into(&b, &mut out).expect("matmul");
    }
    let secs = started.elapsed().as_secs_f64() / iters as f64;
    let flops = 2.0 * (n as f64).powi(3);
    (secs, flops / secs / 1e9)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("from_vec")
}

/// What the OS reports, before the `HELCFL_THREADS` override that
/// [`worker_threads`] applies (0 when the query itself fails).
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
}

/// Runs the scenario with a fixed thread count; returns the history
/// and the wall-clock seconds of the training loop itself (setup
/// excluded).
fn timed_run(
    scenario: &PaperScenario,
    threads: usize,
    tele: &Telemetry,
) -> Result<(TrainingHistory, f64), Box<dyn std::error::Error>> {
    let mut config = scenario.training_config();
    config.threads = threads;
    let mut setup = scenario.setup(Setting::Iid)?;
    let mut selector = RandomSelector::new(derive(config.seed, SeedDomain::Selection));
    let started = Instant::now();
    let history =
        run_federated_traced(&mut setup, &config, &mut selector, &MaxFrequency, tele)?;
    Ok((history, started.elapsed().as_secs_f64()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let detected = worker_threads(0);
    println!(
        "Round-engine bench — {} devices, {} rounds, detected parallelism {}",
        scenario.num_devices, scenario.max_rounds, detected
    );

    // --- 1. Kernel microbenchmarks -------------------------------
    let mut rng = Rng::seed_from_u64(scenario.seed);
    let mut kernels = Vec::new();
    for &n in &[64usize, 128, 256] {
        let iters = (1 << 24) / (n * n) + 1; // keep each size ~comparable work
        let (secs, gflops) = bench_matmul(n, iters, &mut rng);
        println!("  matmul {n}x{n}x{n}: {gflops:.2} GFLOP/s ({:.1} µs/iter)", secs * 1e6);
        let mut k = JsonObject::new();
        k.field("n", n).field("iters", iters).field("secs_per_iter", secs).field(
            "gflops",
            gflops,
        );
        kernels.push(k);
    }

    // --- 2 & 3. Serial vs parallel round engine ------------------
    let disabled = Telemetry::disabled();
    let (serial_history, serial_secs) = timed_run(&scenario, 1, &disabled)?;
    let serial_rps = scenario.max_rounds as f64 / serial_secs;
    println!("  serial   (1 thread ): {serial_secs:.2}s, {serial_rps:.2} rounds/sec");

    let (parallel_history, parallel_secs) = timed_run(&scenario, detected, &disabled)?;
    let parallel_rps = scenario.max_rounds as f64 / parallel_secs;
    let speedup = serial_secs / parallel_secs;
    println!(
        "  parallel ({detected} threads): {parallel_secs:.2}s, {parallel_rps:.2} rounds/sec \
         ({speedup:.2}x)"
    );

    let bit_identical = serial_history == parallel_history;
    assert!(
        bit_identical,
        "determinism violation: serial and parallel histories differ"
    );
    println!("  histories bit-identical: {bit_identical}");

    // --- 4. Telemetry overhead (metrics on, events off) ----------
    let metered = Telemetry::metrics_only();
    let (metered_history, metered_secs) = timed_run(&scenario, detected, &metered)?;
    // A metered run that beats the untraced one is host noise, not
    // negative cost: clamp the gated number at zero and keep the raw
    // signed value alongside it.
    let raw_overhead_pct = (metered_secs / parallel_secs - 1.0) * 100.0;
    let overhead_pct = raw_overhead_pct.max(0.0);
    let telemetry_identical = metered_history == parallel_history;
    assert!(
        telemetry_identical,
        "determinism violation: telemetry changed the history"
    );
    println!(
        "  telemetry (metrics-only): {metered_secs:.2}s ({overhead_pct:.2}% vs untraced, \
         raw {raw_overhead_pct:+.2}%, history bit-identical: {telemetry_identical})"
    );

    // --- 5. Per-round latency percentiles (events on) ------------
    let sink = MemorySink::new();
    let traced = Telemetry::with_sink(sink.clone());
    let (traced_history, traced_secs) = timed_run(&scenario, detected, &traced)?;
    traced.finish();
    let traced_identical = traced_history == parallel_history;
    assert!(
        traced_identical,
        "determinism violation: event tracing changed the history"
    );
    let trace = Trace::parse(&sink.lines().join("\n"))
        .map_err(|e| format!("traced run emitted an invalid trace: {e}"))?;
    let mut round_durs: Vec<u64> = trace
        .spans
        .iter()
        .filter(|s| s.name == "round")
        .map(|s| s.dur_us)
        .collect();
    assert!(!round_durs.is_empty(), "traced run emitted no round spans");
    round_durs.sort_unstable();
    let p50_us = percentile_nearest_rank(&round_durs, 0.5);
    let p99_us = percentile_nearest_rank(&round_durs, 0.99);
    let max_us = *round_durs.last().expect("non-empty");
    let mean_us = round_durs.iter().sum::<u64>() as f64 / round_durs.len() as f64;
    let raw_events_overhead_pct = (traced_secs / parallel_secs - 1.0) * 100.0;
    let events_overhead_pct = raw_events_overhead_pct.max(0.0);
    println!(
        "  traced   (events on ): {traced_secs:.2}s ({events_overhead_pct:.2}% vs untraced, \
         raw {raw_events_overhead_pct:+.2}%), \
         per-round p50 {p50_us} µs, p99 {p99_us} µs, max {max_us} µs"
    );

    // --- Report --------------------------------------------------
    let mut host = JsonObject::new();
    host.field("available_parallelism", available_parallelism())
        .field("detected_parallelism", detected)
        .field("pool_workers", detected)
        .field("helcfl_threads_env", std::env::var("HELCFL_THREADS").ok());

    let mut scn = JsonObject::new();
    scn.field("fast", args.fast)
        .field("num_devices", scenario.num_devices)
        .field("max_rounds", scenario.max_rounds)
        .field("train_samples", scenario.train_samples)
        .field("seed", scenario.seed);

    let mut serial = JsonObject::new();
    serial.field("threads", 1usize).field("seconds", serial_secs).field(
        "rounds_per_sec",
        serial_rps,
    );
    let mut parallel = JsonObject::new();
    parallel.field("threads", detected).field("seconds", parallel_secs).field(
        "rounds_per_sec",
        parallel_rps,
    );

    let mut telemetry = JsonObject::new();
    telemetry
        .field("threads", detected)
        .field("seconds", metered_secs)
        .field("overhead_pct", overhead_pct)
        .field("raw_overhead_pct", raw_overhead_pct)
        .field("bit_identical", telemetry_identical);

    let mut latency = JsonObject::new();
    latency
        .field("rounds", round_durs.len())
        .field("p50_us", p50_us)
        .field("p99_us", p99_us)
        .field("mean_us", mean_us)
        .field("max_us", max_us)
        .field("seconds", traced_secs)
        .field("events_overhead_pct", events_overhead_pct)
        .field("raw_events_overhead_pct", raw_events_overhead_pct)
        .field("bit_identical", traced_identical);

    let mut engine = JsonObject::new();
    engine
        .object("serial", serial)
        .object("parallel", parallel)
        .object("telemetry", telemetry)
        .object("latency", latency)
        .field("speedup", speedup)
        .field("bit_identical", bit_identical);

    let mut report = JsonObject::new();
    report
        .field("bench", "round_engine")
        .object("host", host)
        .object("scenario", scn)
        .object("round_engine", engine)
        .field("matmul", kernels);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_round_engine.json");
    std::fs::write(&path, report.finish() + "\n")?;
    println!("  report written to {}", path.display());
    Ok(())
}
