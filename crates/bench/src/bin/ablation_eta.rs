//! Ablation A1 — the decay coefficient η of Eq. 20.
//!
//! The paper never states its η. This sweep shows the trade-off the
//! utility function encodes: η → 1 behaves like pure greedy (fast
//! rounds, poor user coverage, capped accuracy — FedCS-like), η → 0
//! approaches round-robin (full coverage, slower rounds). Reports best
//! accuracy, time-to-target, user coverage, and mean round delay per η.
//!
//! Usage: `ablation_eta [--fast] [--seed N] [--setting iid|noniid]`

use std::collections::BTreeSet;
use std::path::Path;

use helcfl_bench::report::{ascii_table, table1_cell, write_histories};
use helcfl_bench::{CommonArgs, Scheme, Setting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CommonArgs::parse(std::env::args().skip(1));
    let scenario = args.scenario();
    let etas = [0.1, 0.3, 0.5, 0.7, 0.9, 0.99];
    println!("Ablation — decay coefficient η over {etas:?}");

    for setting in args.settings() {
        let target = match (setting, args.fast) {
            (Setting::Iid, false) => 0.70,
            (Setting::NonIid, false) => 0.50,
            (Setting::Iid, true) => 0.40,
            (Setting::NonIid, true) => 0.35,
        };
        let config = scenario.training_config();
        let mut rows = Vec::new();
        let mut histories = Vec::new();
        for &eta in &etas {
            let mut setup = scenario.setup(setting)?;
            let history = Scheme::Helcfl { eta, dvfs: true }.run(&mut setup, &config)?;
            let coverage: BTreeSet<_> =
                history.records().iter().flat_map(|r| r.selected.iter().copied()).collect();
            let mean_round = history.total_time().get() / history.len() as f64;
            rows.push(vec![
                format!("{eta}"),
                format!("{:.4}", history.best_accuracy()),
                table1_cell(history.time_to_accuracy(target)),
                format!("{}/{}", coverage.len(), scenario.num_devices),
                format!("{mean_round:.1}s"),
            ]);
            histories.push(history);
        }
        println!("\n=== {} setting (target {:.0}%) ===", setting.label(), target * 100.0);
        println!(
            "{}",
            ascii_table(
                &["eta", "best acc", "time to target", "users covered", "mean round"],
                &rows
            )
        );
        write_histories(
            Path::new("results"),
            &format!("ablation_eta_{}", setting.label()),
            &histories,
        )?;
    }
    Ok(())
}
