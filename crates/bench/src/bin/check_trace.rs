//! Validates a telemetry trace file emitted by `HELCFL_TRACE=jsonl`
//! (or `--trace-out`) — the CI smoke check for the tracing pipeline.
//!
//! Three properties are checked, line by line:
//!
//! 1. **Syntax** — every line is a standalone JSON object (parsed by
//!    the same strict hand-rolled parser the workspace emits with).
//! 2. **Schema** — every object carries a known `type` (`span`,
//!    `event`, `metrics`) with the fields that type requires.
//! 3. **Coverage** — for every `round` span, the durations of its
//!    direct children (selection, frequency, training fan-out,
//!    aggregation, evaluation, …) must account for most of the round
//!    wall-clock: a round below 80 % coverage fails the check, below
//!    95 % warns. Rounds shorter than 2 ms are skipped — µs-resolution
//!    child timings cannot be judged against them.
//!
//! Usage: `check_trace [PATH]` (default
//! `results/trace_table1_delay.jsonl`). Exits non-zero on any failure.

use std::collections::HashMap;
use std::process::ExitCode;

use helcfl_telemetry::json::{parse, JsonValue};

/// Coverage below this fails the check.
const FAIL_BELOW: f64 = 0.80;
/// Coverage below this warns.
const WARN_BELOW: f64 = 0.95;
/// Rounds shorter than this (µs) are not judged for coverage.
const MIN_JUDGEABLE_US: f64 = 2000.0;

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    let f = v.get(key)?.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
}

struct SpanRow {
    name: String,
    parent: Option<u64>,
    dur_us: u64,
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spans: HashMap<u64, SpanRow> = HashMap::new();
    let mut events = 0usize;
    let mut metrics_lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value =
            parse(line).map_err(|e| format!("{path}:{lineno}: invalid JSON: {e}"))?;
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}:{lineno}: missing \"type\""))?
            .to_string();
        match kind.as_str() {
            "span" => {
                let name = value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{path}:{lineno}: span without name"))?
                    .to_string();
                let id = get_u64(&value, "id")
                    .ok_or_else(|| format!("{path}:{lineno}: span without id"))?;
                get_u64(&value, "t_us")
                    .ok_or_else(|| format!("{path}:{lineno}: span without t_us"))?;
                let dur_us = get_u64(&value, "dur_us")
                    .ok_or_else(|| format!("{path}:{lineno}: span without dur_us"))?;
                let parent = get_u64(&value, "parent");
                if spans.insert(id, SpanRow { name, parent, dur_us }).is_some() {
                    return Err(format!("{path}:{lineno}: duplicate span id {id}"));
                }
            }
            "event" => {
                value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{path}:{lineno}: event without name"))?;
                get_u64(&value, "t_us")
                    .ok_or_else(|| format!("{path}:{lineno}: event without t_us"))?;
                events += 1;
            }
            "metrics" | "round" => {
                // "round" lines come from TrainingHistory::to_jsonl()
                // when a history is appended to a trace stream.
                metrics_lines += 1;
            }
            other => {
                return Err(format!("{path}:{lineno}: unknown type {other:?}"));
            }
        }
    }
    if spans.is_empty() {
        return Err(format!("{path}: no spans at all — was tracing enabled?"));
    }

    // Parent links must resolve to spans we saw.
    for (id, row) in &spans {
        if let Some(parent) = row.parent {
            if !spans.contains_key(&parent) {
                return Err(format!(
                    "span {id} ({}) references unknown parent {parent}",
                    row.name
                ));
            }
        }
    }

    // Per-round child coverage.
    let mut child_sum: HashMap<u64, u64> = HashMap::new();
    for row in spans.values() {
        if let Some(parent) = row.parent {
            *child_sum.entry(parent).or_insert(0) += row.dur_us;
        }
    }
    let mut rounds = 0usize;
    let mut judged = 0usize;
    let mut warns = 0usize;
    let mut worst = f64::INFINITY;
    for (id, row) in &spans {
        if row.name != "round" {
            continue;
        }
        rounds += 1;
        if (row.dur_us as f64) < MIN_JUDGEABLE_US {
            continue;
        }
        judged += 1;
        let sum = child_sum.get(id).copied().unwrap_or(0);
        let coverage = sum as f64 / row.dur_us as f64;
        worst = worst.min(coverage);
        if coverage < FAIL_BELOW {
            return Err(format!(
                "round span {id}: children cover only {:.1}% of {} µs (< {:.0}%)",
                coverage * 100.0,
                row.dur_us,
                FAIL_BELOW * 100.0
            ));
        }
        if coverage < WARN_BELOW {
            warns += 1;
            eprintln!(
                "warning: round span {id}: child coverage {:.1}% (< {:.0}%)",
                coverage * 100.0,
                WARN_BELOW * 100.0
            );
        }
    }
    if rounds == 0 {
        return Err(format!("{path}: no round spans — was a federated run traced?"));
    }

    println!(
        "{path}: OK — {} spans, {events} events, {metrics_lines} metrics/round lines, \
         {rounds} rounds ({judged} coverage-judged, {warns} warnings{})",
        spans.len(),
        if judged > 0 {
            format!(", worst coverage {:.1}%", worst * 100.0)
        } else {
            String::new()
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/trace_table1_delay.jsonl".to_string());
    match check(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_trace: FAIL — {msg}");
            ExitCode::FAILURE
        }
    }
}
