//! Thin compatibility shim: `check_trace [PATH]` is now
//! `helcfl-trace check [PATH]`.
//!
//! The validation itself lives in `helcfl_telemetry::analyze` —
//! strict line-by-line schema parsing ([`Trace::parse`]), resolvable
//! parent links, and the ≥ 80 % per-round child-span coverage rule
//! ([`check_coverage`]) — exactly the semantics this binary enforced
//! before it was absorbed. Kept so existing `ci.sh`-style callers and
//! muscle memory don't break; new tooling should call `helcfl-trace`.

use std::process::ExitCode;

use helcfl_telemetry::analyze::{check_coverage, Trace};

fn check(path: &str) -> Result<(), String> {
    let trace = Trace::load(path)?;
    let report = check_coverage(&trace)?;
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    println!("{path}: OK — {}", report.summary());
    Ok(())
}

fn main() -> ExitCode {
    eprintln!(
        "note: check_trace is deprecated; use `helcfl-trace check [PATH]` \
         (same validation, plus tree/phases/audit/gate subcommands)"
    );
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/trace_table1_delay.jsonl".to_string());
    match check(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_trace: FAIL — {msg}");
            ExitCode::FAILURE
        }
    }
}
