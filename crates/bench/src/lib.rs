//! # helcfl-bench — the evaluation harness
//!
//! Regenerates every table and figure of the HELCFL paper's §VII:
//!
//! | Artifact | Binary | What it prints |
//! |---|---|---|
//! | Fig. 1 | `fig1_slack` | the TDMA slack Gantt chart |
//! | Fig. 2 | `fig2_accuracy` | accuracy-vs-iteration series, 5 schemes × {IID, Non-IID} |
//! | Table I | `table1_delay` | training delay to desired accuracy |
//! | Fig. 3 | `fig3_energy` | energy to desired accuracy, DVFS on vs off |
//! | A1 | `ablation_eta` | decay-coefficient sweep |
//! | A2 | `ablation_fraction` | selection-fraction sweep |
//! | A3 | `ablation_slack` | slack utilization across rounds |
//!
//! Pass `--fast` to any binary for a reduced-scale smoke run; results
//! land in `results/` as CSV plus console tables.
//!
//! Performance benchmarks use no external harness: the
//! `bench_round_engine` binary times the round engine and the matmul
//! kernels with [`std::time::Instant`] and writes
//! `results/BENCH_round_engine.json` through the hand-rolled [`json`]
//! emitter (rounds/sec serial vs parallel, speedup, matmul GFLOP/s,
//! per-round latency percentiles from a traced run).
//!
//! The `helcfl-trace` binary is the read side: `tree`/`phases` render
//! a trace, `check` enforces span coverage (the old `check_trace`
//! binary delegates to the same code), `audit` replays the trace
//! against the paper's model invariants, and `gate` (backed by the
//! [`gate`] module) diffs two bench reports against regression
//! tolerances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod json;
pub mod report;
pub mod scenario;
pub mod schemes;

pub use scenario::{PaperScenario, Setting};
pub use schemes::Scheme;

use helcfl_telemetry::Telemetry;

/// Parses the shared `--fast` / `--seed N` / `--setting X` /
/// `--trace-out PATH` CLI flags used by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Run the reduced-scale scenario.
    pub fast: bool,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Restrict to one data setting.
    pub setting: Option<Setting>,
    /// Stream span/event JSONL to this path (overrides `HELCFL_TRACE`).
    pub trace_out: Option<String>,
}

impl CommonArgs {
    /// Parses flags from an iterator of CLI arguments (excluding the
    /// program name). Unknown flags are ignored so binaries can add
    /// their own.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut out = Self { fast: false, seed: None, setting: None, trace_out: None };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--fast" => out.fast = true,
                "--trace-out" => {
                    if let Some(v) = args.get(i + 1) {
                        out.trace_out = Some(v.clone());
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.seed = Some(v);
                        i += 1;
                    }
                }
                "--setting" => {
                    out.setting = match args.get(i + 1).map(String::as_str) {
                        Some("iid") => Some(Setting::Iid),
                        Some("noniid") => Some(Setting::NonIid),
                        _ => None,
                    };
                    if out.setting.is_some() {
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// The scenario implied by the flags.
    pub fn scenario(&self) -> PaperScenario {
        let mut s = if self.fast { PaperScenario::fast() } else { PaperScenario::default() };
        if let Some(seed) = self.seed {
            s.seed = seed;
        }
        s
    }

    /// The settings to sweep (both unless `--setting` was given).
    pub fn settings(&self) -> Vec<Setting> {
        match self.setting {
            Some(s) => vec![s],
            None => vec![Setting::Iid, Setting::NonIid],
        }
    }

    /// The telemetry handle implied by the flags: `--trace-out PATH`
    /// streams JSONL to `PATH`; otherwise the `HELCFL_TRACE`
    /// environment variable decides (see [`Telemetry::from_env`]),
    /// with `name` picking the default `results/trace_{name}.jsonl`
    /// file. An unwritable path degrades to metrics-only with a
    /// warning rather than aborting the experiment.
    pub fn telemetry(&self, name: &str) -> Telemetry {
        match &self.trace_out {
            Some(path) => Telemetry::to_file(path).unwrap_or_else(|err| {
                eprintln!("warning: cannot open trace file {path}: {err}; tracing disabled");
                Telemetry::metrics_only()
            }),
            None => Telemetry::from_env(name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_fast_seed_and_setting() {
        let a = parse(&["--fast", "--seed", "7", "--setting", "noniid"]);
        assert!(a.fast);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.setting, Some(Setting::NonIid));
        assert_eq!(a.trace_out, None);
        assert_eq!(a.settings(), vec![Setting::NonIid]);
        assert_eq!(a.scenario().seed, 7);
        assert_eq!(a.scenario().num_devices, PaperScenario::fast().num_devices);
    }

    #[test]
    fn defaults_to_full_scenario_both_settings() {
        let a = parse(&[]);
        assert!(!a.fast);
        assert_eq!(a.settings(), vec![Setting::Iid, Setting::NonIid]);
        assert_eq!(a.scenario(), PaperScenario::default());
    }

    #[test]
    fn ignores_unknown_flags_and_bad_values() {
        let a = parse(&["--whatever", "--seed", "notanumber", "--setting", "weird"]);
        assert_eq!(a.seed, None);
        assert_eq!(a.setting, None);
        assert_eq!(a.trace_out, None);
    }

    #[test]
    fn trace_out_flag_builds_a_streaming_telemetry_handle() {
        let dir = std::env::temp_dir().join("helcfl_bench_trace_out_test");
        let path = dir.join("trace.jsonl");
        let a = parse(&["--trace-out", path.to_str().unwrap()]);
        assert_eq!(a.trace_out.as_deref(), path.to_str());
        let tele = a.telemetry("test");
        assert!(tele.is_enabled());
        assert!(tele.events_enabled());
        tele.span("probe").end();
        tele.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""name":"probe""#), "got: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
