//! Unified dispatch over all five evaluated schemes.

use fl_sim::error::Result;
use fl_sim::frequency::MaxFrequency;
use fl_sim::history::TrainingHistory;
use fl_sim::runner::{run_federated_traced, FederatedSetup, TrainingConfig};
use fl_sim::seeds::{derive, SeedDomain};
use fl_sim::separated::{run_separated, SeparatedConfig};
use helcfl::{DecayCoefficient, Helcfl};
use helcfl_telemetry::Telemetry;
use mec_sim::units::Seconds;

use fl_baselines::classic::RandomSelector;
use fl_baselines::fedcs::FedCsSelector;
use fl_baselines::fedl::FedlFrequencyPolicy;

/// One of the paper's five evaluated schemes.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// HELCFL (this paper): greedy-decay selection + DVFS slack
    /// frequencies.
    Helcfl {
        /// Decay coefficient η of Eq. 20.
        eta: f64,
        /// Whether Alg. 3 is active (off = the Fig. 3 reference arm).
        dvfs: bool,
    },
    /// Classic FL: random selection at maximum frequency.
    Classic,
    /// FedCS: deadline-greedy selection at maximum frequency.
    FedCs {
        /// Per-round deadline in seconds.
        round_deadline_s: f64,
    },
    /// FEDL: random selection + closed-form frequency.
    Fedl {
        /// Energy weight κ of the closed form.
        kappa: f64,
    },
    /// SL: separated learning.
    Sl,
}

impl Scheme {
    /// The paper's five-scheme lineup with this reproduction's default
    /// hyper-parameters.
    pub fn lineup() -> Vec<Scheme> {
        vec![
            Scheme::Helcfl { eta: 0.5, dvfs: true },
            Scheme::Classic,
            Scheme::FedCs { round_deadline_s: 13.0 },
            Scheme::Fedl { kappa: 1.0 },
            Scheme::Sl,
        ]
    }

    /// Scheme label as used in tables and CSV files.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Helcfl { dvfs: true, .. } => "helcfl",
            Scheme::Helcfl { dvfs: false, .. } => "helcfl-nodvfs",
            Scheme::Classic => "classic",
            Scheme::FedCs { .. } => "fedcs",
            Scheme::Fedl { .. } => "fedl",
            Scheme::Sl => "sl",
        }
    }

    /// Runs the scheme on a fresh `setup` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation errors.
    pub fn run(
        &self,
        setup: &mut FederatedSetup,
        config: &TrainingConfig,
    ) -> Result<TrainingHistory> {
        self.run_traced(setup, config, &Telemetry::disabled())
    }

    /// [`Scheme::run`] with per-round spans and scheme metrics
    /// recorded into `tele`. The produced [`TrainingHistory`] is
    /// bit-identical to [`Scheme::run`]'s regardless of the sink.
    ///
    /// Separated learning has no federated round loop, so `Sl` runs
    /// untraced (its history is still returned as usual).
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation errors.
    pub fn run_traced(
        &self,
        setup: &mut FederatedSetup,
        config: &TrainingConfig,
        tele: &Telemetry,
    ) -> Result<TrainingHistory> {
        let selection_seed = derive(config.seed, SeedDomain::Selection);
        match self {
            Scheme::Helcfl { eta, dvfs } => {
                let mut framework = Helcfl::new(DecayCoefficient::new(*eta)?);
                if !dvfs {
                    framework = framework.without_dvfs();
                }
                framework.run_traced(setup, config, tele)
            }
            Scheme::Classic => {
                let mut selector = RandomSelector::new(selection_seed);
                run_federated_traced(setup, config, &mut selector, &MaxFrequency, tele)
            }
            Scheme::FedCs { round_deadline_s } => {
                let mut selector = FedCsSelector::new(Seconds::new(*round_deadline_s))?;
                run_federated_traced(setup, config, &mut selector, &MaxFrequency, tele)
            }
            Scheme::Fedl { kappa } => {
                let mut selector = RandomSelector::with_name(selection_seed, "fedl");
                let policy = FedlFrequencyPolicy::new(*kappa)?;
                run_federated_traced(setup, config, &mut selector, &policy, tele)
            }
            Scheme::Sl => run_separated(setup, config, &SeparatedConfig::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PaperScenario, Setting};

    #[test]
    fn lineup_covers_all_five_schemes() {
        let labels: Vec<_> = Scheme::lineup().iter().map(Scheme::label).collect();
        assert_eq!(labels, vec!["helcfl", "classic", "fedcs", "fedl", "sl"]);
        assert_eq!(Scheme::Helcfl { eta: 0.5, dvfs: false }.label(), "helcfl-nodvfs");
    }

    #[test]
    fn every_scheme_runs_on_the_fast_scenario() {
        let mut scenario = PaperScenario::fast();
        scenario.max_rounds = 3;
        let config = scenario.training_config();
        for scheme in Scheme::lineup() {
            let mut setup = scenario.setup(Setting::Iid).unwrap();
            let history = scheme.run(&mut setup, &config).unwrap();
            assert_eq!(history.len(), 3, "{} stopped early", scheme.label());
            assert_eq!(history.scheme(), scheme.label());
        }
    }

    #[test]
    fn traced_runs_are_bit_identical_for_every_scheme() {
        let mut scenario = PaperScenario::fast();
        scenario.max_rounds = 2;
        let config = scenario.training_config();
        for scheme in Scheme::lineup() {
            let mut plain_setup = scenario.setup(Setting::Iid).unwrap();
            let plain = scheme.run(&mut plain_setup, &config).unwrap();
            let tele = Telemetry::metrics_only();
            let mut traced_setup = scenario.setup(Setting::Iid).unwrap();
            let traced = scheme.run_traced(&mut traced_setup, &config, &tele).unwrap();
            assert_eq!(plain, traced, "{}: telemetry changed the history", scheme.label());
            if !matches!(scheme, Scheme::Sl) {
                assert_eq!(tele.snapshot().counter("round.completed"), 2, "{}", scheme.label());
            }
        }
    }

    #[test]
    fn classic_and_fedl_share_selection_but_not_frequencies() {
        let mut scenario = PaperScenario::fast();
        scenario.max_rounds = 4;
        let config = scenario.training_config();
        let mut s1 = scenario.setup(Setting::Iid).unwrap();
        let classic = Scheme::Classic.run(&mut s1, &config).unwrap();
        let mut s2 = scenario.setup(Setting::Iid).unwrap();
        let fedl = Scheme::Fedl { kappa: 1.0 }.run(&mut s2, &config).unwrap();
        for (a, b) in classic.records().iter().zip(fedl.records()) {
            // Same seed → same random selection → same learning curve.
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.test_accuracy, b.test_accuracy);
            // FEDL's closed form can only reduce compute energy.
            assert!(b.compute_energy <= a.compute_energy * (1.0 + 1e-9));
        }
    }
}
