//! Hand-rolled JSON, re-exported from [`helcfl_telemetry::json`].
//!
//! This module was the workspace's original zero-dependency JSON
//! emitter; the telemetry layer generalized it (same [`ToJson`] /
//! [`JsonObject`] builder API, plus a strict parser used to validate
//! emitted trace files). The `helcfl_bench::json` path is kept so the
//! bench binaries and any downstream scripts keep working unchanged.

pub use helcfl_telemetry::json::*;
