//! Minimal hand-rolled JSON emission.
//!
//! The workspace's zero-dependency policy leaves no serde; this module
//! is the single place where JSON leaves the process (bench reports
//! under `results/`). It only *writes* JSON — nothing in the workspace
//! parses it — so a small emitter trait plus an object/array builder
//! with correct string escaping covers every need.

use std::fmt::Write as _;

/// A value that can render itself as a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for i64 {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for f64 {
    /// Rust's shortest-roundtrip `Display` output is valid JSON for
    /// every finite value; non-finite values (which JSON cannot
    /// express) become `null`.
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON object builder.
///
/// # Examples
///
/// ```
/// use helcfl_bench::json::{JsonObject, ToJson};
///
/// let mut o = JsonObject::new();
/// o.field("scheme", "helcfl");
/// o.field("accuracy", 0.85);
/// assert_eq!(o.finish(), r#"{"scheme":"helcfl","accuracy":0.85}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::new() }
    }

    /// Appends one `"key": value` member.
    pub fn field<V: ToJson>(&mut self, key: &str, value: V) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self
    }

    /// Appends a member whose value is a nested object.
    pub fn object(&mut self, key: &str, nested: JsonObject) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
        self.buf.push_str(&nested.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

impl ToJson for JsonObject {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{{}}}", self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(2.0f64.to_json(), "2");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(7u64).to_json(), "7");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("plain".to_json(), r#""plain""#);
        assert_eq!("say \"hi\"\n".to_json(), r#""say \"hi\"\n""#);
        assert_eq!("back\\slash\ttab".to_json(), r#""back\\slash\ttab""#);
        assert_eq!("\u{1}".to_json(), r#""\u0001""#);
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        assert_eq!("η = 0.3".to_json(), r#""η = 0.3""#);
    }

    #[test]
    fn vectors_render_as_arrays() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Vec::<u64>::new().to_json(), "[]");
        assert_eq!(vec![0.25f64, 0.5].to_json(), "[0.25,0.5]");
    }

    #[test]
    fn objects_nest_and_preserve_field_order() {
        let mut inner = JsonObject::new();
        inner.field("gflops", 1.5);
        let mut o = JsonObject::new();
        o.field("name", "matmul").field("runs", 3usize).object("kernel", inner);
        assert_eq!(
            o.finish(),
            r#"{"name":"matmul","runs":3,"kernel":{"gflops":1.5}}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
