//! Pins the fault layer's central compatibility promise: with
//! `FaultPlan::none()` (the default `TrainingConfig`), every scheme's
//! round history and Sim-class metrics registry are bit-identical to
//! the pre-fault-layer engine. The fingerprints below were captured
//! from the engine *before* the fault subsystem existed; the faulted
//! runner must keep reproducing them exactly.
//!
//! Beyond the pin, this suite checks the two determinism properties
//! the fault layer itself must uphold: the fault-aware engine with
//! zero faults reproduces the fault-free histories bit-for-bit (the
//! engines are interchangeable, not merely similar), and
//! fault-afflicted histories are bit-identical across worker-thread
//! counts.

use fl_sim::faults::{DegradationPolicy, FaultConfig};
use helcfl_bench::scenario::{PaperScenario, Setting};
use helcfl_bench::schemes::Scheme;
use helcfl_telemetry::Telemetry;
use mec_sim::units::Seconds;

/// FNV-1a 64-bit over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Bit-exact fingerprint of a training history over the fields that
/// existed before the fault layer: every numeric value of every
/// record, in order, via its IEEE-754 bit pattern. New fault-era
/// fields (delivered, wasted energy, …) are deliberately excluded so
/// the pinned pre-fault constants below stay comparable.
fn history_fingerprint(history: &fl_sim::history::TrainingHistory) -> u64 {
    let mut h = Fnv::new();
    h.update(history.scheme().as_bytes());
    for r in history.records() {
        h.u64(r.round as u64);
        for id in &r.selected {
            h.u64(id.0 as u64);
        }
        h.u64(r.alive_devices as u64);
        h.f64(r.round_time.get());
        h.f64(r.eq10_time.get());
        h.f64(r.round_energy.get());
        h.f64(r.compute_energy.get());
        h.f64(r.slack.get());
        h.f64(f64::from(r.train_loss));
        h.f64(r.test_accuracy.unwrap_or(-1.0));
        h.f64(r.cumulative_time.get());
        h.f64(r.cumulative_energy.get());
    }
    h.0
}

fn scenario() -> PaperScenario {
    let mut s = PaperScenario::fast();
    s.max_rounds = 8;
    s
}

/// Runs `scheme` on the reference scenario (optionally customizing the
/// training config) and returns
/// `(history fingerprint, Sim-registry JSON fingerprint)`.
fn fingerprints_with(
    scheme: &Scheme,
    tweak: impl FnOnce(&mut fl_sim::runner::TrainingConfig),
) -> (u64, u64) {
    let s = scenario();
    let mut config = s.training_config();
    tweak(&mut config);
    let mut setup = s.setup(Setting::Iid).unwrap();
    let tele = Telemetry::metrics_only();
    let history = scheme.run_traced(&mut setup, &config, &tele).unwrap();
    let registry_json = tele.snapshot().deterministic().to_json().finish();
    let mut h = Fnv::new();
    h.update(registry_json.as_bytes());
    (history_fingerprint(&history), h.0)
}

fn fingerprints(scheme: &Scheme) -> (u64, u64) {
    fingerprints_with(scheme, |_| {})
}

/// Reference fingerprints captured from the engine as of the commit
/// that introduced the fault layer, *before* any fault code existed.
/// (classic and fedl share a registry hash: both are random selectors
/// emitting the identical Sim metric set.)
const PINNED: [(Scheme, u64, u64); 4] = [
    (Scheme::Helcfl { eta: 0.5, dvfs: true }, 0xaeee3c4467673763, 0x965635a4fefaa331),
    (Scheme::Classic, 0xe571d97061271c86, 0x6effdd8f5bf2ac9d),
    (Scheme::FedCs { round_deadline_s: 13.0 }, 0xd2d45a83da11f808, 0x4a5cf2e554a4f953),
    (Scheme::Fedl { kappa: 1.0 }, 0xd3da3bc18b874121, 0x6effdd8f5bf2ac9d),
];

#[test]
fn default_config_reproduces_pre_fault_fingerprints() {
    for (scheme, hist, reg) in PINNED {
        let (h, r) = fingerprints(&scheme);
        assert_eq!(
            h,
            hist,
            "{}: history diverged from the pre-fault engine (got {h:#018x})",
            scheme.label()
        );
        assert_eq!(
            r,
            reg,
            "{}: Sim-metrics registry diverged from the pre-fault engine (got {r:#018x})",
            scheme.label()
        );
    }
}

#[test]
fn faulted_engine_with_zero_faults_matches_the_fault_free_histories() {
    // A never-binding round deadline forces the fault-aware engine
    // while keeping the fault plan inert: every history value must
    // still come out bit-identical to the pinned fault-free run. (The
    // registry is excluded: the faulted engine legitimately adds its
    // own fault-series metrics.)
    for (scheme, hist, _) in PINNED {
        let (h, _) = fingerprints_with(&scheme, |config| {
            config.degradation = DegradationPolicy {
                round_deadline: Some(Seconds::new(1.0e12)),
                ..DegradationPolicy::default()
            };
        });
        assert_eq!(
            h,
            hist,
            "{}: zero-fault faulted engine diverged from the fault-free path (got {h:#018x})",
            scheme.label()
        );
    }
}

#[test]
fn consecutive_runs_reproduce_identical_fingerprints() {
    // Each run builds (and tears down) its own persistent worker pool;
    // two back-to-back runs in one process must reproduce the same
    // pinned bits — no pool or telemetry state may bleed across runs.
    let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
    let first = fingerprints_with(&scheme, |config| config.threads = 3);
    let second = fingerprints_with(&scheme, |config| config.threads = 3);
    assert_eq!(first, second, "back-to-back runs diverged");
    assert_eq!(first.0, PINNED[0].1, "rerun drifted from the pinned history");
}

#[test]
fn faulted_histories_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let s = scenario();
        let mut config = s.training_config();
        config.threads = threads;
        config.faults = FaultConfig::uniform(0.15);
        config.degradation = DegradationPolicy {
            round_deadline: Some(Seconds::new(40.0)),
            min_quorum: 1,
            charge_failed_selections: false,
        };
        let mut setup = s.setup(Setting::Iid).unwrap();
        let tele = Telemetry::metrics_only();
        let scheme = Scheme::Helcfl { eta: 0.5, dvfs: true };
        let history = scheme.run_traced(&mut setup, &config, &tele).unwrap();
        let registry = tele.snapshot().deterministic().to_json().finish();
        (history, registry)
    };
    let (h1, r1) = run(1);
    let (h3, r3) = run(3);
    let (h4, r4) = run(4);
    // Sanity: the fault plan actually fired somewhere, or this test
    // proves nothing.
    assert!(
        h1.records().iter().any(|r| r.faults > 0),
        "no fault fired at rate 0.15 over {} rounds",
        h1.len()
    );
    assert!(h1.delivered_fraction() < 1.0, "every faulted update still delivered");
    assert_eq!(h1, h3, "1-thread vs 3-thread faulted histories diverge");
    assert_eq!(h1, h4, "1-thread vs 4-thread faulted histories diverge");
    assert_eq!(r1, r3, "1-thread vs 3-thread Sim registries diverge");
    assert_eq!(r1, r4, "1-thread vs 4-thread Sim registries diverge");
}
