//! End-to-end checks of the `helcfl-trace` binary: `check` keeps the
//! validation the retired `check_trace` shim enforced (strict schema,
//! resolvable parents, coverage rule), `watch` tails a trace without
//! hanging CI, and the cross-run tooling (`diff`, `flame`, `series`)
//! honours run_manifest provenance end to end.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A minimal valid trace: one round whose only child covers 100% of
/// its duration, emitted completion-ordered (child first).
const TRACE: &str = concat!(
    r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":20000}"#,
    "\n",
    r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":20000,"attrs":{"index":1}}"#,
    "\n",
);

/// The same round with the writer's trailing metrics line — what a
/// finished run's file looks like.
const FINISHED_TRACE: &str = concat!(
    r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":20000}"#,
    "\n",
    r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":20000,"attrs":{"index":1}}"#,
    "\n",
    r#"{"type":"metrics","metrics":{}}"#,
    "\n",
);

/// A run_manifest provenance line with the given seed, otherwise
/// matching [`TRACE`]'s (hypothetical) producer.
fn manifest_line(seed: u64) -> String {
    format!(
        concat!(
            r#"{{"type":"run_manifest","schema_version":1,"seed":{},"#,
            r#""scheme":"helcfl","config_fingerprint":"deadbeefdeadbeef","#,
            r#""threads":1,"trace_mode":"full","fleet_size":10,"#,
            r#""build_profile":"release"}}"#
        ),
        seed
    )
}

/// [`TRACE`] with a provenance manifest at its head.
fn manifested_trace(seed: u64) -> String {
    format!("{}\n{TRACE}", manifest_line(seed))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helcfl_trace_cli_{tag}_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helcfl-trace"))
}

#[test]
fn check_validates_a_wellformed_trace() {
    let dir = scratch("ok");
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output = trace_cli().arg("check").arg(&path).output().expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("OK"), "missing verdict: {stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_fails_on_a_malformed_trace() {
    let dir = scratch("bad");
    let path = dir.join("bad.jsonl");
    fs::write(&path, "not json at all\n").unwrap();

    let output = trace_cli().arg("check").arg(&path).output().expect("run helcfl-trace");
    assert!(!output.status.success(), "malformed trace must fail check");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("FAIL"), "missing failure banner: {stderr}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_exits_cleanly_when_the_run_is_finished() {
    let dir = scratch("watch_done");
    let path = dir.join("trace.jsonl");
    fs::write(&path, FINISHED_TRACE).unwrap();

    let output = trace_cli()
        .args(["watch", path.to_str().unwrap(), "--interval-ms", "10"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("1 round(s)"), "missing snapshot line: {stdout}");
    assert!(stdout.contains("run finished"), "missing exit reason: {stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// A trace diffed against itself is the identity comparison: exit 0
/// and an explicit "zero deltas" verdict (the phrase ci.sh greps for).
#[test]
fn diff_of_a_trace_against_itself_reports_zero_deltas() {
    let dir = scratch("diff_self");
    let path = dir.join("trace.jsonl");
    fs::write(&path, manifested_trace(42)).unwrap();

    let output = trace_cli()
        .args(["diff", path.to_str().unwrap(), path.to_str().unwrap()])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("zero deltas"), "missing verdict: {stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// Mismatched identity (the seed) refuses the comparison with a named
/// reason; `--ignore-manifest` is the explicit override.
#[test]
fn diff_refuses_mismatched_seeds_unless_overridden() {
    let dir = scratch("diff_seed");
    let base = dir.join("base.jsonl");
    let cand = dir.join("cand.jsonl");
    fs::write(&base, manifested_trace(42)).unwrap();
    fs::write(&cand, manifested_trace(43)).unwrap();

    let output = trace_cli()
        .args(["diff", base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("run helcfl-trace");
    assert!(!output.status.success(), "mismatched seeds must refuse to diff");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("seed"), "refusal does not name the seed: {stderr}");

    let output = trace_cli()
        .args([
            "diff",
            base.to_str().unwrap(),
            cand.to_str().unwrap(),
            "--ignore-manifest",
        ])
        .output()
        .expect("run helcfl-trace");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "--ignore-manifest must override: {stderr}");
    fs::remove_dir_all(&dir).ok();
}

/// `diff --json` emits one parseable JSON document.
#[test]
fn diff_json_output_is_valid_json() {
    let dir = scratch("diff_json");
    let path = dir.join("trace.jsonl");
    fs::write(&path, manifested_trace(42)).unwrap();

    let output = trace_cli()
        .args(["diff", path.to_str().unwrap(), path.to_str().unwrap(), "--json"])
        .output()
        .expect("run helcfl-trace");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    let doc = helcfl_telemetry::json::parse(stdout.trim()).expect("diff --json output parses");
    assert_eq!(
        doc.get("zero_delta").and_then(|v| v.as_bool()),
        Some(true),
        "self-diff must be a zero delta: {stdout}"
    );
    fs::remove_dir_all(&dir).ok();
}

/// `flame` exports folded stacks: `path;to;span weight` lines whose
/// weights are self-times (round minus its child, plus the leaf).
#[test]
fn flame_exports_folded_stacks() {
    let dir = scratch("flame");
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output =
        trace_cli().args(["flame", path.to_str().unwrap()]).output().expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    // The round's 20000 µs are entirely inside its timeline child, so
    // only the leaf path carries weight.
    assert_eq!(stdout.trim(), "round;timeline 20000");

    // `--out` writes the same bytes to a file instead.
    let out = dir.join("stacks.folded");
    let output = trace_cli()
        .args(["flame", path.to_str().unwrap(), "--out", out.to_str().unwrap()])
        .output()
        .expect("run helcfl-trace");
    assert!(output.status.success());
    assert_eq!(fs::read_to_string(&out).unwrap(), stdout.as_ref());
    fs::remove_dir_all(&dir).ok();
}

/// `series --json` emits one parseable document with a point per round.
#[test]
fn series_json_reports_one_point_per_round() {
    let dir = scratch("series");
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output = trace_cli()
        .args(["series", path.to_str().unwrap(), "--json"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    let doc = helcfl_telemetry::json::parse(stdout.trim()).expect("series --json parses");
    assert_eq!(doc.get("rounds").and_then(|v| v.as_f64()), Some(1.0), "{stdout}");
    assert_eq!(doc.get("anomalies").and_then(|v| v.as_f64()), Some(0.0), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// `phases --json` emits the machine-readable breakdown.
#[test]
fn phases_json_output_is_valid_json() {
    let dir = scratch("phases_json");
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output = trace_cli()
        .args(["phases", path.to_str().unwrap(), "--json"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    let doc = helcfl_telemetry::json::parse(stdout.trim()).expect("phases --json parses");
    assert_eq!(doc.get("rounds").and_then(|v| v.as_f64()), Some(1.0), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// `watch` announces the run's provenance as soon as the manifest
/// lands in the stream.
#[test]
fn watch_announces_the_run_manifest() {
    let dir = scratch("watch_manifest");
    let path = dir.join("trace.jsonl");
    fs::write(&path, format!("{}\n{FINISHED_TRACE}", manifest_line(42))).unwrap();

    let output = trace_cli()
        .args(["watch", path.to_str().unwrap(), "--interval-ms", "10"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(
        stdout.contains("run_manifest scheme=helcfl seed=42"),
        "manifest not announced: {stdout}"
    );
    fs::remove_dir_all(&dir).ok();
}

/// A mid-run snapshot: the tail line is half-flushed and a child's
/// `round` parent has not landed yet. `watch` must tolerate both and
/// stop at the poll budget instead of hanging.
#[test]
fn watch_tolerates_a_partial_trace_and_poll_budget() {
    let dir = scratch("watch_partial");
    let path = dir.join("trace.jsonl");
    let partial = format!(
        "{TRACE}{}\n{}",
        r#"{"type":"span","name":"timeline","id":9,"parent":8,"t_us":0,"dur_us":5}"#,
        r#"{"type":"span","name":"rou"#, // torn tail write
    );
    fs::write(&path, partial).unwrap();

    let output = trace_cli()
        .args(["watch", path.to_str().unwrap(), "--interval-ms", "1", "--max-polls", "2"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("1 round(s)"), "orphan/torn lines leaked in: {stdout}");
    assert!(stdout.contains("2 pending line(s)"), "pending count wrong: {stdout}");
    assert!(stdout.contains("stopped after 2 poll(s)"), "budget exit missing: {stdout}");
    fs::remove_dir_all(&dir).ok();
}
