//! End-to-end checks of the `helcfl-trace` binary: `check` keeps the
//! validation the retired `check_trace` shim enforced (strict schema,
//! resolvable parents, coverage rule), and `watch` tails a trace
//! without hanging CI.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A minimal valid trace: one round whose only child covers 100% of
/// its duration, emitted completion-ordered (child first).
const TRACE: &str = concat!(
    r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":20000}"#,
    "\n",
    r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":20000,"attrs":{"index":1}}"#,
    "\n",
);

/// The same round with the writer's trailing metrics line — what a
/// finished run's file looks like.
const FINISHED_TRACE: &str = concat!(
    r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":20000}"#,
    "\n",
    r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":20000,"attrs":{"index":1}}"#,
    "\n",
    r#"{"type":"metrics","metrics":{}}"#,
    "\n",
);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helcfl_trace_cli_{tag}_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_helcfl-trace"))
}

#[test]
fn check_validates_a_wellformed_trace() {
    let dir = scratch("ok");
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output = trace_cli().arg("check").arg(&path).output().expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("OK"), "missing verdict: {stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_fails_on_a_malformed_trace() {
    let dir = scratch("bad");
    let path = dir.join("bad.jsonl");
    fs::write(&path, "not json at all\n").unwrap();

    let output = trace_cli().arg("check").arg(&path).output().expect("run helcfl-trace");
    assert!(!output.status.success(), "malformed trace must fail check");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("FAIL"), "missing failure banner: {stderr}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_exits_cleanly_when_the_run_is_finished() {
    let dir = scratch("watch_done");
    let path = dir.join("trace.jsonl");
    fs::write(&path, FINISHED_TRACE).unwrap();

    let output = trace_cli()
        .args(["watch", path.to_str().unwrap(), "--interval-ms", "10"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("1 round(s)"), "missing snapshot line: {stdout}");
    assert!(stdout.contains("run finished"), "missing exit reason: {stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// A mid-run snapshot: the tail line is half-flushed and a child's
/// `round` parent has not landed yet. `watch` must tolerate both and
/// stop at the poll budget instead of hanging.
#[test]
fn watch_tolerates_a_partial_trace_and_poll_budget() {
    let dir = scratch("watch_partial");
    let path = dir.join("trace.jsonl");
    let partial = format!(
        "{TRACE}{}\n{}",
        r#"{"type":"span","name":"timeline","id":9,"parent":8,"t_us":0,"dur_us":5}"#,
        r#"{"type":"span","name":"rou"#, // torn tail write
    );
    fs::write(&path, partial).unwrap();

    let output = trace_cli()
        .args(["watch", path.to_str().unwrap(), "--interval-ms", "1", "--max-polls", "2"])
        .output()
        .expect("run helcfl-trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("1 round(s)"), "orphan/torn lines leaked in: {stdout}");
    assert!(stdout.contains("2 pending line(s)"), "pending count wrong: {stdout}");
    assert!(stdout.contains("stopped after 2 poll(s)"), "budget exit missing: {stdout}");
    fs::remove_dir_all(&dir).ok();
}
