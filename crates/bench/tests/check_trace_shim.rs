//! The `check_trace` compatibility shim must keep validating traces
//! with the `helcfl-trace check` semantics while steering callers to
//! the new CLI.

use std::fs;
use std::process::Command;

/// A minimal valid trace: one round whose only child covers 100% of
/// its duration, emitted completion-ordered (child first).
const TRACE: &str = concat!(
    r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":20000}"#,
    "\n",
    r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":20000,"attrs":{"index":1}}"#,
    "\n",
);

#[test]
fn shim_validates_and_prints_deprecation_note() {
    let dir = std::env::temp_dir().join(format!("check_trace_shim_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    fs::write(&path, TRACE).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_check_trace"))
        .arg(&path)
        .output()
        .expect("run check_trace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("OK"), "missing verdict: {stdout}");
    assert!(
        stderr.contains("deprecated") && stderr.contains("helcfl-trace check"),
        "missing deprecation pointer: {stderr}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shim_fails_on_malformed_trace() {
    let dir = std::env::temp_dir().join(format!("check_trace_bad_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.jsonl");
    fs::write(&path, "not json at all\n").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_check_trace"))
        .arg(&path)
        .output()
        .expect("run check_trace");
    assert!(!output.status.success(), "malformed trace must fail the shim");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("FAIL"), "missing failure banner: {stderr}");
    fs::remove_dir_all(&dir).ok();
}
