//! End-to-end: a real traced HELCFL run must survive its own audit.
//!
//! This is the closed loop the observability layer exists for — the
//! simulator emits `device_activity` spans, the analyzer parses them
//! back, and the auditor replays Alg. 3's guarantees from nothing but
//! the trace. A failure here means emission and model drifted apart.

use fl_baselines::classic::RandomSelector;
use fl_sim::frequency::MaxFrequency;
use fl_sim::runner::run_federated_traced;
use fl_sim::seeds::{derive, SeedDomain};
use helcfl::dvfs::SlackFrequencyPolicy;
use helcfl_bench::{PaperScenario, Setting};
use helcfl_telemetry::analyze::{check_coverage, Trace};
use helcfl_telemetry::audit::{audit, AuditConfig};
use helcfl_telemetry::{MemorySink, Telemetry};

fn tiny_scenario() -> PaperScenario {
    let mut s = PaperScenario::fast();
    s.max_rounds = 4;
    s.train_samples = 400;
    s.test_samples = 100;
    s
}

fn traced_trace(
    policy_is_slack: bool,
) -> Result<Trace, Box<dyn std::error::Error>> {
    traced_trace_with(policy_is_slack, |_| {})
}

fn traced_trace_with(
    policy_is_slack: bool,
    tweak: impl FnOnce(&mut fl_sim::runner::TrainingConfig),
) -> Result<Trace, Box<dyn std::error::Error>> {
    let scenario = tiny_scenario();
    let mut config = scenario.training_config();
    tweak(&mut config);
    let mut setup = scenario.setup(Setting::Iid)?;
    let mut selector = RandomSelector::new(derive(config.seed, SeedDomain::Selection));
    let sink = MemorySink::new();
    let tele = Telemetry::with_sink(sink.clone());
    if policy_is_slack {
        run_federated_traced(&mut setup, &config, &mut selector, &SlackFrequencyPolicy, &tele)?;
    } else {
        run_federated_traced(&mut setup, &config, &mut selector, &MaxFrequency, &tele)?;
    }
    tele.finish();
    Ok(Trace::parse(&sink.lines().join("\n"))?)
}

#[test]
fn traced_helcfl_run_passes_audit_and_coverage() {
    let trace = traced_trace(true).expect("traced run");
    let report = audit(&trace, &AuditConfig::default()).expect("auditable trace");
    assert!(report.passed(), "violations in a fresh run:\n{}", report.render());
    assert_eq!(report.rounds, 4);
    assert_eq!(report.rounds_audited, 4);
    // The slack policy claims delay-neutrality on every round.
    assert_eq!(report.rounds_delay_neutral, 4);
    assert!(report.devices_audited >= 4, "selection should pick devices each round");
    // The same trace satisfies the span-coverage rule.
    check_coverage(&trace).expect("coverage check");
}

#[test]
fn traced_max_frequency_run_passes_audit() {
    let trace = traced_trace(false).expect("traced run");
    let report = audit(&trace, &AuditConfig::default()).expect("auditable trace");
    assert!(report.passed(), "violations in a fresh run:\n{}", report.render());
    assert_eq!(report.rounds_delay_neutral, report.rounds_audited);
}

/// A run with every fault class enabled plus a binding deadline must
/// still audit clean: wasted energy reconciles, fault spans match the
/// metrics, and delay-neutrality is exempted exactly on the rounds
/// where something actually went wrong.
#[test]
fn traced_faulted_run_passes_audit_and_coverage() {
    use fl_sim::faults::{DegradationPolicy, FaultConfig};
    use mec_sim::units::Seconds;

    let trace = traced_trace_with(true, |config| {
        config.faults = FaultConfig::uniform(0.25);
        config.degradation = DegradationPolicy {
            round_deadline: Some(Seconds::new(30.0)),
            min_quorum: 1,
            charge_failed_selections: false,
        };
    })
    .expect("traced run");
    let report = audit(&trace, &AuditConfig::default()).expect("auditable trace");
    assert!(report.passed(), "violations in a faulted run:\n{}", report.render());
    assert_eq!(report.rounds_audited, 4);
    assert!(
        report.rounds_faulted > 0,
        "a 25% per-device fault rate should disturb at least one of 4 rounds"
    );
    // The slack policy claims neutrality everywhere, so every faulted
    // round — and only those — must have moved to the plan-time check.
    assert_eq!(report.rounds_fault_exempt, report.rounds_faulted);
    assert_eq!(report.rounds_delay_neutral, report.rounds_audited);
    // Fault/retry/abort markers actually landed in the stream.
    assert!(
        trace.spans.iter().any(|s| s.name == "fault"),
        "no fault marker spans emitted"
    );
    check_coverage(&trace).expect("coverage check");
}
