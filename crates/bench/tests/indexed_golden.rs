//! End-to-end bit-identity of the indexed selector: a full fast-scale
//! HELCFL run (IndexedDecaySelector + SlackFrequencyPolicy) must
//! produce a training history byte-identical to the committed golden
//! CSV — the same artifact `ci.sh` pins the reference pipeline
//! against — and to a reference-selector run of the same setup.

use fl_sim::runner::run_federated;
use helcfl::{GreedyDecaySelector, IndexedDecaySelector, SlackFrequencyPolicy};
use helcfl_bench::scenario::{PaperScenario, Setting};

#[test]
fn indexed_selector_reproduces_the_golden_history() {
    let scenario = PaperScenario::fast();
    let config = scenario.training_config();

    let mut setup = scenario.setup(Setting::Iid).unwrap();
    let mut indexed = IndexedDecaySelector::default();
    let history =
        run_federated(&mut setup, &config, &mut indexed, &SlackFrequencyPolicy).unwrap();

    // The CSV embeds the scheme name per row; name parity ("helcfl")
    // is part of the byte identity being asserted here.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/golden/history_fast_iid_helcfl.csv"
    );
    let golden = std::fs::read_to_string(golden_path).unwrap();
    assert_eq!(
        history.to_csv(),
        golden,
        "indexed selector diverged from the golden history"
    );

    // And against a same-process reference run, for a diagnosable
    // failure mode should the golden file ever be regenerated.
    let mut setup = scenario.setup(Setting::Iid).unwrap();
    let mut reference = GreedyDecaySelector::default();
    let ref_history =
        run_federated(&mut setup, &config, &mut reference, &SlackFrequencyPolicy).unwrap();
    assert_eq!(history.to_csv(), ref_history.to_csv());
}
