//! Criterion micro-benchmarks for the per-round scheduling decisions —
//! the code the FLCC runs once per iteration (Alg. 1 line 4).
//!
//! These quantify the paper's implicit claim that HELCFL's heuristics
//! are cheap enough for per-round execution on an edge server: both
//! Alg. 2 and Alg. 3 are `O(Q log Q)` sorts and run in microseconds at
//! the paper's `Q = 100`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fl_baselines::classic::RandomSelector;
use fl_baselines::fedcs::FedCsSelector;
use fl_baselines::fedl::FedlFrequencyPolicy;
use fl_sim::frequency::{FrequencyPolicy, MaxFrequency};
use fl_sim::selection::{ClientSelector, SelectionContext};
use helcfl::{DecayCoefficient, GreedyDecaySelector, SlackFrequencyPolicy};
use mec_sim::population::{Population, PopulationBuilder};
use mec_sim::timeline::RoundTimeline;
use mec_sim::units::{Bits, Seconds};

fn population(q: usize) -> Population {
    PopulationBuilder::paper_default().num_devices(q).seed(42).build().unwrap()
}

fn payload() -> Bits {
    Bits::from_megabits(40.0)
}

/// Alg. 2 (HELCFL selection) vs the baselines' selection rules, at the
/// paper's Q = 100 and at 10×.
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for &q in &[100usize, 1000] {
        let pop = population(q);
        let target = (q / 10).max(1);
        group.bench_with_input(BenchmarkId::new("helcfl_greedy_decay", q), &q, |b, _| {
            let mut sel = GreedyDecaySelector::new(DecayCoefficient::default());
            let mut round = 0;
            b.iter(|| {
                round += 1;
                let ctx = SelectionContext {
                    round,
                    devices: pop.devices(),
                    payload: payload(),
                    target,
                };
                black_box(sel.select(&ctx).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("classic_random", q), &q, |b, _| {
            let mut sel = RandomSelector::new(7);
            let mut round = 0;
            b.iter(|| {
                round += 1;
                let ctx = SelectionContext {
                    round,
                    devices: pop.devices(),
                    payload: payload(),
                    target,
                };
                black_box(sel.select(&ctx).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("fedcs_deadline_greedy", q), &q, |b, _| {
            let mut sel = FedCsSelector::new(Seconds::new(90.0)).unwrap();
            let mut round = 0;
            b.iter(|| {
                round += 1;
                let ctx = SelectionContext {
                    round,
                    devices: pop.devices(),
                    payload: payload(),
                    target,
                };
                black_box(sel.select(&ctx).unwrap())
            });
        });
    }
    group.finish();
}

/// Alg. 3 (DVFS frequency determination) vs the `f_max` and FEDL
/// closed-form policies over growing selection sizes.
fn bench_frequency_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("frequency");
    for &n in &[10usize, 50, 100] {
        let pop = population(n);
        group.bench_with_input(BenchmarkId::new("helcfl_alg3_slack", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    SlackFrequencyPolicy.frequencies(pop.devices(), payload()).unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("fedl_closed_form", n), &n, |b, _| {
            let policy = FedlFrequencyPolicy::default();
            b.iter(|| black_box(policy.frequencies(pop.devices(), payload()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("max_frequency", n), &n, |b, _| {
            b.iter(|| black_box(MaxFrequency.frequencies(pop.devices(), payload()).unwrap()));
        });
    }
    group.finish();
}

/// The TDMA round-timeline simulation that backs every delay/energy
/// number in the evaluation.
fn bench_round_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline");
    for &n in &[10usize, 100] {
        let pop = population(n);
        group.bench_with_input(BenchmarkId::new("simulate_at_max", n), &n, |b, _| {
            b.iter(|| black_box(RoundTimeline::simulate_at_max(pop.devices(), payload())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_frequency_policies, bench_round_timeline);
criterion_main!(benches);
