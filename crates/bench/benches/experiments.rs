//! Criterion benches that exercise each paper experiment end-to-end at
//! reduced scale — one bench per table/figure, so `cargo bench` alone
//! touches every evaluation pipeline.
//!
//! Full-scale regeneration (the paper's exact parameters) is the job
//! of the `fig2_accuracy` / `table1_delay` / `fig3_energy` binaries;
//! these benches use [`PaperScenario::fast`] and a handful of rounds
//! to keep wall-clock sane while measuring the complete code path:
//! selection → DVFS → TDMA timeline → local GD → FedAvg → evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use helcfl_bench::{PaperScenario, Scheme, Setting};

fn mini_scenario() -> PaperScenario {
    let mut s = PaperScenario::fast();
    s.max_rounds = 5;
    s
}

/// Fig. 2 pipeline: one accuracy-curve run per scheme (IID).
fn bench_fig2_pipeline(c: &mut Criterion) {
    let scenario = mini_scenario();
    let config = scenario.training_config();
    let mut group = c.benchmark_group("fig2_accuracy_mini");
    group.sample_size(10);
    for scheme in Scheme::lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, scheme| {
                b.iter_batched(
                    || scenario.setup(Setting::Iid).unwrap(),
                    |mut setup| black_box(scheme.run(&mut setup, &config).unwrap()),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// Table I pipeline: run + time-to-accuracy queries (Non-IID).
fn bench_table1_pipeline(c: &mut Criterion) {
    let scenario = mini_scenario();
    let config = scenario.training_config();
    let mut group = c.benchmark_group("table1_delay_mini");
    group.sample_size(10);
    group.bench_function("helcfl_time_to_accuracy", |b| {
        b.iter_batched(
            || scenario.setup(Setting::NonIid).unwrap(),
            |mut setup| {
                let history = Scheme::Helcfl { eta: 0.5, dvfs: true }
                    .run(&mut setup, &config)
                    .unwrap();
                black_box((
                    history.time_to_accuracy(0.3),
                    history.time_to_accuracy(0.4),
                    history.time_to_accuracy(0.5),
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Fig. 3 pipeline: the DVFS-on/off energy comparison (IID).
fn bench_fig3_pipeline(c: &mut Criterion) {
    let scenario = mini_scenario();
    let config = scenario.training_config();
    let mut group = c.benchmark_group("fig3_energy_mini");
    group.sample_size(10);
    for dvfs in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if dvfs { "with_dvfs" } else { "without_dvfs" }),
            &dvfs,
            |b, &dvfs| {
                b.iter_batched(
                    || scenario.setup(Setting::Iid).unwrap(),
                    |mut setup| {
                        let history = Scheme::Helcfl { eta: 0.5, dvfs }
                            .run(&mut setup, &config)
                            .unwrap();
                        black_box(history.total_energy())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_pipeline, bench_table1_pipeline, bench_fig3_pipeline);
criterion_main!(benches);
