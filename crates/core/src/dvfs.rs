//! Algorithm 3 — DVFS-enabled operating-frequency determination.
//!
//! §VI-A observes that TDMA serialization leaves devices idling between
//! compute completion and upload start (Fig. 1). Alg. 3 converts that
//! slack into energy savings: sort the selected users by compute delay
//! at `f_max`; the first (no slack) runs at `f_max`; every subsequent
//! user is slowed so its local update finishes exactly when its
//! predecessor's upload ends — because `E ∝ f²` (Eq. 5), finishing
//! "just in time" is strictly cheaper than finishing early and
//! waiting.
//!
//! The paper leaves the derived frequency unclamped; real DVFS ranges
//! are bounded, so this implementation clamps into `[f_min, f_max]`
//! and re-derives the actual finish time from the clamped frequency
//! (see DESIGN.md §7). Clamping at `f_min` still finishes before the
//! channel frees (the ideal frequency was *below* `f_min`), and
//! clamping at `f_max` reproduces the traditional schedule, so the
//! round makespan is never extended — a property test asserts this.

use fl_sim::error::Result;
use fl_sim::frequency::FrequencyPolicy;
use helcfl_telemetry::{Class, Telemetry};
use mec_sim::device::Device;
use mec_sim::units::{Bits, Hertz, Seconds};

/// The HELCFL frequency policy (Alg. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlackFrequencyPolicy;

impl SlackFrequencyPolicy {
    /// Runs Alg. 3 and additionally returns the predicted per-device
    /// upload-end times (diagnostics; index-aligned with the *sorted*
    /// order used internally).
    ///
    /// # Errors
    ///
    /// Currently infallible for non-empty inputs; returns an empty
    /// assignment for an empty selection.
    pub fn determine(
        &self,
        selected: &[Device],
        payload: Bits,
    ) -> Result<Vec<(usize, Hertz)>> {
        self.determine_traced(selected, payload, &Telemetry::disabled())
    }

    /// [`SlackFrequencyPolicy::determine`] with Alg.-3 internals
    /// recorded into telemetry (all [`Class::Sim`]):
    ///
    /// * `dvfs.downscale` (histogram) — per-device `f / f_max`
    ///   downscale factor (1.0 for the first user, lower when slack
    ///   was harvested);
    /// * `dvfs.clamped_min` / `dvfs.clamped_max` (counters) — how
    ///   often the ideal frequency fell outside the DVFS range
    ///   (DESIGN.md §7's deviation from the unclamped paper);
    /// * `dvfs.assignments` (counter) — devices assigned in total.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlackFrequencyPolicy::determine`].
    pub fn determine_traced(
        &self,
        selected: &[Device],
        payload: Bits,
        tele: &Telemetry,
    ) -> Result<Vec<(usize, Hertz)>> {
        // Line 1: ascending by model-update delay at f_max.
        let mut order: Vec<usize> = (0..selected.len()).collect();
        order.sort_by(|&a, &b| {
            selected[a]
                .compute_delay_at_max()
                .partial_cmp(&selected[b].compute_delay_at_max())
                .expect("delays are finite")
                .then_with(|| selected[a].id().cmp(&selected[b].id()))
        });

        let mut assignment = Vec::with_capacity(selected.len());
        let mut channel_free = Seconds::ZERO;
        let mut clamped_min = 0u64;
        let mut clamped_max = 0u64;
        for (pos, &idx) in order.iter().enumerate() {
            let device = &selected[idx];
            let range = device.cpu().range();
            let f = if pos == 0 {
                // Lines 3–4: no slack for the first user.
                range.max()
            } else {
                // Line 9: finish computing when the predecessor's
                // upload ends (channel_free), clamped to the range.
                let (clamped, ideal) =
                    device.cpu().frequency_for_deadline(device.work(), channel_free);
                if ideal < range.min() {
                    clamped_min += 1;
                } else if ideal > range.max() {
                    clamped_max += 1;
                }
                clamped
            };
            if tele.is_enabled() {
                tele.record(Class::Sim, "dvfs.downscale", f / range.max());
            }
            let compute_finish = device.work() / f;
            let upload_start = compute_finish.max(channel_free);
            channel_free = upload_start + device.upload_delay(payload);
            assignment.push((idx, f));
        }
        if tele.is_enabled() {
            tele.with_metrics(|m| {
                m.counter_add(Class::Sim, "dvfs.assignments", assignment.len() as u64);
                m.counter_add(Class::Sim, "dvfs.clamped_min", clamped_min);
                m.counter_add(Class::Sim, "dvfs.clamped_max", clamped_max);
            });
        }
        Ok(assignment)
    }
}

impl FrequencyPolicy for SlackFrequencyPolicy {
    fn name(&self) -> &'static str {
        "dvfs-slack"
    }

    /// Alg. 3 only *harvests* slack — every device still finishes no
    /// later than the moment the channel would reach it at `f_max` —
    /// so the makespan bound holds and the trace auditor enforces it.
    fn delay_neutral(&self) -> bool {
        true
    }

    fn frequencies(&self, selected: &[Device], payload: Bits) -> Result<Vec<Hertz>> {
        self.frequencies_traced(selected, payload, &Telemetry::disabled())
    }

    fn frequencies_traced(
        &self,
        selected: &[Device],
        payload: Bits,
        tele: &Telemetry,
    ) -> Result<Vec<Hertz>> {
        let assignment = self.determine_traced(selected, payload, tele)?;
        let mut freqs = vec![Hertz::ZERO; selected.len()];
        for (idx, f) in assignment {
            freqs[idx] = f;
        }
        Ok(freqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::comm::Uplink;
    use mec_sim::cpu::DvfsCpu;
    use mec_sim::device::DeviceId;
    use mec_sim::timeline::RoundTimeline;
    use mec_sim::units::{BitsPerSecond, Watts};

    fn device(id: usize, fmax_ghz: f64, samples: usize, mbps: f64) -> Device {
        let cpu =
            DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax_ghz)).unwrap();
        let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
        Device::new(DeviceId(id), cpu, 1.0e7, samples, uplink).unwrap()
    }

    fn payload() -> Bits {
        Bits::from_megabits(40.0)
    }

    #[test]
    fn fastest_device_keeps_its_maximum_frequency() {
        let devs = [device(0, 2.0, 500, 8.0), device(1, 1.0, 500, 8.0)];
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        // Device 0 computes fastest (2.5 s vs 10 s) → f_max.
        assert_eq!(freqs[0], Hertz::from_ghz(2.0));
    }

    #[test]
    fn second_device_finishes_exactly_when_channel_frees() {
        // Device 0: T_cal 2.5 s, upload 5 s → channel free at 7.5 s.
        // Device 1 (same hardware, more data): ideal f = 6e9/7.5 = 0.8 GHz.
        let devs = [device(0, 2.0, 500, 8.0), device(1, 2.0, 600, 8.0)];
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        assert_eq!(freqs[0], Hertz::from_ghz(2.0));
        assert!((freqs[1].ghz() - 0.8).abs() < 1e-9, "got {}", freqs[1].ghz());
        // The tuned schedule leaves the second device zero slack.
        let tl = RoundTimeline::simulate(&devs, &freqs, payload()).unwrap();
        assert_eq!(tl.activity(DeviceId(1)).unwrap().slack(), Seconds::ZERO);
    }

    #[test]
    fn derived_frequency_clamps_to_f_min() {
        // Huge slack: device 1 is tiny but the channel stays busy long.
        let devs = [device(0, 2.0, 500, 0.5), device(1, 2.0, 520, 0.5)];
        // Upload takes 80 s; ideal f for device 1 ≈ 5.2e9/82.5 ≈ 0.063 GHz
        // → clamped to f_min = 0.3 GHz.
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        assert_eq!(freqs[1], Hertz::from_ghz(0.3));
    }

    #[test]
    fn derived_frequency_clamps_to_f_max_when_slack_is_negative() {
        // Device 1 is much slower: even f_max cannot meet the channel-
        // free deadline → clamp to f_max (traditional behaviour).
        let devs = [device(0, 2.0, 100, 8.0), device(1, 0.5, 2000, 8.0)];
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        assert_eq!(freqs[1], Hertz::from_ghz(0.5));
    }

    #[test]
    fn dvfs_saves_energy_without_extending_the_round() {
        let devs = [
            device(0, 2.0, 500, 8.0),
            device(1, 1.8, 520, 6.0),
            device(2, 1.5, 480, 4.0),
            device(3, 0.9, 510, 7.0),
        ];
        let baseline = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        let tuned = RoundTimeline::simulate(&devs, &freqs, payload()).unwrap();
        assert!(
            (tuned.makespan().get() - baseline.makespan().get()).abs() < 1e-9,
            "DVFS must not extend the round: {} vs {}",
            tuned.makespan(),
            baseline.makespan()
        );
        assert!(
            tuned.total_energy() < baseline.total_energy(),
            "DVFS must cut energy: {} vs {}",
            tuned.total_energy(),
            baseline.total_energy()
        );
    }

    #[test]
    fn traced_frequencies_match_untraced_and_record_downscale() {
        let devs = [
            device(0, 2.0, 500, 8.0),
            device(1, 1.8, 520, 6.0),
            device(2, 1.5, 480, 4.0),
            device(3, 0.9, 510, 7.0),
        ];
        let tele = Telemetry::metrics_only();
        let plain = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        let traced =
            SlackFrequencyPolicy.frequencies_traced(&devs, payload(), &tele).unwrap();
        assert_eq!(plain, traced, "tracing changed the assignment");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("dvfs.assignments"), 4);
        let downscale = snap.histogram("dvfs.downscale").unwrap();
        assert_eq!(downscale.count, 4);
        // The first (fastest) device always runs at f_max …
        assert_eq!(downscale.max, 1.0);
        // … and this workload leaves harvestable slack for the rest.
        assert!(downscale.min < 1.0, "no slack was harvested");
        // All DVFS metrics are deterministic (Sim-class).
        assert_eq!(snap.deterministic().len(), snap.len());
    }

    #[test]
    fn single_device_gets_f_max() {
        let devs = [device(0, 1.3, 700, 5.0)];
        let freqs = SlackFrequencyPolicy.frequencies(&devs, payload()).unwrap();
        assert_eq!(freqs, vec![Hertz::from_ghz(1.3)]);
    }

    #[test]
    fn empty_selection_yields_empty_assignment() {
        let freqs = SlackFrequencyPolicy.frequencies(&[], payload()).unwrap();
        assert!(freqs.is_empty());
    }

    #[test]
    fn assignment_indices_cover_input_order() {
        let devs = [device(5, 0.8, 500, 8.0), device(2, 2.0, 500, 8.0)];
        let assignment = SlackFrequencyPolicy.determine(&devs, payload()).unwrap();
        let mut indices: Vec<usize> = assignment.iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1]);
        // Sorted order starts with the faster device (input index 1).
        assert_eq!(assignment[0].0, 1);
    }
}
