//! Algorithm 2 at fleet scale — an incremental index over Eq.-20
//! utilities.
//!
//! [`GreedyDecaySelector`](crate::selection::GreedyDecaySelector)
//! re-scores and sorts the whole population every round: O(Q) utility
//! evaluations plus an O(Q + N log N) partial sort. That is fine at
//! the paper's Q = 100 and ruinous at Q = 10^7. This module keeps the
//! scoring *factored* instead: Eq. 20 is `u_q = η^{A_q} / T_q` where
//! `T_q` (the Eq.-9 delay at `f_max`) is static for the whole run, so
//! devices can be bucketed by their appearance counter `A_q`, each
//! bucket ordered once by delay. Within a bucket the η^{A_q} factor is
//! a shared constant, so the bucket's *head* (minimum delay) is its
//! maximum-utility member — a round's top-N is a k-way merge across
//! bucket heads with the lazy α_q = η^{A_q} decay applied on pop.
//! Counter increments and `on_delivery_failure` refunds are O(log B)
//! bucket moves; nothing is ever rescanned.
//!
//! ## Exactness
//!
//! The index reproduces the reference selector *pick for pick, bit for
//! bit*:
//!
//! - utilities are evaluated through the same [`utility`] function, so
//!   float behavior is byte-identical;
//! - IEEE division is monotone in the divisor, so for a fixed bucket
//!   the minimum-delay entry really is an arg-max of `u`;
//! - equal utilities break ties by ascending id, exactly like the
//!   reference sort: equal-`u` entries within a bucket form a
//!   contiguous run of delay groups walked via `BTreeSet::range`
//!   jumps, cross-bucket ties compare the per-bucket run minima, and
//!   fully-underflowed utilities (`η^{A_q} == 0.0`) live in a
//!   dedicated id-ordered set;
//! - a popped winner is *not* re-inserted until the round's merge
//!   completes, mirroring the reference's frozen round-start
//!   utilities.
//!
//! Like the reference (and Alg. 2's initialization phase), per-device
//! delays are collected at first sight and assumed static thereafter.
//!
//! Devices that disappear from the selectable set (battery depletion)
//! are parked when popped and re-inserted if they ever return; their
//! counters are untouched, preserving the reference's id-keyed
//! semantics under dropout and rejoin.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use fl_sim::error::{FlError, Result};
use fl_sim::selection::{ClientSelector, SelectionContext, SelectorSnapshot};
use helcfl_telemetry::{Class, Telemetry};
use mec_sim::device::DeviceId;
use mec_sim::units::{Bits, Seconds};

use crate::utility::{utility, AppearanceCounters, DecayCoefficient};

/// Where a known device currently lives in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Never seen; no delay cached.
    Unknown,
    /// In its appearance bucket (or the zero-utility set).
    Placed,
    /// Popped while unselectable; waiting to rejoin.
    Parked,
}

/// The bucketed-utility index: buckets keyed by appearance counter,
/// each an ordered set of `(delay_bits, id)` pairs. Positive-finite
/// f64 delays compare identically to their bit patterns, so the
/// `u64` keys give exact delay order without float keys in the tree.
#[derive(Debug, Clone)]
struct UtilityIndex {
    payload: Bits,
    /// Cached Eq.-9 delay (seconds) by id; meaningful iff not Unknown.
    delay: Vec<f64>,
    slot: Vec<Slot>,
    /// Number of non-Unknown ids (= insertions so far).
    known: usize,
    buckets: BTreeMap<u32, BTreeSet<(u64, usize)>>,
    /// Ids whose utility underflowed to exactly 0.0 — globally tied,
    /// ordered by id like the reference's tie-break.
    zero: BTreeSet<usize>,
    /// Popped-but-unselectable ids awaiting rejoin.
    parked: Vec<usize>,
}

impl UtilityIndex {
    fn new(payload: Bits) -> Self {
        Self {
            payload,
            delay: Vec::new(),
            slot: Vec::new(),
            known: 0,
            buckets: BTreeMap::new(),
            zero: BTreeSet::new(),
            parked: Vec::new(),
        }
    }

    fn ensure_id(&mut self, id: usize) {
        if id >= self.slot.len() {
            self.delay.resize(id + 1, f64::NAN);
            self.slot.resize(id + 1, Slot::Unknown);
        }
    }

    /// Inserts `id` into the structure for appearance count `a`,
    /// recomputing Eq. 20 to decide between a bucket and the zero set
    /// (`powi` is not guaranteed monotone in the exponent, so
    /// membership is always decided fresh).
    fn place(&mut self, id: usize, a: u32, eta: DecayCoefficient) {
        let u = utility(eta, a, Seconds::new(self.delay[id]));
        if u == 0.0 {
            self.zero.insert(id);
        } else {
            self.buckets.entry(a).or_default().insert((self.delay[id].to_bits(), id));
        }
        self.slot[id] = Slot::Placed;
    }

    /// Removes a placed `id` known to sit at appearance count `a`.
    fn remove_placed(&mut self, id: usize, a: u32) {
        if !self.zero.remove(&id) {
            let set = self.buckets.get_mut(&a).expect("placed id has a bucket");
            let removed = set.remove(&(self.delay[id].to_bits(), id));
            debug_assert!(removed, "placed id {id} missing from bucket {a}");
            if set.is_empty() {
                self.buckets.remove(&a);
            }
        }
    }

    /// Minimum id among this bucket's entries whose utility equals the
    /// head's (`max_u`), plus that entry's delay bits. Equal-utility
    /// entries are a contiguous run of delay groups from the head;
    /// each group's first entry already has the group-minimal id, so
    /// the walk jumps group to group via `range`.
    fn run_min(
        set: &BTreeSet<(u64, usize)>,
        a: u32,
        eta: DecayCoefficient,
        max_u: f64,
    ) -> (usize, u64) {
        let &(d0, id0) = set.iter().next().expect("bucket is never empty");
        let (mut best_id, mut best_d) = (id0, d0);
        let mut cur = d0;
        while let Some(&(d, id)) =
            set.range((Bound::Excluded((cur, usize::MAX)), Bound::Unbounded)).next()
        {
            if utility(eta, a, Seconds::new(f64::from_bits(d))) != max_u {
                break;
            }
            if id < best_id {
                best_id = id;
                best_d = d;
            }
            cur = d;
        }
        (best_id, best_d)
    }
}

/// Drop-in replacement for
/// [`GreedyDecaySelector`](crate::selection::GreedyDecaySelector)
/// backed by the bucketed-utility index: same name (`"helcfl"`), same
/// picks, same telemetry, O(N log B) per round instead of O(Q log Q).
///
/// # Examples
///
/// ```
/// use fl_sim::selection::{ClientSelector, SelectionContext};
/// use helcfl::indexed::IndexedDecaySelector;
/// use helcfl::selection::GreedyDecaySelector;
/// use mec_sim::population::PopulationBuilder;
/// use mec_sim::units::Bits;
///
/// let pop = PopulationBuilder::paper_default().seed(7).build()?;
/// let mut indexed = IndexedDecaySelector::default();
/// let mut reference = GreedyDecaySelector::default();
/// for round in 1..=20 {
///     let ctx = SelectionContext {
///         round,
///         devices: pop.devices().into(),
///         payload: Bits::from_megabits(40.0),
///         target: 10,
///     };
///     assert_eq!(indexed.select(&ctx)?, reference.select(&ctx)?);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndexedDecaySelector {
    eta: DecayCoefficient,
    counters: AppearanceCounters,
    /// Incremental mirror of `counters.coverage()` so the telemetry
    /// gauge costs O(1), not an O(Q) scan.
    coverage: usize,
    index: Option<UtilityIndex>,
}

impl IndexedDecaySelector {
    /// Creates a selector with decay coefficient `eta`.
    pub fn new(eta: DecayCoefficient) -> Self {
        Self { eta, counters: AppearanceCounters::default(), coverage: 0, index: None }
    }

    /// The configured decay coefficient.
    #[inline]
    pub fn eta(&self) -> DecayCoefficient {
        self.eta
    }

    /// The appearance counters accumulated so far (indexed by
    /// [`DeviceId`]).
    #[inline]
    pub fn counters(&self) -> &AppearanceCounters {
        &self.counters
    }

    /// Approximate resident bytes of the selector: counters, cached
    /// delays, slot map, and tree entries (tree nodes estimated at
    /// 1.5× entry payload for allocator/branch overhead).
    pub fn memory_bytes(&self) -> usize {
        let mut total = core::mem::size_of::<Self>() + self.counters.memory_bytes();
        if let Some(ix) = &self.index {
            total += ix.delay.capacity() * core::mem::size_of::<f64>();
            total += ix.slot.capacity() * core::mem::size_of::<Slot>();
            let entries =
                ix.buckets.values().map(BTreeSet::len).sum::<usize>() + ix.zero.len();
            total += entries * (core::mem::size_of::<(u64, usize)>() * 3 / 2);
            total += ix.parked.capacity() * core::mem::size_of::<usize>();
        }
        total
    }

    fn select_inner(
        &mut self,
        ctx: &SelectionContext<'_>,
        tele: &Telemetry,
    ) -> Result<Vec<DeviceId>> {
        if ctx.devices.is_empty() {
            return Err(FlError::InvalidSelection { reason: "no devices to select".into() });
        }
        // A payload change invalidates every cached Eq.-9 delay.
        if self.index.as_ref().is_none_or(|ix| ix.payload != ctx.payload) {
            self.index = Some(UtilityIndex::new(ctx.payload));
        }
        let ix = self.index.as_mut().expect("just ensured");

        // Universe sync: admit newly-seen ids. When ids are implicit
        // backing positions (fleet- or mask-backed sets) and all of
        // them are known, no new id can appear and the scan is skipped
        // entirely — the steady-state rounds of a long run are O(N).
        if !(ctx.devices.has_implicit_ids() && ix.known == ctx.devices.universe_len()) {
            for d in ctx.devices.iter_universe() {
                let id = d.id().0;
                ix.ensure_id(id);
                if ix.slot[id] == Slot::Unknown {
                    self.counters.grow_to(id + 1);
                    ix.delay[id] = d.total_delay_at_max(ctx.payload).get();
                    ix.place(id, self.counters.get(id), self.eta);
                    ix.known += 1;
                }
            }
        }
        // Rejoin: parked devices that are selectable again re-enter
        // their bucket at their (unchanged) appearance count.
        let parked = core::mem::take(&mut ix.parked);
        for id in parked {
            if ctx.devices.contains(DeviceId(id)) {
                ix.place(id, self.counters.get(id), self.eta);
            } else {
                ix.parked.push(id);
            }
        }

        let n = ctx.target.min(ctx.devices.len()).max(1);
        let mut selected = Vec::with_capacity(n);
        let eta_f = self.eta.get();
        while selected.len() < n {
            // Arg-max over bucket heads; the id-ordered zero set only
            // matters once every positive-utility entry is gone.
            let mut best: Option<(f64, u32, usize, u64)> = None; // (u, bucket, id, delay bits)
            for (&a, set) in &ix.buckets {
                let &(dbits, _) = set.iter().next().expect("bucket is never empty");
                let u = utility(self.eta, a, Seconds::new(f64::from_bits(dbits)));
                match best {
                    Some((bu, ..)) if u < bu => {}
                    Some((bu, _, bid, _)) if u == bu => {
                        let (id, d) = UtilityIndex::run_min(set, a, self.eta, u);
                        if id < bid {
                            best = Some((u, a, id, d));
                        }
                    }
                    _ => {
                        let (id, d) = UtilityIndex::run_min(set, a, self.eta, u);
                        best = Some((u, a, id, d));
                    }
                }
            }
            let id = match best {
                Some((_, a, id, dbits)) => {
                    let set = ix.buckets.get_mut(&a).expect("winning bucket exists");
                    set.remove(&(dbits, id));
                    if set.is_empty() {
                        ix.buckets.remove(&a);
                    }
                    id
                }
                None => match ix.zero.iter().next().copied() {
                    Some(id) => {
                        ix.zero.remove(&id);
                        id
                    }
                    None => {
                        return Err(FlError::InvalidSelection {
                            reason: "utility index exhausted before reaching the target"
                                .into(),
                        })
                    }
                },
            };
            if !ctx.devices.contains(DeviceId(id)) {
                ix.slot[id] = Slot::Parked;
                ix.parked.push(id);
                continue;
            }
            if tele.is_enabled() {
                // Same pre-increment α_q = η^{A_q} the reference logs.
                let alpha = eta_f.powi(self.counters.get(id) as i32);
                tele.record(Class::Sim, "selection.alpha", alpha);
            }
            if self.counters.get(id) == 0 {
                self.coverage += 1;
            }
            self.counters.increment(id);
            selected.push(DeviceId(id));
        }
        // Deferred re-placement: winners move to bucket A_q + 1 only
        // after the merge, so this round's picks competed on utilities
        // frozen at round start — exactly like the reference's single
        // scored snapshot.
        for d in &selected {
            ix.place(d.0, self.counters.get(d.0), self.eta);
        }
        if tele.is_enabled() {
            tele.with_metrics(|m| {
                m.counter_add(Class::Sim, "selection.rounds", 1);
                m.counter_add(Class::Sim, "selection.selected", selected.len() as u64);
                m.gauge_set(Class::Sim, "selection.coverage", self.coverage as f64);
            });
        }
        Ok(selected)
    }
}

impl Default for IndexedDecaySelector {
    fn default() -> Self {
        Self::new(DecayCoefficient::default())
    }
}

impl ClientSelector for IndexedDecaySelector {
    /// Same scheme name as the reference selector: histories produced
    /// by either implementation are byte-identical, CSV rows included.
    fn name(&self) -> &'static str {
        "helcfl"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> Result<Vec<DeviceId>> {
        self.select_inner(ctx, &Telemetry::disabled())
    }

    fn select_traced(
        &mut self,
        ctx: &SelectionContext<'_>,
        tele: &Telemetry,
    ) -> Result<Vec<DeviceId>> {
        self.select_inner(ctx, tele)
    }

    fn on_delivery_failure(&mut self, failed: &[DeviceId]) {
        // Same refund semantics and out-of-range guard as the
        // reference; additionally an O(log B) bucket move keeps the
        // index synchronized with the decremented counter.
        for id in failed {
            let q = id.0;
            if q >= self.counters.len() {
                continue;
            }
            let before = self.counters.get(q);
            self.counters.decrement(q);
            if before == 0 {
                continue;
            }
            if before == 1 {
                self.coverage -= 1;
            }
            if let Some(ix) = &mut self.index {
                if q < ix.slot.len() && ix.slot[q] == Slot::Placed {
                    ix.remove_placed(q, before);
                    ix.place(q, before - 1, self.eta);
                }
            }
        }
    }

    fn snapshot(&self) -> SelectorSnapshot {
        // The counters are the selector's only durable state: the
        // index is a pure cache over (counters, payload, delays) and is
        // rebuilt lazily on the first post-restore round.
        SelectorSnapshot {
            counters_len: self.counters.len(),
            counters: self.counters.to_sparse(),
            rng_state: None,
        }
    }

    fn restore(&mut self, snap: &SelectorSnapshot) -> Result<()> {
        if snap.rng_state.is_some() {
            return Err(FlError::InvalidConfig {
                field: "selector_snapshot",
                reason: "helcfl selector carries no RNG but the checkpoint has RNG state"
                    .into(),
            });
        }
        if let Some(&(q, _)) = snap.counters.iter().find(|&&(q, _)| q >= snap.counters_len) {
            return Err(FlError::InvalidConfig {
                field: "selector_snapshot",
                reason: format!(
                    "appearance counter for device {q} exceeds counters_len {}",
                    snap.counters_len
                ),
            });
        }
        self.counters = AppearanceCounters::from_sparse(snap.counters_len, &snap.counters);
        self.coverage = self.counters.coverage();
        self.index = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::GreedyDecaySelector;
    use fl_sim::selection::validate_selection;
    use mec_sim::population::PopulationBuilder;

    fn ctx(devices: &[mec_sim::device::Device], round: usize, target: usize) -> SelectionContext<'_> {
        SelectionContext {
            round,
            devices: devices.into(),
            payload: Bits::from_megabits(40.0),
            target,
        }
    }

    #[test]
    fn matches_reference_over_many_rounds() {
        let pop = PopulationBuilder::paper_default().num_devices(40).seed(5).build().unwrap();
        let mut indexed = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=120 {
            let c = ctx(pop.devices(), round, 4);
            let a = indexed.select(&c).unwrap();
            let b = reference.select(&c).unwrap();
            assert_eq!(a, b, "round {round}");
            validate_selection(&c, &a).unwrap();
        }
        for q in 0..40 {
            assert_eq!(indexed.counters().get(q), reference.counters().get(q), "device {q}");
        }
    }

    #[test]
    fn fleet_backed_context_matches_slice_backed() {
        let builder = PopulationBuilder::paper_default().num_devices(30).seed(9);
        let pop = builder.build().unwrap();
        let fleet = builder.build_fleet().unwrap();
        let mut a = IndexedDecaySelector::default();
        let mut b = IndexedDecaySelector::default();
        for round in 1..=50 {
            let slice_ctx = ctx(pop.devices(), round, 5);
            let fleet_ctx = SelectionContext {
                round,
                devices: (&fleet).into(),
                payload: Bits::from_megabits(40.0),
                target: 5,
            };
            assert_eq!(a.select(&slice_ctx).unwrap(), b.select(&fleet_ctx).unwrap());
        }
    }

    #[test]
    fn empty_population_is_rejected() {
        let mut sel = IndexedDecaySelector::default();
        let c = ctx(&[], 1, 3);
        assert!(sel.select(&c).is_err());
    }

    #[test]
    fn payload_change_rebuilds_the_index() {
        let pop = PopulationBuilder::paper_default().num_devices(20).seed(4).build().unwrap();
        let mut indexed = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=30 {
            // Alternate payloads: delays (and hence utilities) differ
            // per payload, and the index must follow.
            let payload =
                if round % 2 == 0 { Bits::from_megabits(40.0) } else { Bits::from_megabits(4.0) };
            let c = SelectionContext {
                round,
                devices: pop.devices().into(),
                payload,
                target: 3,
            };
            assert_eq!(indexed.select(&c).unwrap(), reference.select(&c).unwrap(), "round {round}");
        }
    }

    #[test]
    fn refunds_restore_selection_priority() {
        let pop = PopulationBuilder::paper_default().num_devices(12).seed(6).build().unwrap();
        let mut indexed = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=40 {
            let c = ctx(pop.devices(), round, 3);
            let a = indexed.select(&c).unwrap();
            let b = reference.select(&c).unwrap();
            assert_eq!(a, b, "round {round}");
            // Refund the slowest pick every third round.
            if round % 3 == 0 {
                let failed = [*a.last().unwrap()];
                indexed.on_delivery_failure(&failed);
                reference.on_delivery_failure(&failed);
            }
        }
        for q in 0..12 {
            assert_eq!(indexed.counters().get(q), reference.counters().get(q), "device {q}");
        }
        // An unknown id is ignored by both.
        indexed.on_delivery_failure(&[DeviceId(999)]);
    }

    #[test]
    fn dropout_and_rejoin_track_the_reference() {
        let pop = PopulationBuilder::paper_default().num_devices(16).seed(8).build().unwrap();
        let full = pop.devices().to_vec();
        let evens: Vec<_> = full.iter().filter(|d| d.id().0 % 2 == 0).copied().collect();
        let mut indexed = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=60 {
            // Every other block of 5 rounds, odd devices drop out.
            let devices: &[mec_sim::device::Device] =
                if (round / 5) % 2 == 0 { &full } else { &evens };
            let c = ctx(devices, round, 3);
            let a = indexed.select(&c).unwrap();
            let b = reference.select(&c).unwrap();
            assert_eq!(a, b, "round {round}");
        }
        for q in 0..16 {
            assert_eq!(indexed.counters().get(q), reference.counters().get(q), "device {q}");
        }
    }

    #[test]
    fn telemetry_is_equivalent_to_the_reference() {
        let pop = PopulationBuilder::paper_default().num_devices(25).seed(12).build().unwrap();
        let tele_a = Telemetry::metrics_only();
        let tele_b = Telemetry::metrics_only();
        let mut indexed = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=30 {
            let c = ctx(pop.devices(), round, 5);
            let a = indexed.select_traced(&c, &tele_a).unwrap();
            let b = reference.select_traced(&c, &tele_b).unwrap();
            assert_eq!(a, b, "round {round}");
        }
        let snap_a = tele_a.snapshot();
        let snap_b = tele_b.snapshot();
        assert_eq!(snap_a.counter("selection.rounds"), snap_b.counter("selection.rounds"));
        assert_eq!(snap_a.counter("selection.selected"), snap_b.counter("selection.selected"));
        // Gauge and full α-histogram (count, min/max, every bucket)
        // must match the reference sample for sample.
        assert_eq!(snap_a.get("selection.coverage"), snap_b.get("selection.coverage"));
        assert!(snap_a.histogram("selection.alpha").is_some());
        assert_eq!(snap_a.histogram("selection.alpha"), snap_b.histogram("selection.alpha"));
    }

    #[test]
    fn eta_underflow_keeps_id_order_and_never_panics() {
        // η = 1e-300 underflows to exactly 0.0 by the second
        // appearance (1e-600 is subnormal-zero): every seen device
        // lands in the zero set and selection degrades to pure id
        // order — deterministically, with no partial_cmp panic.
        let pop = PopulationBuilder::paper_default().num_devices(10).seed(3).build().unwrap();
        let eta = DecayCoefficient::new(1.0e-300).unwrap();
        let mut indexed = IndexedDecaySelector::new(eta);
        let mut reference = GreedyDecaySelector::new(eta);
        for round in 1..=25 {
            let c = ctx(pop.devices(), round, 4);
            let a = indexed.select(&c).unwrap();
            let b = reference.select(&c).unwrap();
            assert_eq!(a, b, "round {round}");
        }
        // After everyone decayed to zero utility, picks are the first
        // N ids.
        let c = ctx(pop.devices(), 99, 4);
        let picks = indexed.select(&c).unwrap();
        assert_eq!(picks, vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]);
    }

    #[test]
    fn snapshot_restore_matches_reference_and_uninterrupted_index() {
        let pop = PopulationBuilder::paper_default().num_devices(30).seed(14).build().unwrap();
        let mut live = IndexedDecaySelector::default();
        let mut reference = GreedyDecaySelector::default();
        for round in 1..=9 {
            let c = ctx(pop.devices(), round, 4);
            assert_eq!(live.select(&c).unwrap(), reference.select(&c).unwrap());
        }
        let snap = ClientSelector::snapshot(&live);
        // The snapshot interchanges with the reference selector's: both
        // carry exactly the appearance counters.
        assert_eq!(snap, ClientSelector::snapshot(&reference));
        let mut resumed = IndexedDecaySelector::default();
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.counters(), live.counters());
        for round in 10..=30 {
            let c = ctx(pop.devices(), round, 4);
            let a = live.select(&c).unwrap();
            let b = resumed.select(&c).unwrap();
            let r = reference.select(&c).unwrap();
            assert_eq!(a, b, "round {round}: resumed index diverged");
            assert_eq!(a, r, "round {round}: index diverged from reference");
        }
        // RNG state in the image is refused.
        let mut bad = snap.clone();
        bad.rng_state = Some([9, 9, 9, 9]);
        assert!(resumed.restore(&bad).is_err());
    }

    #[test]
    fn memory_accessor_reports_nonzero_after_use() {
        let pop = PopulationBuilder::paper_default().num_devices(50).seed(2).build().unwrap();
        let mut sel = IndexedDecaySelector::default();
        let baseline = sel.memory_bytes();
        sel.select(&ctx(pop.devices(), 1, 5)).unwrap();
        assert!(sel.memory_bytes() > baseline);
    }
}
