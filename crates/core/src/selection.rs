//! Algorithm 2 — utility-driven, greedy-decay user selection.
//!
//! Each round, every user's utility (Eq. 20) is computed from its
//! Eq.-9 delay at maximum frequency and its appearance counter; the
//! top-`N` users by utility are selected and their counters
//! incremented. Fast users dominate early rounds (high efficiency);
//! the geometric decay guarantees slow users — and their data — enter
//! training (high final accuracy), fixing FedCS's accuracy ceiling.
//!
//! State is keyed by [`DeviceId`], not by position, so the selector
//! stays correct when the selectable set shrinks mid-training (e.g.
//! battery-depleted devices dropping out — see
//! [`fl_sim::runner::TrainingConfig::battery_capacity`]).


use fl_sim::error::{FlError, Result};
use fl_sim::selection::{ClientSelector, SelectionContext, SelectorSnapshot};
use helcfl_telemetry::{Class, Telemetry};
use mec_sim::device::DeviceId;
use mec_sim::units::Seconds;

use crate::utility::{utility, AppearanceCounters, DecayCoefficient};

/// The HELCFL selector (Alg. 2).
///
/// Stateful across rounds: appearance counters persist for the whole
/// training run. Per-user delays are derived from the resource
/// information users report during initialization (Alg. 1 lines 1–2);
/// since that information is static, deriving it per round is
/// equivalent to Alg. 2's round-1 caching and stays correct under
/// shrinking availability.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyDecaySelector {
    eta: DecayCoefficient,
    counters: AppearanceCounters,
}

impl GreedyDecaySelector {
    /// Creates a selector with decay coefficient `eta`.
    pub fn new(eta: DecayCoefficient) -> Self {
        Self { eta, counters: AppearanceCounters::default() }
    }

    /// The configured decay coefficient.
    #[inline]
    pub fn eta(&self) -> DecayCoefficient {
        self.eta
    }

    /// The appearance counters accumulated so far (indexed by
    /// [`DeviceId`]).
    #[inline]
    pub fn counters(&self) -> &AppearanceCounters {
        &self.counters
    }
}

impl Default for GreedyDecaySelector {
    fn default() -> Self {
        Self::new(DecayCoefficient::default())
    }
}

impl GreedyDecaySelector {
    fn select_inner(
        &mut self,
        ctx: &SelectionContext<'_>,
        tele: &Telemetry,
    ) -> Result<Vec<DeviceId>> {
        if ctx.devices.is_empty() {
            return Err(FlError::InvalidSelection { reason: "no devices to select".into() });
        }
        // Alg. 2 lines 1–7: counters start at zero for newly-seen ids.
        let max_id = ctx.devices.iter().map(|d| d.id().0).max().expect("non-empty");
        self.counters.grow_to(max_id + 1);
        let n = ctx.target.min(ctx.devices.len()).max(1);

        // Alg. 2 lines 8–10: utilities of every selectable user.
        let mut scored: Vec<(DeviceId, f64)> = ctx
            .devices
            .iter()
            .map(|d| {
                let delay: Seconds = ctx.total_delay_at_max(&d);
                (d.id(), utility(self.eta, self.counters.get(d.id().0), delay))
            })
            .collect();
        // Lines 14–19: greedily take the top-N by utility (descending,
        // ties by id for determinism) — equivalent to N arg-max passes
        // over V'. (utility desc, id asc) is a strict total order over
        // distinct ids, so partitioning the top N with select_nth and
        // sorting only that prefix yields exactly the full sort's first
        // N entries in the same order, at O(Q + N log N) instead of
        // O(Q log Q).
        let cmp = |a: &(DeviceId, f64), b: &(DeviceId, f64)| {
            b.1.partial_cmp(&a.1)
                .expect("utilities are finite")
                .then_with(|| a.0.cmp(&b.0))
        };
        if n < scored.len() {
            scored.select_nth_unstable_by(n - 1, cmp);
            scored.truncate(n);
        }
        scored.sort_by(cmp);
        let mut selected = Vec::with_capacity(n);
        let eta = self.eta.get();
        for &(id, _) in scored.iter().take(n) {
            if tele.is_enabled() {
                // The Eq.-20 decay factor α_q = η^{A_q} this pick was
                // made under (before the increment below) — its
                // distribution shows the greedy-decay rotation at work.
                let alpha = eta.powi(self.counters.get(id.0) as i32);
                tele.record(Class::Sim, "selection.alpha", alpha);
            }
            self.counters.increment(id.0); // line 18: utility decay
            selected.push(id);
        }
        if tele.is_enabled() {
            tele.with_metrics(|m| {
                m.counter_add(Class::Sim, "selection.rounds", 1);
                m.counter_add(Class::Sim, "selection.selected", selected.len() as u64);
                m.gauge_set(Class::Sim, "selection.coverage", self.counters.coverage() as f64);
            });
        }
        Ok(selected)
    }
}

impl ClientSelector for GreedyDecaySelector {
    fn name(&self) -> &'static str {
        "helcfl"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> Result<Vec<DeviceId>> {
        self.select_inner(ctx, &Telemetry::disabled())
    }

    fn select_traced(
        &mut self,
        ctx: &SelectionContext<'_>,
        tele: &Telemetry,
    ) -> Result<Vec<DeviceId>> {
        self.select_inner(ctx, tele)
    }

    fn on_delivery_failure(&mut self, failed: &[DeviceId]) {
        // Refund semantics (see `DegradationPolicy`): a user that was
        // selected but never delivered gets its Alg. 2 line-18 decay
        // rolled back, so Eq. 20 keeps treating it as under-served
        // rather than penalizing it for a failure it didn't choose.
        for id in failed {
            if id.0 < self.counters.len() {
                self.counters.decrement(id.0);
            }
        }
    }

    fn snapshot(&self) -> SelectorSnapshot {
        SelectorSnapshot {
            counters_len: self.counters.len(),
            counters: self.counters.to_sparse(),
            rng_state: None,
        }
    }

    fn restore(&mut self, snap: &SelectorSnapshot) -> Result<()> {
        if snap.rng_state.is_some() {
            return Err(FlError::InvalidConfig {
                field: "selector_snapshot",
                reason: "helcfl selector carries no RNG but the checkpoint has RNG state"
                    .into(),
            });
        }
        if let Some(&(q, _)) = snap.counters.iter().find(|&&(q, _)| q >= snap.counters_len) {
            return Err(FlError::InvalidConfig {
                field: "selector_snapshot",
                reason: format!(
                    "appearance counter for device {q} exceeds counters_len {}",
                    snap.counters_len
                ),
            });
        }
        self.counters = AppearanceCounters::from_sparse(snap.counters_len, &snap.counters);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_sim::selection::validate_selection;
    use mec_sim::device::Device;
    use mec_sim::population::PopulationBuilder;
    use mec_sim::units::Bits;

    fn ctx<'a>(devices: &'a [Device], target: usize) -> SelectionContext<'a> {
        SelectionContext { round: 1, devices: devices.into(), payload: Bits::from_megabits(40.0), target }
    }

    #[test]
    fn first_round_picks_the_fastest_users() {
        let pop = PopulationBuilder::paper_default().num_devices(20).seed(5).build().unwrap();
        let mut sel = GreedyDecaySelector::default();
        let c = ctx(pop.devices(), 5);
        let picked = sel.select(&c).unwrap();
        validate_selection(&c, &picked).unwrap();
        // Compare against explicit fastest-5.
        let mut by_delay: Vec<_> = pop.devices().iter().collect();
        by_delay.sort_by(|a, b| {
            c.total_delay_at_max(a).partial_cmp(&c.total_delay_at_max(b)).unwrap()
        });
        let fastest: Vec<_> = by_delay.iter().take(5).map(|d| d.id()).collect();
        assert_eq!(picked, fastest);
    }

    #[test]
    fn appearance_decay_rotates_users_in() {
        let pop = PopulationBuilder::paper_default().num_devices(30).seed(6).build().unwrap();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(0.5).unwrap());
        let mut all_selected = std::collections::BTreeSet::new();
        for round in 1..=40 {
            let c = SelectionContext {
                round,
                devices: pop.devices().into(),
                payload: Bits::from_megabits(40.0),
                target: 3,
            };
            for id in sel.select(&c).unwrap() {
                all_selected.insert(id);
            }
        }
        // With η = 0.5 and 120 total slots over 30 users, decay must
        // have rotated everyone in at least once.
        assert_eq!(all_selected.len(), 30, "all users should eventually appear");
        assert_eq!(sel.counters().coverage(), 30);
        assert_eq!(sel.counters().total(), 120);
    }

    #[test]
    fn high_eta_rotates_slower_than_low_eta() {
        let pop = PopulationBuilder::paper_default().num_devices(40).seed(7).build().unwrap();
        let coverage_after = |eta: f64, rounds: usize| {
            let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(eta).unwrap());
            for round in 1..=rounds {
                let c = SelectionContext {
                    round,
                    devices: pop.devices().into(),
                    payload: Bits::from_megabits(40.0),
                    target: 4,
                };
                sel.select(&c).unwrap();
            }
            sel.counters().coverage()
        };
        // Closer to 1 = weaker decay = fewer distinct users early on.
        assert!(coverage_after(0.99, 8) <= coverage_after(0.3, 8));
    }

    #[test]
    fn selection_is_deterministic() {
        let pop = PopulationBuilder::paper_default().num_devices(15).seed(8).build().unwrap();
        let run = || {
            let mut sel = GreedyDecaySelector::default();
            let mut out = Vec::new();
            for round in 1..=10 {
                let c = SelectionContext {
                    round,
                    devices: pop.devices().into(),
                    payload: Bits::from_megabits(40.0),
                    target: 2,
                };
                out.push(sel.select(&c).unwrap());
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_selection_matches_untraced_and_records_alpha() {
        let pop = PopulationBuilder::paper_default().num_devices(10).seed(12).build().unwrap();
        let eta = DecayCoefficient::new(0.5).unwrap();
        let mut plain = GreedyDecaySelector::new(eta);
        let mut traced = GreedyDecaySelector::new(eta);
        let tele = Telemetry::metrics_only();
        for round in 1..=6 {
            let c = SelectionContext {
                round,
                devices: pop.devices().into(),
                payload: mec_sim::units::Bits::from_megabits(40.0),
                target: 3,
            };
            let a = plain.select(&c).unwrap();
            let b = traced.select_traced(&c, &tele).unwrap();
            assert_eq!(a, b, "round {round}: tracing changed the selection");
        }
        let snap = tele.snapshot();
        assert_eq!(snap.counter("selection.rounds"), 6);
        assert_eq!(snap.counter("selection.selected"), 18);
        let alpha = snap.histogram("selection.alpha").unwrap();
        assert_eq!(alpha.count, 18);
        // Round 1 picks all-unseen users: α = η^0 = 1; later rounds see
        // decayed α = 0.5, 0.25, … — never above 1.
        assert_eq!(alpha.max, 1.0);
        assert!(alpha.min < 1.0, "decay never engaged");
        // All selection metrics are deterministic (Sim-class).
        assert_eq!(snap.deterministic().len(), snap.len());
    }

    #[test]
    fn target_larger_than_population_is_capped() {
        let pop = PopulationBuilder::paper_default().num_devices(3).seed(9).build().unwrap();
        let mut sel = GreedyDecaySelector::default();
        let c = ctx(pop.devices(), 10);
        let picked = sel.select(&c).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn empty_population_is_rejected() {
        let mut sel = GreedyDecaySelector::default();
        let c = ctx(&[], 3);
        assert!(sel.select(&c).is_err());
    }

    #[test]
    fn counters_stay_keyed_by_id_when_devices_drop_out() {
        let pop = PopulationBuilder::paper_default().num_devices(10).seed(10).build().unwrap();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(0.5).unwrap());
        // Round 1 over everyone.
        let full = pop.devices().to_vec();
        let picked = sel.select(&ctx(&full, 4)).unwrap();
        let before: Vec<u32> = (0..10).map(|q| sel.counters().get(q)).collect();
        // Rounds over a filtered set (say, the odd-id devices survive).
        let alive: Vec<Device> =
            pop.devices().iter().filter(|d| d.id().0 % 2 == 1).copied().collect();
        let picked2 = sel.select(&ctx(&alive, 3)).unwrap();
        assert!(picked2.iter().all(|id| id.0 % 2 == 1));
        // Counter increments landed on the right ids.
        for (q, &count_before) in before.iter().enumerate() {
            let expected = count_before + u32::from(picked2.contains(&DeviceId(q)));
            assert_eq!(sel.counters().get(q), expected, "device {q}");
        }
        let _ = picked;
    }

    #[test]
    fn partial_sort_matches_full_sort_pick_for_pick() {
        // Pin the select_nth_unstable_by fast path against the
        // original full-sort oracle across many rounds and targets.
        let pop = PopulationBuilder::paper_default().num_devices(50).seed(21).build().unwrap();
        let eta = DecayCoefficient::new(0.5).unwrap();
        let mut sel = GreedyDecaySelector::new(eta);
        let mut oracle = AppearanceCounters::default();
        for round in 1..=60 {
            let target = 1 + round % 13;
            let c = ctx(pop.devices(), target);
            let picked = sel.select(&c).unwrap();

            // Full-sort oracle over the same counter state.
            oracle.grow_to(50);
            let mut scored: Vec<(DeviceId, f64)> = pop
                .devices()
                .iter()
                .map(|d| {
                    let delay = c.total_delay_at_max(d);
                    (d.id(), utility(eta, oracle.get(d.id().0), delay))
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0))
            });
            let expected: Vec<DeviceId> =
                scored.iter().take(target).map(|&(id, _)| id).collect();
            for &id in &expected {
                oracle.increment(id.0);
            }
            assert_eq!(picked, expected, "round {round} target {target}");
        }
    }

    #[test]
    fn snapshot_restore_replays_identical_future_selections() {
        let pop = PopulationBuilder::paper_default().num_devices(25).seed(13).build().unwrap();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(0.5).unwrap());
        for _ in 0..7 {
            sel.select(&ctx(pop.devices(), 4)).unwrap();
        }
        let snap = sel.snapshot();
        assert_eq!(snap.counters_len, 25);
        assert!(snap.rng_state.is_none());
        let mut resumed = GreedyDecaySelector::new(DecayCoefficient::new(0.5).unwrap());
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.counters(), sel.counters());
        for round in 0..10 {
            let a = sel.select(&ctx(pop.devices(), 4)).unwrap();
            let b = resumed.select(&ctx(pop.devices(), 4)).unwrap();
            assert_eq!(a, b, "round {round} diverged after restore");
        }
        // An image with RNG state or out-of-range ids is refused.
        let mut bad = snap.clone();
        bad.rng_state = Some([1, 2, 3, 4]);
        assert!(sel.restore(&bad).is_err());
        let mut oob = snap.clone();
        oob.counters.push((25, 1));
        assert!(sel.restore(&oob).is_err());
    }

    #[test]
    fn delivery_failure_refunds_the_appearance_charge() {
        let pop = PopulationBuilder::paper_default().num_devices(6).seed(11).build().unwrap();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(0.5).unwrap());
        let picked = sel.select(&ctx(pop.devices(), 3)).unwrap();
        let victim = picked[0];
        assert_eq!(sel.counters().get(victim.0), 1);
        sel.on_delivery_failure(&[victim]);
        assert_eq!(sel.counters().get(victim.0), 0, "charge not refunded");
        // The other picks keep their charge.
        for id in &picked[1..] {
            assert_eq!(sel.counters().get(id.0), 1);
        }
        // A refund for an id the selector has never scored is ignored.
        sel.on_delivery_failure(&[DeviceId(999)]);
        // With the refund, the failed user is selected again next
        // round exactly as if it had never appeared.
        let repicked = sel.select(&ctx(pop.devices(), 3)).unwrap();
        assert!(repicked.contains(&victim), "refunded user lost priority");
    }
}
