//! The theoretical foundation of §V-A, executable.
//!
//! Eq. 16–19 show that when every selected user starts from the same
//! global model and takes one full-batch GD step, the FedAvg
//! integration (Eq. 18) equals one centralized GD step on the union of
//! the selected users' data. This module provides
//! [`centralized_equivalent_step`] so tests and examples can verify
//! the identity numerically — it is the argument for *why* greedy
//! selection caps accuracy: data never selected is data never
//! trained on.

use fl_sim::dataset::LabeledSet;
use fl_sim::error::{FlError, Result};
use tinynn::model::Mlp;

/// Performs the centralized mini-batch GD step of Eq. 19: one
/// full-batch step on the concatenation of `shards`, starting from
/// `global`, with learning rate `lr`. Returns the updated parameters.
///
/// # Errors
///
/// Propagates shape errors and rejects an empty shard list.
pub fn centralized_equivalent_step(
    global: &Mlp,
    shards: &[&LabeledSet],
    lr: f32,
) -> Result<Vec<f32>> {
    if shards.is_empty() {
        return Err(FlError::InvalidSelection {
            reason: "centralized step needs at least one shard".into(),
        });
    }
    // Concatenate the shards (D_Γ = ∪ D_q).
    let dim = shards[0].features().cols();
    let total: usize = shards.iter().map(|s| s.len()).sum();
    let mut data = Vec::with_capacity(total * dim);
    let mut labels = Vec::with_capacity(total);
    for shard in shards {
        data.extend_from_slice(shard.features().as_slice());
        labels.extend_from_slice(shard.labels());
    }
    let features =
        tinynn::tensor::Matrix::from_vec(total, dim, data).map_err(FlError::from)?;
    let mut model = global.clone();
    model.train_step(&features, &labels, lr).map_err(FlError::from)?;
    Ok(model.parameters())
}

/// Performs the federated side of Eq. 19: each shard takes one local
/// GD step from `global`, then the results are FedAvg-combined with
/// dataset-size weights (Eq. 18). Returns the aggregated parameters.
///
/// # Errors
///
/// Propagates shape errors and rejects an empty shard list.
pub fn federated_one_step(global: &Mlp, shards: &[&LabeledSet], lr: f32) -> Result<Vec<f32>> {
    if shards.is_empty() {
        return Err(FlError::InvalidSelection {
            reason: "federated step needs at least one shard".into(),
        });
    }
    let base = global.parameters();
    let total: f64 = shards.iter().map(|s| s.len() as f64).sum();
    let mut acc = vec![0.0f64; base.len()];
    for shard in shards {
        let mut local = global.clone();
        local
            .train_step(shard.features(), shard.labels(), lr)
            .map_err(FlError::from)?;
        let w = shard.len() as f64 / total;
        for (a, p) in acc.iter_mut().zip(local.parameters()) {
            *a += f64::from(p) * w;
        }
    }
    Ok(acc.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_sim::dataset::{DatasetConfig, SyntheticTask};
    use fl_sim::partition::Partition;

    /// Eq. 19 numerically: FedAvg of one-step locals == one centralized
    /// step on the pooled data. The `|D_q|` aggregation weights cancel
    /// the `1/|D_q|` gradient normalizers exactly, which is the whole
    /// point of the paper's derivation.
    #[test]
    fn eq19_fedavg_equals_centralized_step_for_equal_shards() {
        let task = SyntheticTask::generate(DatasetConfig {
            num_classes: 3,
            feature_dim: 8,
            train_samples: 120,
            test_samples: 30,
            seed: 11,
            ..DatasetConfig::default()
        })
        .unwrap();
        let partition = Partition::iid(120, 4, 3).unwrap();
        let shards: Vec<LabeledSet> = partition
            .assignments()
            .iter()
            .map(|idx| task.train().subset(idx).unwrap())
            .collect();
        let refs: Vec<&LabeledSet> = shards.iter().collect();
        let global = Mlp::new(&[8, 6, 3], 9).unwrap();
        let fed = federated_one_step(&global, &refs, 0.2).unwrap();
        let cen = centralized_equivalent_step(&global, &refs, 0.2).unwrap();
        for (i, (f, c)) in fed.iter().zip(&cen).enumerate() {
            assert!(
                (f - c).abs() < 1e-5,
                "parameter {i} diverges: federated {f} vs centralized {c}"
            );
        }
    }

    /// The identity survives unequal shard sizes: the dataset-size
    /// weights in Eq. 18 cancel the per-user mean normalizers in
    /// Eq. 17 regardless of `|D_q|`.
    #[test]
    fn eq19_holds_for_unequal_shards_too() {
        let task = SyntheticTask::generate(DatasetConfig {
            num_classes: 3,
            feature_dim: 8,
            train_samples: 100,
            test_samples: 30,
            seed: 12,
            ..DatasetConfig::default()
        })
        .unwrap();
        let a = task.train().subset(&(0..30).collect::<Vec<_>>()).unwrap();
        let b = task.train().subset(&(30..100).collect::<Vec<_>>()).unwrap();
        let global = Mlp::new(&[8, 6, 3], 13).unwrap();
        let fed = federated_one_step(&global, &[&a, &b], 0.2).unwrap();
        let cen = centralized_equivalent_step(&global, &[&a, &b], 0.2).unwrap();
        for (i, (f, c)) in fed.iter().zip(&cen).enumerate() {
            assert!(
                (f - c).abs() < 1e-5,
                "parameter {i} diverges: federated {f} vs centralized {c}"
            );
        }
    }

    #[test]
    fn empty_shard_lists_are_rejected() {
        let global = Mlp::new(&[4, 3], 0).unwrap();
        assert!(federated_one_step(&global, &[], 0.1).is_err());
        assert!(centralized_equivalent_step(&global, &[], 0.1).is_err());
    }
}
