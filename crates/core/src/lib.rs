//! # helcfl — the paper's primary contribution
//!
//! A faithful implementation of *HELCFL: High-Efficiency and Low-Cost
//! Federated Learning in Heterogeneous Mobile-Edge Computing* (Cui,
//! Cao, Zhou, Wei — DATE 2022):
//!
//! - [`utility`] — the utility function of Eq. 20 with its decay
//!   coefficient and appearance counters,
//! - [`selection`] — Algorithm 2, the utility-driven greedy-decay user
//!   selection,
//! - [`indexed`] — Algorithm 2 at fleet scale: the bucketed-utility
//!   index with pick-for-pick-identical selections at O(N log B) per
//!   round,
//! - [`dvfs`] — Algorithm 3, the DVFS slack-time operating-frequency
//!   determination,
//! - [`framework`] — Algorithm 1, the assembled two-phase framework,
//! - [`theory`] — the §V-A FedAvg/centralized-GD equivalence (Eq. 19)
//!   as executable code.
//!
//! The MEC system models live in [`mec_sim`]; the FedAvg runtime in
//! [`fl_sim`]; comparison baselines in the `fl-baselines` crate.
//!
//! ## Quick tour
//!
//! ```
//! use fl_sim::dataset::{DatasetConfig, SyntheticTask};
//! use fl_sim::partition::Partition;
//! use fl_sim::runner::{FederatedSetup, TrainingConfig};
//! use helcfl::framework::Helcfl;
//! use mec_sim::population::PopulationBuilder;
//!
//! let config = TrainingConfig {
//!     max_rounds: 5,
//!     fraction: 0.2,
//!     model_dims: vec![8, 8, 3],
//!     ..TrainingConfig::default()
//! };
//! let task = SyntheticTask::generate(DatasetConfig {
//!     num_classes: 3,
//!     feature_dim: 8,
//!     train_samples: 120,
//!     test_samples: 30,
//!     ..DatasetConfig::default()
//! })?;
//! let population = PopulationBuilder::paper_default().num_devices(10).build()?;
//! let partition = Partition::iid(120, 10, 0)?;
//! let mut setup = FederatedSetup::new(population, &task, &partition, &config)?;
//!
//! let history = Helcfl::default().run(&mut setup, &config)?;
//! println!("best accuracy: {:.3}", history.best_accuracy());
//! println!("training energy: {}", history.total_energy());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod framework;
pub mod indexed;
pub mod selection;
pub mod theory;
pub mod utility;

pub use dvfs::SlackFrequencyPolicy;
pub use framework::Helcfl;
pub use indexed::IndexedDecaySelector;
pub use selection::GreedyDecaySelector;
pub use utility::DecayCoefficient;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Helcfl>();
        assert_send_sync::<crate::GreedyDecaySelector>();
        assert_send_sync::<crate::IndexedDecaySelector>();
        assert_send_sync::<crate::SlackFrequencyPolicy>();
    }
}
