//! The HELCFL utility function (paper Eq. 20).
//!
//! `u_q(α_q, T_q^cal, T_q^com) = η^{α_q} · 1 / (T_q^cal + T_q^com)`
//!
//! The decay coefficient `η ∈ (0, 1)` discounts a user every time it
//! appears in a round (appearance counter `α_q`), so fast users are
//! preferred early but cannot monopolize selection — the mechanism
//! §V-A derives from the FedAvg equivalence (Eq. 19): accuracy needs
//! the *data* of slow users, not just fast updates.


use mec_sim::units::Seconds;

use fl_sim::error::{FlError, Result};

/// The decay coefficient `η` with its `(0, 1)` validity window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayCoefficient(f64);

impl DecayCoefficient {
    /// Creates a coefficient, validating `0 < η < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] outside the open interval.
    pub fn new(eta: f64) -> Result<Self> {
        if !(eta > 0.0 && eta < 1.0) {
            return Err(FlError::InvalidConfig {
                field: "eta",
                reason: format!("decay coefficient must satisfy 0 < η < 1, got {eta}"),
            });
        }
        Ok(Self(eta))
    }

    /// The raw coefficient value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for DecayCoefficient {
    /// The reproduction's default `η = 0.5` (the paper does not state
    /// its value; the `ablation_eta` bench sweeps it).
    fn default() -> Self {
        Self(0.5)
    }
}

/// Evaluates Eq. 20 for one user.
///
/// `total_delay` is `T_q^cal + T_q^com` at the user's maximum
/// frequency (Alg. 2 lines 2–4); `appearances` is `α_q`.
///
/// # Examples
///
/// ```
/// use helcfl::utility::{utility, DecayCoefficient};
/// use mec_sim::units::Seconds;
///
/// let eta = DecayCoefficient::new(0.5)?;
/// let fresh = utility(eta, 0, Seconds::new(10.0));
/// let tired = utility(eta, 2, Seconds::new(10.0));
/// assert!((fresh - 0.1).abs() < 1e-12);
/// assert!((tired - 0.025).abs() < 1e-12);
/// # Ok::<(), fl_sim::FlError>(())
/// ```
pub fn utility(eta: DecayCoefficient, appearances: u32, total_delay: Seconds) -> f64 {
    debug_assert!(total_delay.get() > 0.0, "delays must be positive");
    eta.get().powi(appearances as i32) / total_delay.get()
}

/// Counters are stored in fixed 1024-entry pages, allocated lazily.
const PAGE: usize = 1024;

/// Per-user appearance counters `α_q` (Alg. 2 line 5 initializes them
/// to zero; line 18 increments on selection).
///
/// Storage is a two-level page table: a dense `Vec` of page slots,
/// each materialized to 4 KiB only when a counter inside it is first
/// incremented. `grow_to(max_id + 1)` therefore costs O(max_id / 1024)
/// pointer-sized slots, not O(max_id) counters — a surviving high-id
/// device after mass dropout no longer forces a multi-megabyte zeroed
/// allocation. Logical semantics (zero-initialized, `len`-bounded,
/// panics out of range) are identical to the former flat `Vec<u32>`.
#[derive(Debug, Clone, Eq, Default)]
pub struct AppearanceCounters {
    pages: Vec<Option<Box<[u32; PAGE]>>>,
    len: usize,
}

/// Logical equality: same tracked length, same per-user counts. An
/// unallocated page equals an allocated all-zero page.
impl PartialEq for AppearanceCounters {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let zeros = [0u32; PAGE];
        let page_of = |c: &Self, p: usize| -> [u32; PAGE] {
            c.pages.get(p).and_then(|s| s.as_deref()).copied().unwrap_or(zeros)
        };
        (0..self.len.div_ceil(PAGE)).all(|p| page_of(self, p) == page_of(other, p))
    }
}

impl AppearanceCounters {
    /// Creates zeroed counters for `num_users` users.
    pub fn new(num_users: usize) -> Self {
        Self { pages: vec![None; num_users.div_ceil(PAGE)], len: num_users }
    }

    /// Number of tracked users.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no users are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `α_q` of user `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn get(&self, q: usize) -> u32 {
        assert!(q < self.len, "user {q} out of range for {} counters", self.len);
        match &self.pages[q / PAGE] {
            Some(page) => page[q % PAGE],
            None => 0,
        }
    }

    /// Increments `α_q` (the "utility decay" of Alg. 2 line 18).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn increment(&mut self, q: usize) {
        assert!(q < self.len, "user {q} out of range for {} counters", self.len);
        let page = self.pages[q / PAGE].get_or_insert_with(|| Box::new([0u32; PAGE]));
        page[q % PAGE] += 1;
    }

    /// Rolls back one appearance of `α_q` — the refund the degradation
    /// policy issues when a selected user failed to deliver its update
    /// (`charge_failed_selections == false`). Saturates at zero, so a
    /// refund for a user that was never charged is a no-op (and never
    /// allocates a page).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn decrement(&mut self, q: usize) {
        assert!(q < self.len, "user {q} out of range for {} counters", self.len);
        if let Some(page) = &mut self.pages[q / PAGE] {
            page[q % PAGE] = page[q % PAGE].saturating_sub(1);
        }
    }

    /// Extends the tracked range with (lazy) zeros so ids `< len` are
    /// valid (no-op when already large enough). Lets selectors stay
    /// keyed by [`DeviceId`](mec_sim::device::DeviceId) as availability
    /// shifts.
    pub fn grow_to(&mut self, len: usize) {
        if self.len < len {
            self.len = len;
            let pages = len.div_ceil(PAGE);
            if self.pages.len() < pages {
                self.pages.resize_with(pages, || None);
            }
        }
    }

    /// Sets `α_q` to an exact value — the checkpoint-restore path.
    /// Setting zero never materializes a page.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn set(&mut self, q: usize, count: u32) {
        assert!(q < self.len, "user {q} out of range for {} counters", self.len);
        if count == 0 {
            if let Some(page) = &mut self.pages[q / PAGE] {
                page[q % PAGE] = 0;
            }
            return;
        }
        let page = self.pages[q / PAGE].get_or_insert_with(|| Box::new([0u32; PAGE]));
        page[q % PAGE] = count;
    }

    /// The nonzero counters as ascending `(user, count)` pairs — the
    /// sparse form a checkpoint serializes (zero counters dominate in
    /// large fleets and carry no information).
    pub fn to_sparse(&self) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for (p, slot) in self.pages.iter().enumerate() {
            if let Some(page) = slot {
                for (i, &c) in page.iter().enumerate() {
                    let q = p * PAGE + i;
                    if c > 0 && q < self.len {
                        out.push((q, c));
                    }
                }
            }
        }
        out
    }

    /// Rebuilds counters of logical length `len` from a sparse
    /// `(user, count)` list, the inverse of
    /// [`AppearanceCounters::to_sparse`].
    ///
    /// # Panics
    ///
    /// Panics if any user id is `>= len`.
    pub fn from_sparse(len: usize, counts: &[(usize, u32)]) -> Self {
        let mut c = Self::new(len);
        for &(q, count) in counts {
            c.set(q, count);
        }
        c
    }

    /// Total appearances across users (= rounds × selection size).
    pub fn total(&self) -> u64 {
        self.pages
            .iter()
            .flatten()
            .flat_map(|page| page.iter())
            .map(|&c| u64::from(c))
            .sum()
    }

    /// Number of users that have appeared at least once — the coverage
    /// statistic the η-ablation reports.
    pub fn coverage(&self) -> usize {
        self.pages
            .iter()
            .flatten()
            .flat_map(|page| page.iter())
            .filter(|&&c| c > 0)
            .count()
    }

    /// Resident bytes: the page-slot table plus every materialized
    /// page (reported per-device by `bench_population`).
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + self.pages.capacity() * core::mem::size_of::<Option<Box<[u32; PAGE]>>>()
            + self.pages.iter().flatten().count() * core::mem::size_of::<[u32; PAGE]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_coefficient_validates_open_interval() {
        assert!(DecayCoefficient::new(0.0).is_err());
        assert!(DecayCoefficient::new(1.0).is_err());
        assert!(DecayCoefficient::new(-0.5).is_err());
        assert!(DecayCoefficient::new(f64::NAN).is_err());
        assert!(DecayCoefficient::new(0.5).is_ok());
        assert_eq!(DecayCoefficient::default().get(), 0.5);
    }

    #[test]
    fn utility_prefers_fast_users_at_equal_appearances() {
        let eta = DecayCoefficient::default();
        let fast = utility(eta, 0, Seconds::new(5.0));
        let slow = utility(eta, 0, Seconds::new(20.0));
        assert!(fast > slow);
        assert!((fast / slow - 4.0).abs() < 1e-12);
    }

    #[test]
    fn utility_decays_geometrically_with_appearances() {
        let eta = DecayCoefficient::new(0.7).unwrap();
        let t = Seconds::new(10.0);
        for a in 0..5 {
            let ratio = utility(eta, a + 1, t) / utility(eta, a, t);
            assert!((ratio - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn decayed_fast_user_loses_to_fresh_slow_user() {
        // T_fast = 5 s, T_slow = 20 s, η = 0.5: after 2 appearances
        // the fast user's utility (0.25/5 = 0.05) matches the slow
        // user's (1/20 = 0.05); after 3 it is strictly below.
        let eta = DecayCoefficient::new(0.5).unwrap();
        assert!(utility(eta, 3, Seconds::new(5.0)) < utility(eta, 0, Seconds::new(20.0)));
    }

    #[test]
    fn grow_to_extends_with_zeros_and_never_shrinks() {
        let mut c = AppearanceCounters::new(2);
        c.increment(1);
        c.grow_to(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(4), 0);
        c.grow_to(3);
        assert_eq!(c.len(), 5, "grow_to must never shrink");
    }

    #[test]
    fn counters_track_increments_and_coverage() {
        let mut c = AppearanceCounters::new(4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.coverage(), 0);
        c.increment(1);
        c.increment(1);
        c.increment(3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.coverage(), 2);
    }

    #[test]
    fn sparse_high_ids_stay_cheap() {
        // A surviving high-id device after mass dropout: growth is
        // page-table-only; the single touched page is the only 4 KiB
        // block materialized.
        let mut c = AppearanceCounters::default();
        c.grow_to(10_000_000);
        assert_eq!(c.len(), 10_000_000);
        c.increment(9_999_999);
        assert_eq!(c.get(9_999_999), 1);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.total(), 1);
        assert_eq!(c.coverage(), 1);
        // ~10M/1024 page slots (16 B each) + one 4 KiB page — far
        // below the 40 MB a flat Vec<u32> would have allocated.
        assert!(c.memory_bytes() < 1_000_000, "resident {}", c.memory_bytes());
    }

    #[test]
    fn equality_ignores_page_materialization() {
        let mut a = AppearanceCounters::new(2 * 1024);
        let mut b = AppearanceCounters::new(2 * 1024);
        assert_eq!(a, b);
        // Materialize a page in `a` without leaving a visible count.
        a.increment(1500);
        a.decrement(1500);
        assert_eq!(a, b);
        b.increment(1500);
        assert_ne!(a, b);
        a.increment(1500);
        assert_eq!(a, b);
        // Different logical lengths are different counters.
        a.grow_to(3 * 1024);
        assert_ne!(a, b);
    }

    #[test]
    fn sparse_round_trip_preserves_logical_state() {
        let mut c = AppearanceCounters::new(3000);
        c.increment(0);
        c.increment(0);
        c.increment(1500);
        c.increment(2999);
        let sparse = c.to_sparse();
        assert_eq!(sparse, vec![(0, 2), (1500, 1), (2999, 1)]);
        let back = AppearanceCounters::from_sparse(c.len(), &sparse);
        assert_eq!(back, c);
        assert_eq!(back.coverage(), 3);
        // Empty counters round-trip to empty.
        let empty = AppearanceCounters::new(10);
        assert!(empty.to_sparse().is_empty());
        assert_eq!(AppearanceCounters::from_sparse(10, &[]), empty);
    }

    #[test]
    fn set_overwrites_without_accumulating() {
        let mut c = AppearanceCounters::new(8);
        c.set(3, 7);
        assert_eq!(c.get(3), 7);
        c.set(3, 2);
        assert_eq!(c.get(3), 2);
        // Setting zero on an untouched page allocates nothing.
        let mut sparse = AppearanceCounters::new(5000);
        sparse.set(4000, 0);
        assert_eq!(sparse.get(4000), 0);
        assert_eq!(sparse.coverage(), 0);
    }

    #[test]
    fn out_of_range_access_panics() {
        let c = AppearanceCounters::new(10);
        let err = std::panic::catch_unwind(|| c.get(10));
        assert!(err.is_err());
    }

    #[test]
    fn decrement_refunds_one_appearance_and_saturates_at_zero() {
        let mut c = AppearanceCounters::new(2);
        c.increment(0);
        c.increment(0);
        c.decrement(0);
        assert_eq!(c.get(0), 1);
        // Refunding a never-charged user is a no-op, not an underflow.
        c.decrement(1);
        c.decrement(1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.total(), 1);
    }
}
