//! Algorithm 1 — the HELCFL two-phase framework.
//!
//! The initialization phase (resource-information collection) is
//! realized by [`FederatedSetup`]: building it installs every user's
//! dataset size, CPU range, and uplink rate — exactly the information
//! Alg. 1 lines 1–2 gather. The iterative phase wires Alg. 2
//! (selection) and Alg. 3 (frequency determination) into the generic
//! synchronous loop of [`fl_sim::runner::run_federated`].

use fl_sim::error::Result;
use fl_sim::frequency::MaxFrequency;
use fl_sim::history::TrainingHistory;
use fl_sim::runner::{run_federated_traced, FederatedSetup, TrainingConfig};
use helcfl_telemetry::Telemetry;

use crate::dvfs::SlackFrequencyPolicy;
use crate::selection::GreedyDecaySelector;
use crate::utility::DecayCoefficient;

/// The assembled HELCFL framework.
///
/// # Examples
///
/// ```
/// use fl_sim::dataset::{DatasetConfig, SyntheticTask};
/// use fl_sim::partition::Partition;
/// use fl_sim::runner::{FederatedSetup, TrainingConfig};
/// use helcfl::framework::Helcfl;
/// use mec_sim::population::PopulationBuilder;
///
/// let config = TrainingConfig {
///     max_rounds: 3,
///     fraction: 0.2,
///     model_dims: vec![8, 8, 3],
///     ..TrainingConfig::default()
/// };
/// let task = SyntheticTask::generate(DatasetConfig {
///     num_classes: 3,
///     feature_dim: 8,
///     train_samples: 120,
///     test_samples: 30,
///     ..DatasetConfig::default()
/// })?;
/// let population = PopulationBuilder::paper_default().num_devices(10).build()?;
/// let partition = Partition::iid(120, 10, 0)?;
/// let mut setup = FederatedSetup::new(population, &task, &partition, &config)?;
///
/// let history = Helcfl::default().run(&mut setup, &config)?;
/// assert_eq!(history.len(), 3);
/// assert_eq!(history.scheme(), "helcfl");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Helcfl {
    eta: DecayCoefficient,
    dvfs: bool,
}

impl Default for Helcfl {
    /// HELCFL with the default decay coefficient and DVFS enabled.
    fn default() -> Self {
        Self { eta: DecayCoefficient::default(), dvfs: true }
    }
}

impl Helcfl {
    /// Creates the framework with an explicit decay coefficient.
    pub fn new(eta: DecayCoefficient) -> Self {
        Self { eta, dvfs: true }
    }

    /// Disables the Alg.-3 frequency determination, falling back to
    /// `f_max` everywhere — the "traditional FL" arm of Fig. 3.
    pub fn without_dvfs(mut self) -> Self {
        self.dvfs = false;
        self
    }

    /// Whether Alg. 3 is active.
    #[inline]
    pub fn dvfs_enabled(&self) -> bool {
        self.dvfs
    }

    /// The configured decay coefficient.
    #[inline]
    pub fn eta(&self) -> DecayCoefficient {
        self.eta
    }

    /// Runs the full two-phase workflow (Alg. 1) on a prepared setup.
    ///
    /// # Errors
    ///
    /// Propagates configuration, selection, simulation, and training
    /// errors from the underlying loop.
    pub fn run(
        &self,
        setup: &mut FederatedSetup,
        config: &TrainingConfig,
    ) -> Result<TrainingHistory> {
        self.run_traced(setup, config, &Telemetry::disabled())
    }

    /// [`Helcfl::run`] with per-round spans and Alg.-2/Alg.-3 metrics
    /// recorded into `tele`. With [`Telemetry::disabled`] this is
    /// exactly `run` (zero overhead); the produced [`TrainingHistory`]
    /// is bit-identical either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Helcfl::run`].
    pub fn run_traced(
        &self,
        setup: &mut FederatedSetup,
        config: &TrainingConfig,
        tele: &Telemetry,
    ) -> Result<TrainingHistory> {
        let mut selector = GreedyDecaySelector::new(self.eta);
        if self.dvfs {
            run_federated_traced(setup, config, &mut selector, &SlackFrequencyPolicy, tele)
        } else {
            run_federated_traced(setup, config, &mut selector, &MaxFrequency, tele)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_sim::dataset::{DatasetConfig, SyntheticTask};
    use fl_sim::partition::Partition;
    use mec_sim::population::PopulationBuilder;

    fn world() -> (FederatedSetup, TrainingConfig) {
        let config = TrainingConfig {
            max_rounds: 12,
            fraction: 0.25,
            model_dims: vec![8, 8, 3],
            learning_rate: 0.5,
            seed: 4,
            ..TrainingConfig::default()
        };
        let task = SyntheticTask::generate(DatasetConfig {
            num_classes: 3,
            feature_dim: 8,
            train_samples: 240,
            test_samples: 60,
            seed: 5,
            ..DatasetConfig::default()
        })
        .unwrap();
        let pop = PopulationBuilder::paper_default().num_devices(12).seed(6).build().unwrap();
        let partition = Partition::iid(240, 12, 7).unwrap();
        let setup = FederatedSetup::new(pop, &task, &partition, &config).unwrap();
        (setup, config)
    }

    #[test]
    fn helcfl_runs_and_labels_its_history() {
        let (mut setup, config) = world();
        let history = Helcfl::default().run(&mut setup, &config).unwrap();
        assert_eq!(history.len(), 12);
        assert_eq!(history.scheme(), "helcfl");
        assert!(history.best_accuracy() > 0.0);
    }

    #[test]
    fn dvfs_cuts_energy_at_identical_accuracy_and_delay() {
        let (mut setup_a, config) = world();
        let with_dvfs = Helcfl::default().run(&mut setup_a, &config).unwrap();
        let (mut setup_b, config_b) = world();
        let without = Helcfl::default().without_dvfs().run(&mut setup_b, &config_b).unwrap();

        // Selection is deterministic and identical → same users, same
        // learning trajectory, same per-round makespans.
        for (a, b) in with_dvfs.records().iter().zip(without.records()) {
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.test_accuracy, b.test_accuracy);
            assert!(
                (a.round_time.get() - b.round_time.get()).abs() < 1e-6,
                "round {}: DVFS changed makespan {} vs {}",
                a.round,
                a.round_time,
                b.round_time
            );
        }
        assert!(
            with_dvfs.total_energy() < without.total_energy(),
            "DVFS should save energy: {} vs {}",
            with_dvfs.total_energy(),
            without.total_energy()
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_fills_the_registry() {
        let (mut setup_a, config) = world();
        let plain = Helcfl::default().run(&mut setup_a, &config).unwrap();
        let (mut setup_b, config_b) = world();
        let tele = Telemetry::metrics_only();
        let traced = Helcfl::default().run_traced(&mut setup_b, &config_b, &tele).unwrap();
        assert_eq!(plain, traced, "telemetry changed the training history");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("round.completed"), 12);
        assert_eq!(snap.counter("selection.rounds"), 12);
        assert!(snap.histogram("dvfs.downscale").is_some());
        assert!(snap.histogram("round.makespan_s").is_some());
    }

    #[test]
    fn accessors_reflect_construction() {
        let f = Helcfl::new(DecayCoefficient::new(0.7).unwrap());
        assert!(f.dvfs_enabled());
        assert_eq!(f.eta().get(), 0.7);
        let f = f.without_dvfs();
        assert!(!f.dvfs_enabled());
    }
}
