//! Property-style tests for the HELCFL algorithms.
//!
//! Formerly backed by the `proptest` crate; rewritten as deterministic
//! seeded case loops over [`detrand::Rng`] so `cargo test` runs fully
//! offline. The invariants are unchanged; each test draws a few
//! hundred cases from a fixed seed, and the case index appears in
//! every assertion message for reproducibility.

use detrand::Rng;
use fl_sim::frequency::FrequencyPolicy;
use fl_sim::selection::{ClientSelector, SelectionContext};
use helcfl::dvfs::SlackFrequencyPolicy;
use helcfl::selection::GreedyDecaySelector;
use helcfl::utility::{utility, DecayCoefficient};
use mec_sim::comm::Uplink;
use mec_sim::cpu::DvfsCpu;
use mec_sim::device::{Device, DeviceId};
use mec_sim::timeline::RoundTimeline;
use mec_sim::units::{Bits, BitsPerSecond, Hertz, Seconds, Watts};

const CASES: usize = 200;

fn gen_devices(rng: &mut Rng, min: usize, max: usize) -> Vec<Device> {
    let n = rng.range_usize(min, max);
    (0..n)
        .map(|i| {
            let fmax = rng.uniform(0.3100001, 2.0);
            let samples = rng.range_usize(50, 1500);
            let mbps = rng.uniform(0.5, 15.0);
            let cpu =
                DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax)).unwrap();
            let uplink =
                Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
            Device::new(DeviceId(i), cpu, 1.0e7, samples, uplink).unwrap()
        })
        .collect()
}

/// **Makespan preservation (Alg. 3).** For any heterogeneous
/// selection, the DVFS schedule never extends the round beyond the
/// all-at-f_max schedule, and never costs more energy.
#[test]
fn dvfs_never_extends_round_and_never_costs_more() {
    let mut rng = Rng::seed_from_u64(0xc04e_0001);
    for case in 0..CASES {
        let devices = gen_devices(&mut rng, 1, 10);
        let payload = Bits::from_megabits(rng.uniform(1.0, 80.0));
        let baseline = RoundTimeline::simulate_at_max(&devices, payload).unwrap();
        let freqs = SlackFrequencyPolicy.frequencies(&devices, payload).unwrap();
        let tuned = RoundTimeline::simulate(&devices, &freqs, payload).unwrap();
        assert!(
            tuned.makespan() <= baseline.makespan() + Seconds::new(1e-6),
            "case {case}: DVFS extended the round: {} vs {}",
            tuned.makespan(),
            baseline.makespan()
        );
        assert!(
            tuned.total_energy() <= baseline.total_energy() * (1.0 + 1e-9),
            "case {case}: DVFS increased energy: {} vs {}",
            tuned.total_energy(),
            baseline.total_energy()
        );
    }
}

/// Every DVFS-assigned frequency is within its device's supported
/// range.
#[test]
fn dvfs_frequencies_are_always_supported() {
    let mut rng = Rng::seed_from_u64(0xc04e_0002);
    for case in 0..CASES {
        let devices = gen_devices(&mut rng, 1, 10);
        let payload = Bits::from_megabits(rng.uniform(1.0, 80.0));
        let freqs = SlackFrequencyPolicy.frequencies(&devices, payload).unwrap();
        assert_eq!(freqs.len(), devices.len(), "case {case}");
        for (d, f) in devices.iter().zip(&freqs) {
            assert!(d.cpu().range().contains(*f), "case {case}: {f} unsupported");
        }
    }
}

/// The selector always returns exactly `min(target, Q)` distinct
/// known users, every round.
#[test]
fn selector_output_is_always_valid() {
    let mut rng = Rng::seed_from_u64(0xc04e_0003);
    for case in 0..128 {
        let devices = gen_devices(&mut rng, 1, 20);
        let target = rng.range_usize(1, 8);
        let rounds = rng.range_usize(1, 20);
        let eta = rng.uniform(0.05, 0.95);
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(eta).unwrap());
        for round in 1..=rounds {
            let ctx = SelectionContext {
                round,
                devices: devices.as_slice().into(),
                payload: Bits::from_megabits(40.0),
                target,
            };
            let picked = sel.select(&ctx).unwrap();
            assert_eq!(picked.len(), target.min(devices.len()), "case {case}");
            let set: std::collections::BTreeSet<_> = picked.iter().collect();
            assert_eq!(set.len(), picked.len(), "case {case}: duplicates in selection");
        }
        // Total appearances = rounds × selection size.
        assert_eq!(
            sel.counters().total(),
            (rounds * target.min(devices.len())) as u64,
            "case {case}"
        );
    }
}

/// Given enough rounds, every user is eventually selected
/// (the greedy-decay guarantee that fixes FedCS).
#[test]
fn greedy_decay_eventually_covers_everyone() {
    let mut rng = Rng::seed_from_u64(0xc04e_0004);
    for case in 0..64 {
        let devices = gen_devices(&mut rng, 2, 15);
        let eta = rng.uniform(0.2, 0.8);
        let q = devices.len();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(eta).unwrap());
        // Worst case needs ~log(T_max/T_min)/log(1/η) extra picks per
        // user; 60·Q rounds of 1 pick is far beyond that for η ≤ 0.8.
        for round in 1..=(60 * q) {
            let ctx = SelectionContext {
                round,
                devices: devices.as_slice().into(),
                payload: Bits::from_megabits(40.0),
                target: 1,
            };
            sel.select(&ctx).unwrap();
            if sel.counters().coverage() == q {
                break;
            }
        }
        assert_eq!(sel.counters().coverage(), q, "case {case}: some users never selected");
    }
}

/// Utility is strictly decreasing in appearances and in delay.
#[test]
fn utility_is_monotone() {
    let mut rng = Rng::seed_from_u64(0xc04e_0005);
    for case in 0..CASES {
        let eta = DecayCoefficient::new(rng.uniform(0.05, 0.95)).unwrap();
        let a = rng.below(30) as u32;
        let t = rng.uniform(0.1, 1000.0);
        assert!(
            utility(eta, a + 1, Seconds::new(t)) < utility(eta, a, Seconds::new(t)),
            "case {case}: utility not decreasing in appearances"
        );
        assert!(
            utility(eta, a, Seconds::new(t * 1.5)) < utility(eta, a, Seconds::new(t)),
            "case {case}: utility not decreasing in delay"
        );
    }
}
