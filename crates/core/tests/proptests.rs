//! Property-based tests for the HELCFL algorithms.

use fl_sim::frequency::FrequencyPolicy;
use fl_sim::selection::{ClientSelector, SelectionContext};
use helcfl::dvfs::SlackFrequencyPolicy;
use helcfl::selection::GreedyDecaySelector;
use helcfl::utility::{utility, DecayCoefficient};
use mec_sim::comm::Uplink;
use mec_sim::cpu::DvfsCpu;
use mec_sim::device::{Device, DeviceId};
use mec_sim::timeline::RoundTimeline;
use mec_sim::units::{Bits, BitsPerSecond, Hertz, Seconds, Watts};
use proptest::prelude::*;

fn device_strategy() -> impl Strategy<Value = (f64, usize, f64)> {
    (0.31f64..=2.0, 50usize..1500, 0.5f64..15.0)
}

fn build_devices(specs: Vec<(f64, usize, f64)>) -> Vec<Device> {
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (fmax, samples, mbps))| {
            let cpu =
                DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax)).unwrap();
            let uplink =
                Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
            Device::new(DeviceId(i), cpu, 1.0e7, samples, uplink).unwrap()
        })
        .collect()
}

proptest! {
    /// **Makespan preservation (Alg. 3).** For any heterogeneous
    /// selection, the DVFS schedule never extends the round beyond the
    /// all-at-f_max schedule, and never costs more energy.
    #[test]
    fn dvfs_never_extends_round_and_never_costs_more(
        specs in prop::collection::vec(device_strategy(), 1..10),
        payload_mbit in 1.0f64..80.0,
    ) {
        let devices = build_devices(specs);
        let payload = Bits::from_megabits(payload_mbit);
        let baseline = RoundTimeline::simulate_at_max(&devices, payload).unwrap();
        let freqs = SlackFrequencyPolicy.frequencies(&devices, payload).unwrap();
        let tuned = RoundTimeline::simulate(&devices, &freqs, payload).unwrap();
        prop_assert!(
            tuned.makespan() <= baseline.makespan() + Seconds::new(1e-6),
            "DVFS extended the round: {} vs {}",
            tuned.makespan(),
            baseline.makespan()
        );
        prop_assert!(
            tuned.total_energy() <= baseline.total_energy() * (1.0 + 1e-9),
            "DVFS increased energy: {} vs {}",
            tuned.total_energy(),
            baseline.total_energy()
        );
    }

    /// Every DVFS-assigned frequency is within its device's supported
    /// range.
    #[test]
    fn dvfs_frequencies_are_always_supported(
        specs in prop::collection::vec(device_strategy(), 1..10),
        payload_mbit in 1.0f64..80.0,
    ) {
        let devices = build_devices(specs);
        let freqs = SlackFrequencyPolicy
            .frequencies(&devices, Bits::from_megabits(payload_mbit))
            .unwrap();
        prop_assert_eq!(freqs.len(), devices.len());
        for (d, f) in devices.iter().zip(&freqs) {
            prop_assert!(d.cpu().range().contains(*f));
        }
    }

    /// The selector always returns exactly `min(target, Q)` distinct
    /// known users, every round.
    #[test]
    fn selector_output_is_always_valid(
        specs in prop::collection::vec(device_strategy(), 1..20),
        target in 1usize..8,
        rounds in 1usize..20,
        eta in 0.05f64..0.95,
    ) {
        let devices = build_devices(specs);
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(eta).unwrap());
        for round in 1..=rounds {
            let ctx = SelectionContext {
                round,
                devices: &devices,
                payload: Bits::from_megabits(40.0),
                target,
            };
            let picked = sel.select(&ctx).unwrap();
            prop_assert_eq!(picked.len(), target.min(devices.len()));
            let set: std::collections::BTreeSet<_> = picked.iter().collect();
            prop_assert_eq!(set.len(), picked.len(), "duplicates in selection");
        }
        // Total appearances = rounds × selection size.
        prop_assert_eq!(
            sel.counters().total(),
            (rounds * target.min(devices.len())) as u64
        );
    }

    /// Given enough rounds, every user is eventually selected
    /// (the greedy-decay guarantee that fixes FedCS).
    #[test]
    fn greedy_decay_eventually_covers_everyone(
        specs in prop::collection::vec(device_strategy(), 2..15),
        eta in 0.2f64..0.8,
    ) {
        let devices = build_devices(specs);
        let q = devices.len();
        let mut sel = GreedyDecaySelector::new(DecayCoefficient::new(eta).unwrap());
        // Worst case needs ~log(T_max/T_min)/log(1/η) extra picks per
        // user; 60·Q rounds of 1 pick is far beyond that for η ≤ 0.8.
        for round in 1..=(60 * q) {
            let ctx = SelectionContext {
                round,
                devices: &devices,
                payload: Bits::from_megabits(40.0),
                target: 1,
            };
            sel.select(&ctx).unwrap();
            if sel.counters().coverage() == q {
                break;
            }
        }
        prop_assert_eq!(sel.counters().coverage(), q, "some users never selected");
    }

    /// Utility is strictly decreasing in appearances and in delay.
    #[test]
    fn utility_is_monotone(
        eta in 0.05f64..0.95,
        a in 0u32..30,
        t in 0.1f64..1000.0,
    ) {
        let eta = DecayCoefficient::new(eta).unwrap();
        prop_assert!(utility(eta, a + 1, Seconds::new(t)) < utility(eta, a, Seconds::new(t)));
        prop_assert!(
            utility(eta, a, Seconds::new(t * 1.5)) < utility(eta, a, Seconds::new(t))
        );
    }
}
