//! Pick-for-pick equivalence of [`IndexedDecaySelector`] against the
//! reference [`GreedyDecaySelector`] under adversarial conditions:
//! random heterogeneous populations, shifting targets, mid-run
//! dropouts *and* rejoins (alive-mask churn), delivery-failure
//! refunds, and decay coefficients extreme enough to underflow
//! `η^{A_q}` to exactly zero.
//!
//! Deterministic seeded case loops in the house property-test style —
//! each assertion message carries the case index for reproducibility.

use detrand::Rng;
use fl_sim::selection::{ClientSelector, SelectionContext, validate_selection};
use helcfl::indexed::IndexedDecaySelector;
use helcfl::selection::GreedyDecaySelector;
use helcfl::utility::DecayCoefficient;
use mec_sim::comm::Uplink;
use mec_sim::cpu::DvfsCpu;
use mec_sim::device::{Device, DeviceId};
use mec_sim::fleet::AliveMask;
use mec_sim::units::{Bits, BitsPerSecond, Hertz, Watts};

fn gen_devices(rng: &mut Rng, min: usize, max: usize) -> Vec<Device> {
    let n = rng.range_usize(min, max);
    (0..n)
        .map(|i| {
            let fmax = rng.uniform(0.3100001, 2.0);
            let samples = rng.range_usize(50, 1500);
            let mbps = rng.uniform(0.5, 15.0);
            let cpu =
                DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax)).unwrap();
            let uplink =
                Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
            Device::new(DeviceId(i), cpu, 1.0e7, samples, uplink).unwrap()
        })
        .collect()
}

/// Drives both selectors through identical masked contexts with churn
/// and refunds, asserting equal picks every round and equal per-id
/// counters at the end.
fn drive_equivalence(rng: &mut Rng, case: usize, eta: DecayCoefficient, rounds: usize) {
    let devices = gen_devices(rng, 5, 40);
    let q = devices.len();
    let mut mask = AliveMask::all_alive(q);
    let mut indexed = IndexedDecaySelector::new(eta);
    let mut reference = GreedyDecaySelector::new(eta);
    for round in 1..=rounds {
        // Churn: kill or revive a couple of random devices, keeping at
        // least one alive. Draw count is state-independent so the RNG
        // stream stays aligned across cases.
        for _ in 0..2 {
            let victim = rng.below(q);
            if rng.uniform(0.0, 1.0) < 0.5 {
                if mask.alive_count() > 1 && mask.is_alive(victim) {
                    mask.kill(victim);
                }
            } else if !mask.is_alive(victim) {
                mask.revive(victim);
            }
        }
        let target = rng.range_usize(1, 9);
        let ctx = SelectionContext {
            round,
            devices: DeviceSetOf(&devices).masked(&mask),
            payload: Bits::from_megabits(40.0),
            target,
        };
        let a = indexed.select(&ctx).unwrap();
        let b = reference.select(&ctx).unwrap();
        assert_eq!(a, b, "case {case} round {round} (η = {})", eta.get());
        validate_selection(&ctx, &a)
            .unwrap_or_else(|e| panic!("case {case} round {round}: {e}"));
        // Refund a random subset of the round's picks on both sides.
        let failed: Vec<DeviceId> =
            a.iter().copied().filter(|_| rng.uniform(0.0, 1.0) < 0.25).collect();
        if !failed.is_empty() {
            indexed.on_delivery_failure(&failed);
            reference.on_delivery_failure(&failed);
        }
    }
    for id in 0..q {
        assert_eq!(
            indexed.counters().get(id),
            reference.counters().get(id),
            "case {case} device {id}: counters diverged"
        );
    }
}

/// Tiny helper so the context construction above reads declaratively.
struct DeviceSetOf<'a>(&'a [Device]);

impl<'a> DeviceSetOf<'a> {
    fn masked(self, mask: &'a AliveMask) -> fl_sim::selection::DeviceSet<'a> {
        fl_sim::selection::DeviceSet::from_slice(self.0).with_mask(mask)
    }
}

/// **The tentpole proof.** 20 random populations × 220 rounds of
/// dropout/rejoin churn, shifting targets, and probabilistic refunds:
/// the indexed selector's picks and counters are identical to the
/// reference's, round for round.
#[test]
fn indexed_matches_reference_under_churn() {
    let mut rng = Rng::seed_from_u64(0x1d00_0001);
    for case in 0..20 {
        let eta = DecayCoefficient::new(rng.uniform(0.05, 0.95)).unwrap();
        drive_equivalence(&mut rng, case, eta, 220);
    }
}

/// Extreme decay coefficients: η small enough that `η^{A_q}` hits
/// exact 0.0 after a handful of appearances (and η close enough to 1
/// that utilities crowd together). No panic, no divergence — zero
/// utilities degrade to deterministic id order on both sides.
#[test]
fn extreme_eta_never_panics_and_stays_equivalent() {
    let mut rng = Rng::seed_from_u64(0x1d00_0002);
    for (case, eta) in
        [1.0e-300, 1.0e-12, 1.0e-3, 0.999_999].into_iter().enumerate()
    {
        let eta = DecayCoefficient::new(eta).unwrap();
        drive_equivalence(&mut rng, case, eta, 200);
    }
}
