//! Histogram bucketing edge cases and merge associativity.
//!
//! Pins the properties the round engine's determinism guarantee leans
//! on: odd floating-point inputs (zero, subnormal, ±inf, NaN) land in
//! dedicated tallies instead of corrupting buckets, and merging
//! per-worker histograms is exactly associative so a fixed worker
//! order yields bit-identical registries for any sample partition.

use helcfl_telemetry::{Class, Histogram, MetricsRegistry};

#[test]
fn zero_and_subnormal_samples_count_as_underflow() {
    let mut h = Histogram::new();
    h.record(0.0);
    h.record(-0.0);
    h.record(f64::MIN_POSITIVE / 2.0); // subnormal
    h.record(5e-324); // smallest positive subnormal
    assert_eq!(h.count, 4);
    assert_eq!(h.underflow, 4);
    assert!(h.buckets.is_empty(), "no exponent bucket for underflow");
    // Zeros and subnormals are finite, so min/max still track them.
    assert_eq!(h.min, -0.0);
    assert_eq!(h.max, f64::MIN_POSITIVE / 2.0);
}

#[test]
fn infinite_and_nan_samples_are_tallied_separately() {
    let mut h = Histogram::new();
    h.record(f64::INFINITY);
    h.record(f64::NEG_INFINITY);
    h.record(f64::NAN);
    assert_eq!(h.count, 3);
    assert_eq!(h.infinite, 2);
    assert_eq!(h.nan, 1);
    assert_eq!(h.finite_count(), 0);
    assert!(h.buckets.is_empty());
    // No finite sample yet: min/max stay at their identities, so a
    // later merge cannot be perturbed.
    assert_eq!(h.min, f64::INFINITY);
    assert_eq!(h.max, f64::NEG_INFINITY);
}

#[test]
fn negative_normals_do_not_share_buckets_with_positives() {
    let mut h = Histogram::new();
    h.record(-2.0);
    h.record(2.0);
    assert_eq!(h.negative, 1);
    assert_eq!(h.buckets.get(&1), Some(&1), "only +2.0 buckets");
    assert_eq!(h.min, -2.0);
    assert_eq!(h.max, 2.0);
}

#[test]
fn extreme_exponents_bucket_without_overflow() {
    let mut h = Histogram::new();
    h.record(f64::MAX); // e = 1023
    h.record(f64::MIN_POSITIVE); // e = -1022 (smallest normal)
    assert_eq!(h.buckets.get(&1023), Some(&1));
    assert_eq!(h.buckets.get(&-1022), Some(&1));
}

#[test]
fn bucket_boundaries_are_half_open() {
    let mut h = Histogram::new();
    h.record(1.0); // exactly 2^0 → bucket 0
    h.record(2.0); // exactly 2^1 → bucket 1
    h.record(1.9999999999999998); // largest f64 below 2.0 → bucket 0
    assert_eq!(h.buckets.get(&0), Some(&2));
    assert_eq!(h.buckets.get(&1), Some(&1));
}

/// Deterministically scattered sample set covering every category.
fn samples() -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..200u32 {
        // A spread of magnitudes across many binary exponents.
        out.push(f64::from(i) * 0.37 + 0.001);
        out.push(f64::from(i + 1).recip());
    }
    out.extend([
        0.0,
        -0.0,
        5e-324,
        f64::MIN_POSITIVE / 4.0,
        -1.5,
        -1e300,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MAX,
        f64::MIN_POSITIVE,
    ]);
    out
}

fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

#[test]
fn merge_is_associative_for_any_partition() {
    let all = samples();
    let reference = hist_of(&all);

    // Partition into three "workers" by stride, the same assignment
    // scheme the worker pool uses for clients.
    let parts: Vec<Vec<f64>> = (0..3)
        .map(|w| all.iter().copied().skip(w).step_by(3).collect())
        .collect();
    let hs: Vec<Histogram> = parts.iter().map(|p| hist_of(p)).collect();

    // (h0 ⊕ h1) ⊕ h2
    let mut left = hs[0].clone();
    left.merge_from(&hs[1]);
    left.merge_from(&hs[2]);

    // h0 ⊕ (h1 ⊕ h2)
    let mut right_tail = hs[1].clone();
    right_tail.merge_from(&hs[2]);
    let mut right = hs[0].clone();
    right.merge_from(&right_tail);

    assert_eq!(left, right, "merge associativity");
    // And both equal the unpartitioned histogram: merging is a pure
    // function of the multiset of samples.
    assert_eq!(left, reference, "partition independence");
}

#[test]
fn merge_in_fixed_worker_order_is_bit_identical_across_partitions() {
    let all = samples();

    // Same multiset, two different worker counts. Merging each
    // partition's histograms in worker-index order must agree exactly
    // with the serial (1-worker) registry.
    let serial = {
        let mut r = MetricsRegistry::new();
        for &s in &all {
            r.record(Class::Sim, "pool.item", s);
        }
        r
    };

    for workers in [2usize, 4, 7] {
        let mut merged = MetricsRegistry::new();
        for w in 0..workers {
            let mut local = MetricsRegistry::new();
            for &s in all.iter().skip(w).step_by(workers) {
                local.record(Class::Sim, "pool.item", s);
            }
            merged.merge_from(&local); // fixed worker-index order
        }
        assert_eq!(merged, serial, "registry equality at {workers} workers");
        // Bit-level check on the f64 extrema, beyond PartialEq.
        let a = merged.histogram("pool.item").unwrap();
        let b = serial.histogram("pool.item").unwrap();
        assert_eq!(a.min.to_bits(), b.min.to_bits());
        assert_eq!(a.max.to_bits(), b.max.to_bits());
    }
}

#[test]
fn empty_histogram_is_the_merge_identity() {
    let all = samples();
    let h = hist_of(&all);
    let mut left = Histogram::new();
    left.merge_from(&h);
    assert_eq!(left, h, "empty ⊕ h = h");
    let mut right = h.clone();
    right.merge_from(&Histogram::new());
    assert_eq!(right, h, "h ⊕ empty = h");
}
