//! Golden synthetic-trace tests for the analysis and audit layer.
//!
//! Every fixture is a hand-written JSONL trace with worked-example
//! numbers (the Alg.-3 two-device schedule from the `dvfs` docs:
//! 40 Mbit payload over 8 Mbps → 5 s uploads, device 0 at
//! f_max = 2 GHz finishing at 2.5 s, device 1 slowed to 0.8 GHz to
//! finish exactly when the channel frees at 7.5 s). One fixture
//! passes; one fixture per violation class trips exactly that
//! invariant, so a regression in any single check is pinned to a
//! failing test with its name in it.

use helcfl_telemetry::analyze::{SpanTree, Trace};
use helcfl_telemetry::audit::{audit, AuditConfig};

/// One `device_activity` span line under `parent`.
#[allow(clippy::too_many_arguments)]
fn activity_line(
    id: u64,
    parent: u64,
    device_id: u64,
    f_hz: f64,
    f_max_hz: f64,
    finish: f64,
    up_start: f64,
    up_end: f64,
    e_compute: f64,
    e_at_max: f64,
) -> String {
    format!(
        r#"{{"type":"span","name":"device_activity","id":{id},"parent":{parent},"t_us":0,"dur_us":0,"attrs":{{"device":"v{device_id}","device_id":{device_id},"f_hz":{f_hz},"f_max_hz":{f_max_hz},"compute_finish_s":{finish},"upload_start_s":{up_start},"upload_end_s":{up_end},"compute_energy_j":{e_compute},"compute_energy_at_max_j":{e_at_max},"upload_energy_j":1.0}}}}"#
    )
}

/// A `timeline` span line claiming (or disclaiming) delay-neutrality.
fn timeline_line(id: u64, parent: u64, neutral: bool) -> String {
    format!(
        r#"{{"type":"span","name":"timeline","id":{id},"parent":{parent},"t_us":0,"dur_us":10,"attrs":{{"policy":"test","delay_neutral":{neutral}}}}}"#
    )
}

/// A root `round` span line with the given `index` attribute.
fn round_line(id: u64, index: u64) -> String {
    format!(
        r#"{{"type":"span","name":"round","id":{id},"parent":null,"t_us":0,"dur_us":20,"attrs":{{"index":{index}}}}}"#
    )
}

/// Assembles lines in *completion order* (children before parents),
/// exactly as the streaming sink emits them.
fn fixture(lines: &[String]) -> Trace {
    Trace::parse(&lines.join("\n")).expect("fixture must parse")
}

#[test]
fn tree_reconstructs_completion_ordered_stream() {
    // Leaves complete (and are emitted) before their parents; ids are
    // allocation-ordered but arrival is bottom-up and interleaved.
    let text = concat!(
        r#"{"type":"span","name":"selection","id":3,"parent":2,"t_us":0,"dur_us":5}"#,
        "\n",
        r#"{"type":"span","name":"timeline","id":4,"parent":2,"t_us":5,"dur_us":7}"#,
        "\n",
        r#"{"type":"span","name":"round","id":2,"parent":1,"t_us":0,"dur_us":20,"attrs":{"index":0}}"#,
        "\n",
        r#"{"type":"span","name":"run","id":1,"parent":null,"t_us":0,"dur_us":25}"#,
    );
    let trace = Trace::parse(text).unwrap();
    let tree = SpanTree::build(&trace).unwrap();
    let roots: Vec<_> = tree.roots().map(|s| s.name.as_str()).collect();
    assert_eq!(roots, ["run"]);
    let round: Vec<_> = tree.children(1).collect();
    assert_eq!(round.len(), 1);
    assert_eq!(round[0].name, "round");
    let phases: Vec<_> = tree.children(2).map(|s| s.name.as_str()).collect();
    // Children come back in start-time order, not arrival order.
    assert_eq!(phases, ["selection", "timeline"]);
    let path: Vec<_> = tree.critical_path(1).iter().map(|s| s.name.as_str()).collect();
    assert_eq!(path, ["run", "round", "timeline"]);
}

/// The worked example: device 1's slow-down lands its compute finish
/// exactly on the channel-free instant, energies follow E ∝ f², and
/// the makespan matches the all-at-f_max replay. Nothing to report.
#[test]
fn audit_passes_on_consistent_slack_schedule() {
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        activity_line(5, 3, 1, 0.8e9, 2.0e9, 7.5, 7.5, 12.5, 0.384, 2.4),
        timeline_line(3, 2, true),
        round_line(2, 0),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "unexpected violations:\n{}", report.render());
    assert_eq!(report.rounds_audited, 1);
    assert_eq!(report.rounds_delay_neutral, 1);
    assert_eq!(report.devices_audited, 2);
}

#[test]
fn audit_flags_negative_slack() {
    // Upload starts 0.5 s before compute finishes.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 3.0, 2.5, 7.5, 2.0, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 7),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "slack-nonnegative");
    assert_eq!(report.violations[0].round, Some(7));
}

#[test]
fn audit_flags_delay_extending_dvfs() {
    // A lone device halved to 1 GHz finishes at 5 s and uploads until
    // 10 s; at f_max it would have finished at 2.5 s and been done by
    // 7.5 s. A policy claiming delay-neutrality may not do this.
    let trace = fixture(&[
        activity_line(4, 3, 0, 1.0e9, 2.0e9, 5.0, 5.0, 10.0, 0.5, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 3),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "delay-neutrality");
    assert_eq!(report.violations[0].round, Some(3));
    assert!(
        report.violations[0].detail.contains("exceeds"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_exempts_rounds_that_disclaim_delay_neutrality() {
    // The identical schedule is legitimate for a policy (FEDL) that
    // trades delay for energy and never claimed the bound.
    let trace = fixture(&[
        activity_line(4, 3, 0, 1.0e9, 2.0e9, 5.0, 5.0, 10.0, 0.5, 2.0),
        timeline_line(3, 2, false),
        round_line(2, 3),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.rounds_audited, 1);
    assert_eq!(report.rounds_delay_neutral, 0);
}

#[test]
fn audit_flags_overlapping_tdma_uploads() {
    // Device 1 starts uploading at 6 s while device 0 holds the
    // channel until 7.5 s.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        activity_line(5, 3, 1, 2.0e9, 2.0e9, 6.0, 6.0, 11.0, 2.0, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 11),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "tdma-serialization");
    assert_eq!(report.violations[0].round, Some(11));
}

#[test]
fn audit_flags_energy_inconsistent_with_f_squared() {
    // At 0.8 GHz the E ∝ f² projection of the 2.4 J at-f_max energy
    // is 0.384 J; recording 3.0 J breaks both the projection equality
    // and the E_f ≤ E_max saving bound. (Neutrality is disclaimed —
    // a lone slowed device extends its round by construction and
    // would drown the energy signal in a delay violation.)
    let trace = fixture(&[
        activity_line(4, 3, 0, 0.8e9, 2.0e9, 7.5, 7.5, 12.5, 3.0, 2.4),
        timeline_line(3, 2, false),
        round_line(2, 5),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 2, "{}", report.render());
    for v in &report.violations {
        assert_eq!(v.invariant, "energy-consistency");
        assert_eq!(v.round, Some(5));
    }
}

#[test]
fn audit_flags_timeline_totals_that_disagree_with_devices() {
    // The timeline span over-reports total energy by 1 J.
    let lines = [
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":10,"attrs":{"delay_neutral":true,"energy_j":4.0,"compute_energy_j":2.0,"slack_total_s":0.0,"makespan_s":7.5}}"#
            .to_string(),
        round_line(2, 9),
    ];
    let report = audit(&fixture(&lines), &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "energy-consistency");
    assert_eq!(report.violations[0].round, Some(9));
    assert_eq!(report.violations[0].span, Some(3));
}
