//! Golden synthetic-trace tests for the analysis and audit layer.
//!
//! Every fixture is a hand-written JSONL trace with worked-example
//! numbers (the Alg.-3 two-device schedule from the `dvfs` docs:
//! 40 Mbit payload over 8 Mbps → 5 s uploads, device 0 at
//! f_max = 2 GHz finishing at 2.5 s, device 1 slowed to 0.8 GHz to
//! finish exactly when the channel frees at 7.5 s). One fixture
//! passes; one fixture per violation class trips exactly that
//! invariant, so a regression in any single check is pinned to a
//! failing test with its name in it.

use helcfl_telemetry::analyze::{SpanTree, Trace};
use helcfl_telemetry::audit::{audit, AuditConfig};

/// One `device_activity` span line under `parent`.
#[allow(clippy::too_many_arguments)]
fn activity_line(
    id: u64,
    parent: u64,
    device_id: u64,
    f_hz: f64,
    f_max_hz: f64,
    finish: f64,
    up_start: f64,
    up_end: f64,
    e_compute: f64,
    e_at_max: f64,
) -> String {
    format!(
        r#"{{"type":"span","name":"device_activity","id":{id},"parent":{parent},"t_us":0,"dur_us":0,"attrs":{{"device":"v{device_id}","device_id":{device_id},"f_hz":{f_hz},"f_max_hz":{f_max_hz},"compute_finish_s":{finish},"upload_start_s":{up_start},"upload_end_s":{up_end},"compute_energy_j":{e_compute},"compute_energy_at_max_j":{e_at_max},"upload_energy_j":1.0}}}}"#
    )
}

/// A `timeline` span line claiming (or disclaiming) delay-neutrality.
fn timeline_line(id: u64, parent: u64, neutral: bool) -> String {
    format!(
        r#"{{"type":"span","name":"timeline","id":{id},"parent":{parent},"t_us":0,"dur_us":10,"attrs":{{"policy":"test","delay_neutral":{neutral}}}}}"#
    )
}

/// A root `round` span line with the given `index` attribute.
fn round_line(id: u64, index: u64) -> String {
    format!(
        r#"{{"type":"span","name":"round","id":{id},"parent":null,"t_us":0,"dur_us":20,"attrs":{{"index":{index}}}}}"#
    )
}

/// Assembles lines in *completion order* (children before parents),
/// exactly as the streaming sink emits them.
fn fixture(lines: &[String]) -> Trace {
    Trace::parse(&lines.join("\n")).expect("fixture must parse")
}

#[test]
fn tree_reconstructs_completion_ordered_stream() {
    // Leaves complete (and are emitted) before their parents; ids are
    // allocation-ordered but arrival is bottom-up and interleaved.
    let text = concat!(
        r#"{"type":"span","name":"selection","id":3,"parent":2,"t_us":0,"dur_us":5}"#,
        "\n",
        r#"{"type":"span","name":"timeline","id":4,"parent":2,"t_us":5,"dur_us":7}"#,
        "\n",
        r#"{"type":"span","name":"round","id":2,"parent":1,"t_us":0,"dur_us":20,"attrs":{"index":0}}"#,
        "\n",
        r#"{"type":"span","name":"run","id":1,"parent":null,"t_us":0,"dur_us":25}"#,
    );
    let trace = Trace::parse(text).unwrap();
    let tree = SpanTree::build(&trace).unwrap();
    let roots: Vec<_> = tree.roots().map(|s| s.name.as_str()).collect();
    assert_eq!(roots, ["run"]);
    let round: Vec<_> = tree.children(1).collect();
    assert_eq!(round.len(), 1);
    assert_eq!(round[0].name, "round");
    let phases: Vec<_> = tree.children(2).map(|s| s.name.as_str()).collect();
    // Children come back in start-time order, not arrival order.
    assert_eq!(phases, ["selection", "timeline"]);
    let path: Vec<_> = tree.critical_path(1).iter().map(|s| s.name.as_str()).collect();
    assert_eq!(path, ["run", "round", "timeline"]);
}

/// The worked example: device 1's slow-down lands its compute finish
/// exactly on the channel-free instant, energies follow E ∝ f², and
/// the makespan matches the all-at-f_max replay. Nothing to report.
#[test]
fn audit_passes_on_consistent_slack_schedule() {
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        activity_line(5, 3, 1, 0.8e9, 2.0e9, 7.5, 7.5, 12.5, 0.384, 2.4),
        timeline_line(3, 2, true),
        round_line(2, 0),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "unexpected violations:\n{}", report.render());
    assert_eq!(report.rounds_audited, 1);
    assert_eq!(report.rounds_delay_neutral, 1);
    assert_eq!(report.devices_audited, 2);
}

#[test]
fn audit_flags_negative_slack() {
    // Upload starts 0.5 s before compute finishes.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 3.0, 2.5, 7.5, 2.0, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 7),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "slack-nonnegative");
    assert_eq!(report.violations[0].round, Some(7));
}

#[test]
fn audit_flags_delay_extending_dvfs() {
    // A lone device halved to 1 GHz finishes at 5 s and uploads until
    // 10 s; at f_max it would have finished at 2.5 s and been done by
    // 7.5 s. A policy claiming delay-neutrality may not do this.
    let trace = fixture(&[
        activity_line(4, 3, 0, 1.0e9, 2.0e9, 5.0, 5.0, 10.0, 0.5, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 3),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "delay-neutrality");
    assert_eq!(report.violations[0].round, Some(3));
    assert!(
        report.violations[0].detail.contains("exceeds"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_exempts_rounds_that_disclaim_delay_neutrality() {
    // The identical schedule is legitimate for a policy (FEDL) that
    // trades delay for energy and never claimed the bound.
    let trace = fixture(&[
        activity_line(4, 3, 0, 1.0e9, 2.0e9, 5.0, 5.0, 10.0, 0.5, 2.0),
        timeline_line(3, 2, false),
        round_line(2, 3),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.rounds_audited, 1);
    assert_eq!(report.rounds_delay_neutral, 0);
}

#[test]
fn audit_flags_overlapping_tdma_uploads() {
    // Device 1 starts uploading at 6 s while device 0 holds the
    // channel until 7.5 s.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        activity_line(5, 3, 1, 2.0e9, 2.0e9, 6.0, 6.0, 11.0, 2.0, 2.0),
        timeline_line(3, 2, true),
        round_line(2, 11),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "tdma-serialization");
    assert_eq!(report.violations[0].round, Some(11));
}

#[test]
fn audit_flags_energy_inconsistent_with_f_squared() {
    // At 0.8 GHz the E ∝ f² projection of the 2.4 J at-f_max energy
    // is 0.384 J; recording 3.0 J breaks both the projection equality
    // and the E_f ≤ E_max saving bound. (Neutrality is disclaimed —
    // a lone slowed device extends its round by construction and
    // would drown the energy signal in a delay violation.)
    let trace = fixture(&[
        activity_line(4, 3, 0, 0.8e9, 2.0e9, 7.5, 7.5, 12.5, 3.0, 2.4),
        timeline_line(3, 2, false),
        round_line(2, 5),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 2, "{}", report.render());
    for v in &report.violations {
        assert_eq!(v.invariant, "energy-consistency");
        assert_eq!(v.round, Some(5));
    }
}

/// Parameters of a fault-era `device_activity` span.
struct FaultActivity {
    id: u64,
    parent: u64,
    device_id: u64,
    f: f64,
    f_planned: f64,
    f_max: f64,
    planned_finish: f64,
    finish: f64,
    planned_upload: f64,
    up_start: f64,
    up_end: f64,
    e_compute: f64,
    e_at_max: f64,
    e_upload: f64,
    wasted: f64,
    uploaded: bool,
    delivered: bool,
    retries: u64,
    /// Fault kind; empty string = no fault attribute.
    fault: &'static str,
}

fn fault_activity_line(a: &FaultActivity) -> String {
    let fault_attr = if a.fault.is_empty() {
        String::new()
    } else {
        format!(r#","fault":"{}""#, a.fault)
    };
    format!(
        r#"{{"type":"span","name":"device_activity","id":{},"parent":{},"t_us":0,"dur_us":0,"attrs":{{"device":"v{}","device_id":{},"f_hz":{},"f_planned_hz":{},"f_max_hz":{},"planned_compute_finish_s":{},"compute_finish_s":{},"planned_upload_s":{},"upload_start_s":{},"upload_end_s":{},"compute_energy_j":{},"compute_energy_at_max_j":{},"upload_energy_j":{},"wasted_energy_j":{},"uploaded":{},"delivered":{},"retries":{}{}}}}}"#,
        a.id,
        a.parent,
        a.device_id,
        a.device_id,
        a.f,
        a.f_planned,
        a.f_max,
        a.planned_finish,
        a.finish,
        a.planned_upload,
        a.up_start,
        a.up_end,
        a.e_compute,
        a.e_at_max,
        a.e_upload,
        a.wasted,
        a.uploaded,
        a.delivered,
        a.retries,
        fault_attr,
    )
}

/// A fault-era `timeline` span line with the round-level fault attrs.
#[allow(clippy::too_many_arguments)]
fn fault_timeline_line(
    id: u64,
    parent: u64,
    neutral: bool,
    fault_fired: bool,
    selected: u64,
    delivered: u64,
    makespan: f64,
    energy: f64,
    compute: f64,
    wasted: f64,
    slack: f64,
) -> String {
    format!(
        r#"{{"type":"span","name":"timeline","id":{id},"parent":{parent},"t_us":0,"dur_us":10,"attrs":{{"policy":"test","delay_neutral":{neutral},"fault_fired":{fault_fired},"selected":{selected},"delivered":{delivered},"makespan_s":{makespan},"energy_j":{energy},"compute_energy_j":{compute},"wasted_energy_j":{wasted},"slack_total_s":{slack}}}}}"#
    )
}

/// A straggler doubles its compute time mid-round: the actual makespan
/// (20 s) blows past the all-at-f_max replay (12.5 s), but the DVFS
/// *plan* (device 1 at 0.8 GHz finishing exactly at the channel-free
/// instant) was sound. A neutrality-claiming faulted round is audited
/// at plan time and passes; the degraded actual is exempt.
#[test]
fn audit_exempts_faulted_rounds_from_actual_delay_neutrality() {
    let trace = fixture(&[
        fault_activity_line(&FaultActivity {
            id: 4,
            parent: 3,
            device_id: 0,
            f: 2.0e9,
            f_planned: 2.0e9,
            f_max: 2.0e9,
            planned_finish: 2.5,
            finish: 2.5,
            planned_upload: 5.0,
            up_start: 2.5,
            up_end: 7.5,
            e_compute: 2.0,
            e_at_max: 2.0,
            e_upload: 1.0,
            wasted: 0.0,
            uploaded: true,
            delivered: true,
            retries: 0,
            fault: "",
        }),
        fault_activity_line(&FaultActivity {
            id: 5,
            parent: 3,
            device_id: 1,
            f: 0.4e9,
            f_planned: 0.8e9,
            f_max: 2.0e9,
            planned_finish: 7.5,
            finish: 15.0,
            planned_upload: 5.0,
            up_start: 15.0,
            up_end: 20.0,
            e_compute: 0.096,
            e_at_max: 2.4,
            e_upload: 1.0,
            wasted: 0.0,
            uploaded: true,
            delivered: true,
            retries: 0,
            fault: "straggler",
        }),
        fault_timeline_line(3, 2, true, true, 2, 2, 20.0, 4.096, 2.096, 0.0, 0.0),
        round_line(2, 4),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "unexpected violations:\n{}", report.render());
    assert_eq!(report.rounds_faulted, 1);
    assert_eq!(report.rounds_fault_exempt, 1);
    assert_eq!(report.rounds_delay_neutral, 1);
}

/// `fault_fired:true` with neither a device-level fault nor a fired
/// deadline is a telemetry lie, not an exemption ticket.
#[test]
fn audit_flags_claimed_fault_without_evidence() {
    let trace = fixture(&[
        fault_activity_line(&FaultActivity {
            id: 4,
            parent: 3,
            device_id: 0,
            f: 2.0e9,
            f_planned: 2.0e9,
            f_max: 2.0e9,
            planned_finish: 2.5,
            finish: 2.5,
            planned_upload: 5.0,
            up_start: 2.5,
            up_end: 7.5,
            e_compute: 2.0,
            e_at_max: 2.0,
            e_upload: 1.0,
            wasted: 0.0,
            uploaded: true,
            delivered: true,
            retries: 0,
            fault: "",
        }),
        fault_timeline_line(3, 2, false, true, 1, 1, 7.5, 3.0, 2.0, 0.0, 0.0),
        round_line(2, 6),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "fault-consistency");
    assert_eq!(report.violations[0].round, Some(6));
}

/// A device that crashed mid-compute (never reached the channel) must
/// waste exactly the joules it spent; under-reporting is flagged.
#[test]
fn audit_flags_wasted_energy_that_ignores_a_failed_delivery() {
    let trace = fixture(&[
        fault_activity_line(&FaultActivity {
            id: 4,
            parent: 3,
            device_id: 0,
            f: 2.0e9,
            f_planned: 2.0e9,
            f_max: 2.0e9,
            planned_finish: 2.5,
            finish: 1.25,
            planned_upload: 5.0,
            up_start: 1.25,
            up_end: 1.25,
            e_compute: 1.0,
            e_at_max: 2.0,
            e_upload: 0.0,
            wasted: 0.2,
            uploaded: false,
            delivered: false,
            retries: 0,
            fault: "crash-compute",
        }),
        fault_timeline_line(3, 2, false, true, 1, 0, 1.25, 1.0, 1.0, 0.2, 0.0),
        round_line(2, 8),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "wasted-energy");
    assert_eq!(report.violations[0].round, Some(8));
    assert!(
        report.violations[0].detail.contains("failed delivery"),
        "{}",
        report.violations[0].detail
    );
}

/// A digest-era `timeline` span: the usual summary totals plus the
/// `digest:true` flag that announces the cohort_digest child.
fn digest_timeline_line(id: u64, parent: u64, energy: f64) -> String {
    format!(
        r#"{{"type":"span","name":"timeline","id":{id},"parent":{parent},"t_us":0,"dur_us":10,"attrs":{{"policy":"test","delay_neutral":true,"digest":true,"uploads":2,"makespan_s":12.5,"slack_total_s":0.0,"energy_j":{energy},"compute_energy_j":2.384}}}}"#
    )
}

/// The worked example's cohort digest: two devices (3.0 J and 1.384 J,
/// both zero slack), last channel release at 12.5 s. Any field can be
/// perturbed by the caller to trip one check.
#[allow(clippy::too_many_arguments)]
fn cohort_digest_line(
    id: u64,
    parent: u64,
    exemplars: u64,
    energy_max: f64,
    energy_hist: &str,
    slack_hist: &str,
) -> String {
    format!(
        r#"{{"type":"span","name":"cohort_digest","id":{id},"parent":{parent},"t_us":0,"dur_us":1,"attrs":{{"devices":2,"exemplars":{exemplars},"uploads":2,"energy_sum_j":4.384,"energy_min_j":1.384,"energy_max_j":{energy_max},"compute_energy_sum_j":2.384,"slack_sum_s":0.0,"slack_min_s":0.0,"slack_max_s":0.0,"release_max_s":12.5,"energy_hist":"{energy_hist}","slack_hist":"{slack_hist}"}}}}"#
    )
}

/// Digest round distilled from the passing worked example: one
/// exemplar (device 0, 3.0 J total) stands in for the two-device
/// cohort. 3.0 J sits in bucket [2,4) (exponent 1), 1.384 J in [1,2)
/// (exponent 0); both zero slacks land in the underflow tally.
#[test]
fn audit_passes_on_a_digest_round_that_matches_its_exemplar() {
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 1, 3.0, "u0,n0,i0,x0,0:1,1:1", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 4.384),
        round_line(2, 0),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(report.passed(), "unexpected violations:\n{}", report.render());
    assert_eq!(report.rounds_audited, 1);
    assert_eq!(report.rounds_digest, 1);
    // The claim is still counted even though digest rounds skip the
    // full-cohort delay-neutrality replay.
    assert_eq!(report.rounds_delay_neutral, 1);
}

#[test]
fn audit_flags_digest_totals_that_disagree_with_the_timeline() {
    // The timeline over-reports total energy by 1 J against the
    // digest's streaming sum.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 1, 3.0, "u0,n0,i0,x0,0:1,1:1", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 5.384),
        round_line(2, 2),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "energy-consistency");
    assert_eq!(report.violations[0].round, Some(2));
}

#[test]
fn audit_flags_an_exemplar_outside_the_digest_extrema() {
    // The digest advertises energy_max 2.0 J; the exemplar spent 3.0 J.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 1, 2.0, "u0,n0,i0,x0,0:1,1:1", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 4.384),
        round_line(2, 3),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "digest-consistency");
    assert_eq!(report.violations[0].span, Some(4), "blames the exemplar span");
    assert!(
        report.violations[0].detail.contains("outside the digest"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_flags_a_malformed_digest_histogram() {
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 1, 3.0, "garbage", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 4.384),
        round_line(2, 4),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "digest-consistency");
    assert!(
        report.violations[0].detail.contains("malformed"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_flags_a_digest_histogram_that_lost_samples() {
    // energy_hist tallies one sample for a two-device cohort.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 1, 3.0, "u0,n0,i0,x0,1:1", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 4.384),
        round_line(2, 5),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "digest-consistency");
    assert!(
        report.violations[0].detail.contains("holds 1 samples for 2 devices"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_flags_an_exemplar_count_mismatch() {
    // The digest claims two exemplars; only one span was emitted.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        cohort_digest_line(5, 3, 2, 3.0, "u0,n0,i0,x0,0:1,1:1", "u2,n0,i0,x0"),
        digest_timeline_line(3, 2, 4.384),
        round_line(2, 6),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "digest-consistency");
    assert!(
        report.violations[0].detail.contains("claims 2 exemplars"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_flags_a_digest_flag_without_a_digest_span() {
    // timeline says digest:true but no cohort_digest child exists; the
    // round otherwise audits cleanly as a full trace, so the flag lie
    // is the only violation.
    let trace = fixture(&[
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        activity_line(5, 3, 1, 0.8e9, 2.0e9, 7.5, 7.5, 12.5, 0.384, 2.4),
        r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":10,"attrs":{"policy":"test","delay_neutral":true,"digest":true}}"#
            .to_string(),
        round_line(2, 7),
    ]);
    let report = audit(&trace, &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "digest-consistency");
    assert!(
        report.violations[0].detail.contains("lacks a cohort_digest"),
        "{}",
        report.violations[0].detail
    );
}

#[test]
fn audit_flags_timeline_totals_that_disagree_with_devices() {
    // The timeline span over-reports total energy by 1 J.
    let lines = [
        activity_line(4, 3, 0, 2.0e9, 2.0e9, 2.5, 2.5, 7.5, 2.0, 2.0),
        r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":10,"attrs":{"delay_neutral":true,"energy_j":4.0,"compute_energy_j":2.0,"slack_total_s":0.0,"makespan_s":7.5}}"#
            .to_string(),
        round_line(2, 9),
    ];
    let report = audit(&fixture(&lines), &AuditConfig::default()).unwrap();
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    assert_eq!(report.violations[0].invariant, "energy-consistency");
    assert_eq!(report.violations[0].round, Some(9));
    assert_eq!(report.violations[0].span, Some(3));
}
