//! Mergeable counters, gauges, and log-bucketed histograms.
//!
//! The registry is designed around one hard requirement: the round
//! engine produces bit-identical results for any worker-pool size, and
//! telemetry must not weaken that guarantee. Two ingredients deliver
//! it:
//!
//! * **Class separation.** Every metric carries a [`Class`]:
//!   [`Class::Sim`] values are derived purely from simulation state
//!   (deterministic by construction), while [`Class::Runtime`] values
//!   come from wall clocks and thread scheduling (never reproducible).
//!   [`MetricsRegistry::deterministic`] strips the registry down to
//!   the `Sim` view, which the determinism tests compare across thread
//!   counts and sink choices.
//!
//! * **Integer-only accumulation.** [`Histogram`] stores `u64` bucket
//!   counts keyed by the sample's binary exponent, never a running
//!   `f64` sum, so [`Histogram::merge_from`] is exactly associative:
//!   merging per-worker histograms in fixed worker order yields the
//!   same bits regardless of how samples were partitioned. The only
//!   `f64` state is `min`/`max`, whose merge is also associative.

use std::collections::BTreeMap;

use crate::json::JsonObject;

/// Determinism class of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Derived from simulation state only; identical across runs with
    /// the same seed, regardless of thread count or sink choice.
    Sim,
    /// Derived from wall clocks or scheduling (worker busy/idle time,
    /// span durations); excluded from determinism comparisons.
    Runtime,
}

/// A single named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Log-bucketed sample distribution.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Distribution of `f64` samples bucketed by binary exponent.
///
/// Bucket `e` counts finite positive normal samples in `[2^e, 2^(e+1))`
/// — roughly one bucket per factor of two, enough resolution for
/// latency and energy tails. Samples that have no exponent bucket are
/// tallied separately so nothing is silently dropped:
///
/// * `underflow` — `+0.0`, `-0.0`, and subnormals (magnitude below
///   `f64::MIN_POSITIVE`);
/// * `negative` — finite strictly-negative normals;
/// * `infinite` — `±inf`;
/// * `nan` — NaN payloads.
///
/// `min`/`max` cover all *finite* samples (including negatives and
/// zeros); NaN never touches them, so their merge stays associative.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Total samples recorded, across every category below.
    pub count: u64,
    /// Zero and subnormal samples.
    pub underflow: u64,
    /// Finite negative normal samples.
    pub negative: u64,
    /// `+inf` / `-inf` samples.
    pub infinite: u64,
    /// NaN samples.
    pub nan: u64,
    /// Smallest finite sample seen (`+inf` when none yet).
    pub min: f64,
    /// Largest finite sample seen (`-inf` when none yet).
    pub max: f64,
    /// Bucket counts keyed by binary exponent of positive normals.
    pub buckets: BTreeMap<i16, u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            underflow: 0,
            negative: 0,
            infinite: 0,
            nan: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        if sample.is_nan() {
            self.nan += 1;
            return;
        }
        if sample.is_infinite() {
            self.infinite += 1;
            return;
        }
        // Finite from here on: min/max cover every finite sample.
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        let bits = sample.to_bits();
        let exp_bits = (bits >> 52) & 0x7ff;
        if exp_bits == 0 {
            // ±0.0 and subnormals share the zero exponent field.
            self.underflow += 1;
        } else if bits >> 63 == 1 {
            self.negative += 1;
        } else {
            let exponent = exp_bits as i16 - 1023;
            *self.buckets.entry(exponent).or_insert(0) += 1;
        }
    }

    /// Records every sample in one pass — exactly equivalent to
    /// calling [`Self::record`] per sample (same counts, same bits),
    /// but per-sample bucket resolution is a flat array increment
    /// indexed by the raw exponent field instead of a map walk; the
    /// scratch table folds into [`Self::buckets`] once at the end.
    ///
    /// This is the cohort-digest hot path: a `Q = 10^7` population
    /// round records tens of thousands of samples per round, and the
    /// per-sample `BTreeMap` entry walk (let alone a string-keyed
    /// registry lookup) was the dominant telemetry cost at scale.
    pub fn record_batch(&mut self, samples: impl IntoIterator<Item = f64>) {
        // Exponent fields 1..=2046 are the positive normals; 16 KiB of
        // zeroed stack is ~µs-scale, amortized over the whole batch.
        let mut scratch = [0u64; 2046];
        for sample in samples {
            self.count += 1;
            if sample.is_nan() {
                self.nan += 1;
                continue;
            }
            if sample.is_infinite() {
                self.infinite += 1;
                continue;
            }
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
            let bits = sample.to_bits();
            let exp_bits = (bits >> 52) & 0x7ff;
            if exp_bits == 0 {
                self.underflow += 1;
            } else if bits >> 63 == 1 {
                self.negative += 1;
            } else {
                scratch[exp_bits as usize - 1] += 1;
            }
        }
        for (i, &n) in scratch.iter().enumerate() {
            if n > 0 {
                let exponent = (i + 1) as i16 - 1023;
                *self.buckets.entry(exponent).or_insert(0) += n;
            }
        }
    }

    /// Folds another histogram into this one.
    ///
    /// All state is either a `u64` sum or an associative `f64`
    /// min/max, so `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` produce identical
    /// bits — the property the fixed-worker-order merge tests pin.
    pub fn merge_from(&mut self, other: &Histogram) {
        self.count += other.count;
        self.underflow += other.underflow;
        self.negative += other.negative;
        self.infinite += other.infinite;
        self.nan += other.nan;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&exponent, &n) in &other.buckets {
            *self.buckets.entry(exponent).or_insert(0) += n;
        }
    }

    /// Count of finite samples (the ones `min`/`max` describe).
    pub fn finite_count(&self) -> u64 {
        self.count - self.infinite - self.nan
    }

    /// Approximate quantile over the positive-normal buckets.
    ///
    /// Returns the arithmetic midpoint `1.5 · 2^e` of the power-of-two
    /// bucket `[2^e, 2^{e+1})` that contains the `q`-th positive
    /// sample, or `None` when no positive normal sample has been
    /// recorded.
    ///
    /// # Error bound
    ///
    /// The true sample lies somewhere in the bucket, so the ratio
    /// `estimate / true` is confined to `(0.75, 1.5]`: the estimate
    /// overstates by at most **+50 %** (true value exactly `2^e`, the
    /// bucket's lower edge) and understates by strictly less than
    /// **−25 %** (true value approaching `2^{e+1}`). A unit test pins
    /// both worst cases. That is fine for a post-run summary — which
    /// is why [`crate::report::TelemetryReport`] prints these as
    /// `~p50` / `~p99` — but not for assertions; exact per-round
    /// percentiles come from span durations in a traced run (see
    /// `bench_round_engine`'s latency section).
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        let positive: u64 = self.buckets.values().sum();
        if positive == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * positive as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&exponent, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(1.5 * (exponent as f64).exp2());
            }
        }
        None
    }

    /// Compact single-line encoding for span attributes — the four
    /// special tallies, then the exponent buckets:
    /// `"u<underflow>,n<negative>,i<infinite>,x<nan>,<e>:<count>,…"`.
    ///
    /// Used by digest-mode timeline tracing to ship a per-cohort
    /// distribution inside one `cohort_digest` span; decode with
    /// [`Histogram::decode_compact`]. `min`/`max` are not part of the
    /// encoding (digest spans carry them as separate attributes).
    pub fn encode_compact(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "u{},n{},i{},x{}",
            self.underflow, self.negative, self.infinite, self.nan
        );
        for (&exponent, &n) in &self.buckets {
            let _ = write!(out, ",{exponent}:{n}");
        }
        out
    }

    /// Parses an [`Histogram::encode_compact`] string back into count
    /// state. The reconstructed histogram has exact tallies and bucket
    /// counts (and a `count` equal to their sum) but empty `min`/`max`.
    ///
    /// Returns `None` on any malformed field.
    pub fn decode_compact(s: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        for part in s.split(',') {
            if let Some((exp, n)) = part.split_once(':') {
                let exponent: i16 = exp.parse().ok()?;
                let n: u64 = n.parse().ok()?;
                h.count += n;
                *h.buckets.entry(exponent).or_insert(0) += n;
            } else {
                if !part.is_char_boundary(1) || part.len() < 2 {
                    return None;
                }
                let (tag, n) = part.split_at(1);
                let n: u64 = n.parse().ok()?;
                h.count += n;
                match tag {
                    "u" => h.underflow += n,
                    "n" => h.negative += n,
                    "i" => h.infinite += n,
                    "x" => h.nan += n,
                    _ => return None,
                }
            }
        }
        Some(h)
    }

    fn to_json(&self) -> JsonObject {
        let mut o = JsonObject::new();
        o.field("count", self.count)
            .field("underflow", self.underflow)
            .field("negative", self.negative)
            .field("infinite", self.infinite)
            .field("nan", self.nan);
        if self.finite_count() > 0 {
            o.field("min", self.min).field("max", self.max);
        } else {
            o.field("min", Option::<f64>::None).field("max", Option::<f64>::None);
        }
        let mut buckets = JsonObject::new();
        for (&exponent, &n) in &self.buckets {
            buckets.field(&exponent.to_string(), n);
        }
        o.object("buckets", buckets);
        o
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    class: Class,
    metric: Metric,
}

/// A named collection of metrics with deterministic iteration order.
///
/// Keys are sorted (`BTreeMap`), so serialization, merging, and
/// equality checks never depend on insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Entry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists as a different metric kind or
    /// class — that is a programming error, not a runtime condition.
    pub fn counter_add(&mut self, class: Class, name: &str, delta: u64) {
        match self.entry(class, name, || Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Sets a gauge to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch, as for [`Self::counter_add`].
    pub fn gauge_set(&mut self, class: Class, name: &str, value: f64) {
        match self.entry(class, name, || Metric::Gauge(0.0)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Records a histogram sample.
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch, as for [`Self::counter_add`].
    pub fn record(&mut self, class: Class, name: &str, sample: f64) {
        match self.entry(class, name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.record(sample),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Records a whole batch of histogram samples, resolving `name`
    /// once. Exactly equivalent to calling [`Self::record`] per
    /// sample; use it on per-device hot loops, where the string-keyed
    /// registry walk per sample would otherwise dominate (see
    /// [`Histogram::record_batch`]).
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch, as for [`Self::counter_add`].
    pub fn record_iter(
        &mut self,
        class: Class,
        name: &str,
        samples: impl IntoIterator<Item = f64>,
    ) {
        match self.entry(class, name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.record_batch(samples),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    fn entry(
        &mut self,
        class: Class,
        name: &str,
        default: impl FnOnce() -> Metric,
    ) -> &mut Metric {
        if !self.entries.contains_key(name) {
            self.entries
                .insert(name.to_string(), Entry { class, metric: default() });
        }
        let entry = self.entries.get_mut(name).expect("just inserted");
        assert!(
            entry.class == class,
            "metric '{name}' re-registered with a different determinism class"
        );
        &mut entry.metric
    }

    /// Installs a metric verbatim, replacing any existing entry of the
    /// same name — the checkpoint-restore path. Unlike the recording
    /// APIs this performs no accumulation: the metric lands exactly as
    /// given, so a registry rebuilt from a checkpoint is bit-identical
    /// to the one that was captured (the [`Metric`] and [`Histogram`]
    /// fields are public precisely so a serializer can round-trip
    /// them).
    pub fn insert(&mut self, class: Class, name: &str, metric: Metric) {
        self.entries.insert(name.to_string(), Entry { class, metric });
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name).map(|e| &e.metric)
    }

    /// Convenience accessor for a counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience accessor for a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Class, &Metric)> {
        self.entries.iter().map(|(k, e)| (k.as_str(), e.class, &e.metric))
    }

    /// Folds `other` into this registry.
    ///
    /// Counters and histogram buckets add; gauges take `other`'s value
    /// (last write wins, so merge order matters for gauges — callers
    /// merge per-worker registries in worker-index order to keep the
    /// result a pure function of the partitioned data).
    ///
    /// # Panics
    ///
    /// Panics if the same name holds different metric kinds or classes
    /// in the two registries.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, entry) in &other.entries {
            match &entry.metric {
                Metric::Counter(v) => self.counter_add(entry.class, name, *v),
                Metric::Gauge(v) => self.gauge_set(entry.class, name, *v),
                Metric::Histogram(h) => {
                    match self.entry(entry.class, name, || {
                        Metric::Histogram(Histogram::new())
                    }) {
                        Metric::Histogram(mine) => mine.merge_from(h),
                        other => panic!(
                            "metric '{name}' is a {}, not a histogram",
                            other.kind()
                        ),
                    }
                }
            }
        }
    }

    /// The deterministic ([`Class::Sim`]) subset of this registry.
    ///
    /// Two runs with the same seed must produce equal snapshots here
    /// regardless of thread count, sink choice, or host speed.
    pub fn deterministic(&self) -> MetricsRegistry {
        MetricsRegistry {
            entries: self
                .entries
                .iter()
                .filter(|(_, e)| e.class == Class::Sim)
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect(),
        }
    }

    /// Renders the registry as a JSON object keyed by metric name.
    pub fn to_json(&self) -> JsonObject {
        let mut o = JsonObject::new();
        for (name, entry) in &self.entries {
            let mut m = JsonObject::new();
            m.field("kind", entry.metric.kind()).field(
                "class",
                match entry.class {
                    Class::Sim => "sim",
                    Class::Runtime => "runtime",
                },
            );
            match &entry.metric {
                Metric::Counter(v) => m.field("value", *v),
                Metric::Gauge(v) => m.field("value", *v),
                Metric::Histogram(h) => m.object("value", h.to_json()),
            };
            o.object(name, m);
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Class::Sim, "rounds", 1);
        r.counter_add(Class::Sim, "rounds", 2);
        r.gauge_set(Class::Runtime, "threads", 4.0);
        r.gauge_set(Class::Runtime, "threads", 8.0);
        assert_eq!(r.counter("rounds"), 3);
        assert_eq!(r.get("threads"), Some(&Metric::Gauge(8.0)));
    }

    #[test]
    fn histogram_buckets_by_binary_exponent() {
        let mut h = Histogram::new();
        h.record(1.0); // [1, 2) → e = 0
        h.record(1.9);
        h.record(2.0); // [2, 4) → e = 1
        h.record(0.75); // [0.5, 1) → e = -1
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets.get(&0), Some(&2));
        assert_eq!(h.buckets.get(&1), Some(&1));
        assert_eq!(h.buckets.get(&-1), Some(&1));
        assert_eq!(h.min, 0.75);
        assert_eq!(h.max, 2.0);
    }

    #[test]
    fn record_batch_is_bit_identical_to_per_sample_record() {
        // Every sample class the per-sample path distinguishes: NaN,
        // ±inf, negatives, ±0.0, subnormals, and normals spanning
        // bucket boundaries — the batch path must land each in the
        // same tally and produce the same min/max bits.
        let samples = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -3.5,
            0.0,
            -0.0,
            f64::MIN_POSITIVE / 2.0,
            1.0,
            1.9,
            2.0,
            0.75,
            f64::MAX,
        ];
        let mut one_by_one = Histogram::new();
        for s in samples {
            one_by_one.record(s);
        }
        let mut batched = Histogram::new();
        batched.record_batch(samples);
        assert_eq!(batched, one_by_one);
        assert_eq!(batched.min.to_bits(), one_by_one.min.to_bits());
        assert_eq!(batched.max.to_bits(), one_by_one.max.to_bits());

        // record_iter resolves the registry name once and folds into
        // the same histogram the per-sample API would.
        let mut r = MetricsRegistry::new();
        r.record(Class::Sim, "x", 1.0);
        r.record_iter(Class::Sim, "x", samples);
        let mut expect = one_by_one.clone();
        expect.record(1.0);
        assert_eq!(r.histogram("x"), Some(&expect));
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn record_iter_kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Class::Sim, "x", 1);
        r.record_iter(Class::Sim, "x", [1.0]);
    }

    #[test]
    fn deterministic_filters_runtime_metrics() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Class::Sim, "selection.selected", 10);
        r.record(Class::Runtime, "worker.busy_ns", 1234.0);
        let det = r.deterministic();
        assert_eq!(det.len(), 1);
        assert!(det.get("selection.selected").is_some());
        assert!(det.get("worker.busy_ns").is_none());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge_set(Class::Sim, "x", 1.0);
        r.counter_add(Class::Sim, "x", 1);
    }

    #[test]
    #[should_panic(expected = "different determinism class")]
    fn class_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Class::Sim, "x", 1);
        r.counter_add(Class::Runtime, "x", 1);
    }

    #[test]
    fn insert_replaces_verbatim_for_bit_exact_restore() {
        let mut live = MetricsRegistry::new();
        live.counter_add(Class::Sim, "rounds", 7);
        live.record(Class::Sim, "delay", 0.1 + 0.2); // awkward bits
        live.gauge_set(Class::Sim, "coverage", 1.0 / 3.0);
        // Rebuild a registry through the public surface only, the way
        // a checkpoint loader does.
        let mut rebuilt = MetricsRegistry::new();
        for (name, class, metric) in live.iter() {
            rebuilt.insert(class, name, metric.clone());
        }
        assert_eq!(rebuilt, live);
        // Insert overwrites: no accumulation on repeated restore.
        rebuilt.insert(Class::Sim, "rounds", Metric::Counter(7));
        assert_eq!(rebuilt.counter("rounds"), 7);
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add(Class::Sim, "n", 2);
        a.record(Class::Sim, "h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add(Class::Sim, "n", 3);
        b.record(Class::Sim, "h", 4.0);
        b.record(Class::Sim, "h", f64::INFINITY);
        a.merge_from(&b);
        assert_eq!(a.counter("n"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.infinite, 1);
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn compact_encoding_round_trips_counts() {
        let mut h = Histogram::new();
        for x in [1.0, 1.5, 3.0, 0.75, 0.0, -2.0, f64::INFINITY, f64::NAN] {
            h.record(x);
        }
        let encoded = h.encode_compact();
        assert_eq!(encoded, "u1,n1,i1,x1,-1:1,0:2,1:1");
        let back = Histogram::decode_compact(&encoded).unwrap();
        assert_eq!(back.count, h.count);
        assert_eq!(back.underflow, h.underflow);
        assert_eq!(back.negative, h.negative);
        assert_eq!(back.infinite, h.infinite);
        assert_eq!(back.nan, h.nan);
        assert_eq!(back.buckets, h.buckets);
        // An empty histogram still encodes its (zero) tallies.
        let empty = Histogram::new();
        let back = Histogram::decode_compact(&empty.encode_compact()).unwrap();
        assert_eq!(back.count, 0);
        assert!(back.buckets.is_empty());
    }

    #[test]
    fn compact_decoding_rejects_malformed_fields() {
        for bad in ["", "u", "z3", "0:abc", "u1,,0:1", "é7", "1:2:3"] {
            assert!(
                Histogram::decode_compact(bad).is_none(),
                "accepted malformed {bad:?}"
            );
        }
    }

    #[test]
    fn approx_quantile_lands_in_the_right_bucket() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0); // e = 0
        }
        for _ in 0..10 {
            h.record(100.0); // e = 6 ([64, 128))
        }
        assert_eq!(h.approx_quantile(0.5), Some(1.5));
        assert_eq!(h.approx_quantile(0.99), Some(1.5 * 64.0));
        assert_eq!(Histogram::new().approx_quantile(0.5), None);
    }

    #[test]
    fn approx_quantile_error_stays_within_documented_bound() {
        // Worst-case overstatement: the sample sits exactly on a
        // bucket's lower edge 2^e, the estimate is the midpoint
        // 1.5·2^e → relative error +50 %.
        let mut low = Histogram::new();
        low.record(8.0); // e = 3, bucket [8, 16)
        let est = low.approx_quantile(0.5).unwrap();
        assert_eq!(est, 12.0);
        assert!((est / 8.0 - 1.5).abs() < 1e-12, "upper bound is exactly +50%");

        // Worst-case understatement: the sample approaches the upper
        // edge 2^{e+1} from below → ratio approaches 0.75.
        let mut high = Histogram::new();
        let just_below = f64::from_bits(16.0f64.to_bits() - 1);
        high.record(just_below); // still bucket [8, 16)
        let est = high.approx_quantile(0.5).unwrap();
        assert_eq!(est, 12.0);
        let ratio = est / just_below;
        assert!(ratio > 0.75 && ratio < 0.7500001, "lower bound is an open 0.75");

        // Sweep a few decades: the ratio never leaves (0.75, 1.5].
        for i in 0..200 {
            let x = 0.001 * 1.1f64.powi(i);
            let mut h = Histogram::new();
            h.record(x);
            let ratio = h.approx_quantile(0.5).unwrap() / x;
            assert!(ratio > 0.75 && ratio <= 1.5, "x={x}: ratio {ratio}");
        }
    }
}
