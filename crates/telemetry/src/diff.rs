//! Cross-run trace comparison: per-phase latency deltas, metrics
//! diffing, audit-report diffing, and critical-path attribution.
//!
//! [`diff_traces`] takes two parsed traces — a *baseline* and a
//! *candidate* — and answers the question a tripped perf gate cannot:
//! **where did the time go?** It first checks run provenance (the
//! [`RunManifest`] lines stamped at the head of each trace) and refuses
//! to compare traces of different experiments; then it builds, from the
//! round spans that both traces already carry:
//!
//! * per-phase p50 / p99 / total deltas (one sample per phase per
//!   round, so a phase that runs twice in a round — `bookkeeping` —
//!   contributes its in-round sum, keeping full and digest traces of
//!   the same run comparable);
//! * a metrics-registry diff over the final `metrics` lines (counter
//!   and gauge values, histogram counts and approximate quantiles);
//! * an audit-report diff (violation counts and newly appearing
//!   invariants);
//! * a **critical-path attribution**: the round-time delta decomposed
//!   into per-phase total-time contributions, ranked by impact, with
//!   the unattributed residual (self time, coverage gaps) reported
//!   rather than hidden.
//!
//! Like `gate`, the result carries optional thresholds so CI can fail
//! on regression; like everything in this crate's read side, it never
//! touches a live [`crate::Telemetry`] handle.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::analyze::{SpanTree, Trace};
use crate::audit::{audit, AuditConfig};
use crate::json::{JsonObject, JsonValue};
use crate::metrics::Histogram;

/// Thresholds and switches for [`diff_traces`].
///
/// All thresholds are optional; with none set the diff is purely
/// informational and [`DiffReport::passed`] is always true.
#[derive(Debug, Clone, Default)]
pub struct DiffConfig {
    /// Fail when any phase's p50 grows by more than this percentage.
    pub max_phase_p50_growth_pct: Option<f64>,
    /// Fail when any phase's total time grows by more than this
    /// percentage.
    pub max_phase_total_growth_pct: Option<f64>,
    /// Fail when total round time grows by more than this percentage.
    pub max_round_total_growth_pct: Option<f64>,
    /// Skip the manifest compatibility check (comparing across seeds
    /// or schemes on purpose). The report notes the override.
    pub ignore_manifest: bool,
}

/// Per-phase latency statistics on both sides.
///
/// Samples are per-round: each round contributes the summed duration
/// of its direct children with this name (or, for the pseudo-phase
/// `"round"`, the round span's own duration).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Phase name (`"selection"`, `"local_update"`, …, or `"round"`).
    pub name: String,
    /// Rounds contributing a sample on the baseline side.
    pub base_count: usize,
    /// Rounds contributing a sample on the candidate side.
    pub cand_count: usize,
    /// Baseline median per-round µs.
    pub base_p50_us: f64,
    /// Candidate median per-round µs.
    pub cand_p50_us: f64,
    /// Baseline 99th-percentile per-round µs.
    pub base_p99_us: f64,
    /// Candidate 99th-percentile per-round µs.
    pub cand_p99_us: f64,
    /// Baseline total µs across all rounds.
    pub base_total_us: u64,
    /// Candidate total µs across all rounds.
    pub cand_total_us: u64,
}

impl PhaseDelta {
    /// True when the two sides are identical in every statistic.
    pub fn is_zero(&self) -> bool {
        self.base_count == self.cand_count
            && self.base_p50_us == self.cand_p50_us
            && self.base_p99_us == self.cand_p99_us
            && self.base_total_us == self.cand_total_us
    }

    /// Candidate-over-baseline growth of a statistic, in percent.
    /// `None` when the baseline is zero (growth undefined).
    fn growth_pct(base: f64, cand: f64) -> Option<f64> {
        (base > 0.0).then(|| (cand - base) / base * 100.0)
    }

    /// p50 growth percentage, when defined.
    pub fn p50_growth_pct(&self) -> Option<f64> {
        Self::growth_pct(self.base_p50_us, self.cand_p50_us)
    }

    /// Total-time growth percentage, when defined.
    pub fn total_growth_pct(&self) -> Option<f64> {
        Self::growth_pct(self.base_total_us as f64, self.cand_total_us as f64)
    }
}

/// One side of a metric comparison, reduced to comparable numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSide {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary: sample count plus approximate quantiles
    /// (None when no positive-normal sample exists).
    Histogram {
        /// Total samples.
        count: u64,
        /// Approximate median (bucket midpoint).
        p50: Option<f64>,
        /// Approximate 99th percentile (bucket midpoint).
        p99: Option<f64>,
    },
}

impl MetricSide {
    fn render(&self) -> String {
        match self {
            MetricSide::Counter(v) => v.to_string(),
            MetricSide::Gauge(v) => format!("{v}"),
            MetricSide::Histogram { count, p50, p99 } => format!(
                "n={count} ~p50={} ~p99={}",
                p50.map_or("-".to_string(), |v| format!("{v:.3}")),
                p99.map_or("-".to_string(), |v| format!("{v:.3}")),
            ),
        }
    }
}

/// One metric name's presence and value on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Determinism class as recorded (`"sim"` / `"runtime"`).
    pub class: String,
    /// Baseline value; `None` when the metric is candidate-only.
    pub baseline: Option<MetricSide>,
    /// Candidate value; `None` when the metric is baseline-only.
    pub candidate: Option<MetricSide>,
}

impl MetricDelta {
    /// True when both sides exist and are equal.
    pub fn is_zero(&self) -> bool {
        self.baseline.is_some() && self.baseline == self.candidate
    }
}

/// Audit outcomes on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditDelta {
    /// Baseline violation count.
    pub base_violations: usize,
    /// Candidate violation count.
    pub cand_violations: usize,
    /// Rounds audited on the baseline side.
    pub base_rounds_audited: usize,
    /// Rounds audited on the candidate side.
    pub cand_rounds_audited: usize,
    /// Invariant names violated by the candidate but not the baseline.
    pub new_invariants: Vec<String>,
}

/// One phase's contribution to the round-time delta.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Phase name.
    pub name: String,
    /// Candidate minus baseline total µs (signed).
    pub delta_us: i64,
    /// This phase's share of the round-time delta, in percent; `None`
    /// when the round delta is zero.
    pub share_pct: Option<f64>,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The pseudo-phase `"round"`: whole-round durations.
    pub round: PhaseDelta,
    /// Per-phase deltas, ordered by descending absolute total delta
    /// (name-tiebroken).
    pub phases: Vec<PhaseDelta>,
    /// Per-metric deltas, name-ordered; zero-delta entries included so
    /// JSON consumers see the full registry.
    pub metrics: Vec<MetricDelta>,
    /// Audit comparison; `None` when either side is structurally
    /// unauditable (noted in `notes`).
    pub audit: Option<AuditDelta>,
    /// Round-time delta decomposed per phase, ranked by |impact|.
    pub attribution: Vec<Attribution>,
    /// Round delta left unattributed by phase totals (self time /
    /// coverage gaps), µs.
    pub residual_us: i64,
    /// Threshold violations; empty means [`DiffReport::passed`].
    pub failures: Vec<String>,
    /// Non-fatal observations (manifest override, unauditable side,
    /// one-sided phases).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when no configured threshold was exceeded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// True when the two traces agree exactly: same phase set, every
    /// phase and metric delta zero, equal round statistics.
    pub fn zero_delta(&self) -> bool {
        self.round.is_zero()
            && self.phases.iter().all(PhaseDelta::is_zero)
            && self.metrics.iter().all(MetricDelta::is_zero)
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> JsonObject {
        let phase_json = |p: &PhaseDelta| {
            let mut o = JsonObject::new();
            o.field("name", &p.name)
                .field("base_count", p.base_count)
                .field("cand_count", p.cand_count)
                .field("base_p50_us", p.base_p50_us)
                .field("cand_p50_us", p.cand_p50_us)
                .field("base_p99_us", p.base_p99_us)
                .field("cand_p99_us", p.cand_p99_us)
                .field("base_total_us", p.base_total_us)
                .field("cand_total_us", p.cand_total_us);
            o
        };
        let metric_json = |m: &MetricDelta| {
            let side = |s: &Option<MetricSide>| {
                s.as_ref().map(|s| match s {
                    MetricSide::Counter(v) => {
                        let mut o = JsonObject::new();
                        o.field("counter", *v);
                        o
                    }
                    MetricSide::Gauge(v) => {
                        let mut o = JsonObject::new();
                        o.field("gauge", *v);
                        o
                    }
                    MetricSide::Histogram { count, p50, p99 } => {
                        let mut o = JsonObject::new();
                        o.field("count", *count).field("p50", *p50).field("p99", *p99);
                        o
                    }
                })
            };
            let mut o = JsonObject::new();
            o.field("name", &m.name)
                .field("class", &m.class)
                .field("baseline", side(&m.baseline))
                .field("candidate", side(&m.candidate))
                .field("zero", m.is_zero());
            o
        };
        let attributions: Vec<JsonObject> = self
            .attribution
            .iter()
            .map(|a| {
                let mut o = JsonObject::new();
                o.field("name", &a.name)
                    .field("delta_us", a.delta_us)
                    .field("share_pct", a.share_pct);
                o
            })
            .collect();
        let mut o = JsonObject::new();
        o.field("passed", self.passed())
            .field("zero_delta", self.zero_delta())
            .object("round", phase_json(&self.round))
            .field("phases", self.phases.iter().map(phase_json).collect::<Vec<_>>())
            .field("metrics", self.metrics.iter().map(metric_json).collect::<Vec<_>>())
            .field("attribution", attributions)
            .field("residual_us", self.residual_us);
        if let Some(a) = &self.audit {
            let mut audit = JsonObject::new();
            audit
                .field("base_violations", a.base_violations)
                .field("cand_violations", a.cand_violations)
                .field("base_rounds_audited", a.base_rounds_audited)
                .field("cand_rounds_audited", a.cand_rounds_audited)
                .field("new_invariants", a.new_invariants.clone());
            o.object("audit", audit);
        } else {
            o.field("audit", Option::<bool>::None);
        }
        o.field("failures", self.failures.clone()).field("notes", self.notes.clone());
        o
    }

    /// Multi-line human rendering. A fully identical comparison
    /// contains the stable phrase `zero deltas` (grepped by CI).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let r = &self.round;
        let _ = writeln!(
            out,
            "diff: {verdict} — {} vs {} round(s), round total {} → {} µs{}",
            r.base_count,
            r.cand_count,
            r.base_total_us,
            r.cand_total_us,
            r.total_growth_pct()
                .map_or(String::new(), |g| format!(" ({g:+.2}%)")),
        );
        if self.zero_delta() {
            let _ = writeln!(
                out,
                "  zero deltas: every phase and metric identical across the two traces"
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "phase", "base p50", "cand p50", "base total", "cand total", "Δtotal"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<16} {:>12.1} {:>12.1} {:>12} {:>12} {:>9}",
                p.name,
                p.base_p50_us,
                p.cand_p50_us,
                p.base_total_us,
                p.cand_total_us,
                p.cand_total_us as i64 - p.base_total_us as i64,
            );
        }
        if !self.attribution.is_empty() {
            let round_delta = r.cand_total_us as i64 - r.base_total_us as i64;
            let _ = writeln!(
                out,
                "  attribution of {round_delta:+} µs round delta (ranked by impact):"
            );
            for a in &self.attribution {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>+10} µs{}",
                    a.name,
                    a.delta_us,
                    a.share_pct.map_or(String::new(), |s| format!(" ({s:+.1}% of Δ)")),
                );
            }
            let _ = writeln!(out, "    {:<16} {:>+10} µs (self time / coverage gap)", "residual", self.residual_us);
        }
        let changed: Vec<&MetricDelta> =
            self.metrics.iter().filter(|m| !m.is_zero()).collect();
        if changed.is_empty() {
            let _ = writeln!(out, "  metrics: {} compared, all identical", self.metrics.len());
        } else {
            let _ = writeln!(
                out,
                "  metrics: {} compared, {} changed:",
                self.metrics.len(),
                changed.len()
            );
            for m in changed {
                let _ = writeln!(
                    out,
                    "    {} [{}]: {} → {}",
                    m.name,
                    m.class,
                    m.baseline.as_ref().map_or("absent".to_string(), MetricSide::render),
                    m.candidate.as_ref().map_or("absent".to_string(), MetricSide::render),
                );
            }
        }
        if let Some(a) = &self.audit {
            let _ = writeln!(
                out,
                "  audit: {} → {} violation(s) over {} → {} audited round(s){}",
                a.base_violations,
                a.cand_violations,
                a.base_rounds_audited,
                a.cand_rounds_audited,
                if a.new_invariants.is_empty() {
                    String::new()
                } else {
                    format!("; new invariants broken: {}", a.new_invariants.join(", "))
                },
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        for failure in &self.failures {
            let _ = writeln!(out, "  FAIL: {failure}");
        }
        out
    }
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Per-round phase samples: name → one in-round summed duration per
/// round, plus the `"round"` pseudo-phase.
fn phase_samples(trace: &Trace, tree: &SpanTree<'_>) -> BTreeMap<String, Vec<f64>> {
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for span in trace.spans.iter().filter(|s| s.name == "round") {
        samples.entry("round".to_string()).or_default().push(span.dur_us as f64);
        let mut in_round: BTreeMap<&str, u64> = BTreeMap::new();
        for child in tree.children(span.id) {
            *in_round.entry(child.name.as_str()).or_insert(0) += child.dur_us;
        }
        for (name, total) in in_round {
            samples.entry(name.to_string()).or_default().push(total as f64);
        }
    }
    samples
}

fn phase_delta(name: &str, base: &[f64], cand: &[f64]) -> PhaseDelta {
    let stat = |xs: &[f64]| {
        let mut a = xs.to_vec();
        let p50 = percentile(&mut a, 0.50);
        let p99 = percentile(&mut a, 0.99);
        let total = xs.iter().sum::<f64>() as u64;
        (p50, p99, total)
    };
    let (base_p50, base_p99, base_total) = stat(base);
    let (cand_p50, cand_p99, cand_total) = stat(cand);
    PhaseDelta {
        name: name.to_string(),
        base_count: base.len(),
        cand_count: cand.len(),
        base_p50_us: base_p50,
        cand_p50_us: cand_p50,
        base_p99_us: base_p99,
        cand_p99_us: cand_p99,
        base_total_us: base_total,
        cand_total_us: cand_total,
    }
}

/// Reduces one parsed metric entry to a comparable [`MetricSide`].
fn metric_side(entry: &JsonValue) -> Option<(String, MetricSide)> {
    let kind = entry.get("kind")?.as_str()?;
    let class = entry.get("class")?.as_str()?.to_string();
    let value = entry.get("value")?;
    let side = match kind {
        "counter" => MetricSide::Counter(value.as_f64()? as u64),
        "gauge" => MetricSide::Gauge(value.as_f64()?),
        "histogram" => {
            // Rebuild bucket state so quantiles come from the same
            // approx_quantile the live registry uses.
            let mut h = Histogram::new();
            h.count = value.get("count").and_then(JsonValue::as_f64)? as u64;
            if let Some(JsonValue::Object(members)) = value.get("buckets") {
                for (exp, n) in members {
                    let exponent: i16 = exp.parse().ok()?;
                    let n = n.as_f64()? as u64;
                    h.buckets.insert(exponent, n);
                }
            }
            MetricSide::Histogram {
                count: h.count,
                p50: h.approx_quantile(0.50),
                p99: h.approx_quantile(0.99),
            }
        }
        _ => return None,
    };
    Some((class, side))
}

/// Flattens a trace's final metrics line to name → (class, side).
fn metric_map(trace: &Trace) -> BTreeMap<String, (String, MetricSide)> {
    let mut map = BTreeMap::new();
    if let Some(JsonValue::Object(members)) = &trace.metrics {
        for (name, entry) in members {
            if let Some((class, side)) = metric_side(entry) {
                map.insert(name.clone(), (class, side));
            }
        }
    }
    map
}

/// Checks manifest compatibility between the two traces.
///
/// # Errors
///
/// Returns the refusal reason: a one-sided manifest, a run-count
/// mismatch, or (per run, in order) any incompatible identity field —
/// the message names the field and both values.
fn check_manifests(
    baseline: &Trace,
    candidate: &Trace,
    cfg: &DiffConfig,
    notes: &mut Vec<String>,
) -> Result<(), String> {
    if cfg.ignore_manifest {
        notes.push("manifest compatibility check skipped (--ignore-manifest)".to_string());
        return Ok(());
    }
    match (baseline.manifests.is_empty(), candidate.manifests.is_empty()) {
        (true, true) => {
            notes.push(
                "no run manifests on either side (pre-manifest traces); \
                 provenance unchecked"
                    .to_string(),
            );
            return Ok(());
        }
        (true, false) => {
            return Err("baseline has no run manifest but candidate does; \
                        re-record the baseline or pass --ignore-manifest"
                .to_string());
        }
        (false, true) => {
            return Err("candidate has no run manifest but baseline does; \
                        re-record the candidate or pass --ignore-manifest"
                .to_string());
        }
        (false, false) => {}
    }
    if baseline.manifests.len() != candidate.manifests.len() {
        return Err(format!(
            "run count differs: baseline holds {} manifest(s), candidate {}",
            baseline.manifests.len(),
            candidate.manifests.len()
        ));
    }
    for (i, (b, c)) in
        baseline.manifests.iter().zip(&candidate.manifests).enumerate()
    {
        b.compatible(c).map_err(|e| {
            format!("incompatible manifests (run {i}): {e}")
        })?;
        // Checkpoint lineage is provenance, not identity: a resumed
        // run is pinned bit-identical to the uninterrupted one, so the
        // comparison proceeds — but the note keeps it honest (a
        // resumed side holds only the rounds after its start_round).
        for (side, m) in [("baseline", b), ("candidate", c)] {
            if let Some(checksum) = &m.resumed_from {
                let from = m
                    .start_round
                    .map_or_else(String::new, |r| format!(", rounds {r}.."));
                notes.push(format!(
                    "{side} run {i} resumed from checkpoint {checksum}{from}"
                ));
            }
        }
    }
    Ok(())
}

/// Compares two traces. See the module docs for what is computed.
///
/// # Errors
///
/// Returns the refusal reason when the traces are not comparable:
/// incompatible or one-sided [`RunManifest`]s (unless
/// [`DiffConfig::ignore_manifest`]), unresolvable span parents, or a
/// side with no `round` spans at all.
pub fn diff_traces(
    baseline: &Trace,
    candidate: &Trace,
    cfg: &DiffConfig,
) -> Result<DiffReport, String> {
    let mut notes = Vec::new();
    check_manifests(baseline, candidate, cfg, &mut notes)?;
    let base_tree = SpanTree::build(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand_tree = SpanTree::build(candidate).map_err(|e| format!("candidate: {e}"))?;
    let base_samples = phase_samples(baseline, &base_tree);
    let cand_samples = phase_samples(candidate, &cand_tree);
    if base_samples.get("round").is_none_or(Vec::is_empty) {
        return Err("baseline has no round spans — was a federated run traced?".to_string());
    }
    if cand_samples.get("round").is_none_or(Vec::is_empty) {
        return Err("candidate has no round spans — was a federated run traced?".to_string());
    }

    let empty: Vec<f64> = Vec::new();
    let mut names: Vec<&String> =
        base_samples.keys().chain(cand_samples.keys()).collect();
    names.sort();
    names.dedup();
    let mut round = None;
    let mut phases = Vec::new();
    for name in names {
        let base = base_samples.get(name).unwrap_or(&empty);
        let cand = cand_samples.get(name).unwrap_or(&empty);
        let delta = phase_delta(name, base, cand);
        if base.is_empty() || cand.is_empty() {
            notes.push(format!(
                "phase {name:?} present only in the {}",
                if base.is_empty() { "candidate" } else { "baseline" }
            ));
        }
        if name == "round" {
            round = Some(delta);
        } else {
            phases.push(delta);
        }
    }
    let round = round.expect("round samples checked non-empty above");

    // Attribution: decompose the round-time delta into per-phase
    // total-time deltas; what phases don't explain is the residual.
    let round_delta = round.cand_total_us as i64 - round.base_total_us as i64;
    let mut attribution: Vec<Attribution> = phases
        .iter()
        .map(|p| {
            let delta_us = p.cand_total_us as i64 - p.base_total_us as i64;
            Attribution {
                name: p.name.clone(),
                delta_us,
                share_pct: (round_delta != 0)
                    .then(|| delta_us as f64 / round_delta as f64 * 100.0),
            }
        })
        .collect();
    attribution.sort_by(|a, b| {
        b.delta_us.abs().cmp(&a.delta_us.abs()).then(a.name.cmp(&b.name))
    });
    let attributed: i64 = attribution.iter().map(|a| a.delta_us).sum();
    let residual_us = round_delta - attributed;
    // Rank the phase table by impact too.
    phases.sort_by(|a, b| {
        let da = (a.cand_total_us as i64 - a.base_total_us as i64).abs();
        let db = (b.cand_total_us as i64 - b.base_total_us as i64).abs();
        db.cmp(&da).then(a.name.cmp(&b.name))
    });

    // Metrics diff over the union of both registries.
    let base_metrics = metric_map(baseline);
    let cand_metrics = metric_map(candidate);
    let mut metric_names: Vec<&String> =
        base_metrics.keys().chain(cand_metrics.keys()).collect();
    metric_names.sort();
    metric_names.dedup();
    let metrics: Vec<MetricDelta> = metric_names
        .into_iter()
        .map(|name| {
            let base = base_metrics.get(name);
            let cand = cand_metrics.get(name);
            MetricDelta {
                name: name.clone(),
                class: base
                    .or(cand)
                    .map(|(class, _)| class.clone())
                    .unwrap_or_default(),
                baseline: base.map(|(_, s)| s.clone()),
                candidate: cand.map(|(_, s)| s.clone()),
            }
        })
        .collect();
    if base_metrics.is_empty() && cand_metrics.is_empty() {
        notes.push("no metrics line on either side; registry diff empty".to_string());
    }

    // Audit both sides; a structurally unauditable side is a note, not
    // a refusal — phase timing still compares.
    let audit_cfg = AuditConfig::default();
    let audit_delta = match (audit(baseline, &audit_cfg), audit(candidate, &audit_cfg)) {
        (Ok(b), Ok(c)) => {
            let base_names: std::collections::BTreeSet<&str> =
                b.violations.iter().map(|v| v.invariant).collect();
            let mut new_invariants: Vec<String> = c
                .violations
                .iter()
                .map(|v| v.invariant)
                .filter(|i| !base_names.contains(i))
                .map(str::to_string)
                .collect();
            new_invariants.sort();
            new_invariants.dedup();
            Some(AuditDelta {
                base_violations: b.violations.len(),
                cand_violations: c.violations.len(),
                base_rounds_audited: b.rounds_audited,
                cand_rounds_audited: c.rounds_audited,
                new_invariants,
            })
        }
        (b, c) => {
            if let Err(e) = b {
                notes.push(format!("baseline unauditable: {e}"));
            }
            if let Err(e) = c {
                notes.push(format!("candidate unauditable: {e}"));
            }
            None
        }
    };

    // Thresholds.
    let mut failures = Vec::new();
    if let Some(max) = cfg.max_round_total_growth_pct {
        if let Some(growth) = round.total_growth_pct() {
            if growth > max {
                failures.push(format!(
                    "round total grew {growth:+.2}% (budget {max:.2}%)"
                ));
            }
        }
    }
    for p in &phases {
        if let Some(max) = cfg.max_phase_p50_growth_pct {
            if let Some(growth) = p.p50_growth_pct() {
                if growth > max {
                    failures.push(format!(
                        "phase {} p50 grew {growth:+.2}% (budget {max:.2}%)",
                        p.name
                    ));
                }
            }
        }
        if let Some(max) = cfg.max_phase_total_growth_pct {
            if let Some(growth) = p.total_growth_pct() {
                if growth > max {
                    failures.push(format!(
                        "phase {} total grew {growth:+.2}% (budget {max:.2}%)",
                        p.name
                    ));
                }
            }
        }
    }

    Ok(DiffReport {
        round,
        phases,
        metrics,
        audit: audit_delta,
        attribution,
        residual_us,
        failures,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_SCHEMA_VERSION;

    fn span_line(id: u64, name: &str, parent: Option<u64>, t: u64, dur: u64) -> String {
        let parent = parent.map_or("null".to_string(), |p| p.to_string());
        format!(
            r#"{{"type":"span","name":"{name}","id":{id},"parent":{parent},"t_us":{t},"dur_us":{dur}}}"#
        )
    }

    fn manifest_line(seed: u64, scheme: &str) -> String {
        format!(
            r#"{{"type":"run_manifest","schema_version":{MANIFEST_SCHEMA_VERSION},"seed":{seed},"scheme":"{scheme}","config_fingerprint":"aa","threads":1,"trace_mode":"full","fleet_size":10,"build_profile":"release"}}"#
        )
    }

    fn simple_trace(seed: u64, work_us: u64) -> Trace {
        let text = [
            manifest_line(seed, "helcfl"),
            span_line(3, "selection", Some(2), 0, 100),
            span_line(4, "local_update", Some(2), 100, work_us),
            span_line(2, "round", None, 0, 200 + work_us),
            format!(
                r#"{{"type":"metrics","metrics":{{"round.completed":{{"kind":"counter","class":"sim","value":1}},"work":{{"kind":"gauge","class":"sim","value":{work_us}}}}}}}"#
            ),
        ]
        .join("\n");
        Trace::parse(&text).unwrap()
    }

    #[test]
    fn self_diff_reports_zero_deltas_and_passes() {
        let trace = simple_trace(42, 900);
        let cfg = DiffConfig {
            max_phase_p50_growth_pct: Some(0.0),
            max_phase_total_growth_pct: Some(0.0),
            max_round_total_growth_pct: Some(0.0),
            ..DiffConfig::default()
        };
        let report = diff_traces(&trace, &trace, &cfg).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.zero_delta());
        assert!(report.round.is_zero());
        assert!(report.phases.iter().all(PhaseDelta::is_zero));
        assert!(report.metrics.iter().all(MetricDelta::is_zero));
        assert_eq!(report.residual_us, 0);
        let rendered = report.render();
        assert!(rendered.contains("zero deltas"), "{rendered}");
        assert!(crate::json::validate(&report.to_json().finish()).is_ok());
    }

    #[test]
    fn regression_is_attributed_to_the_grown_phase() {
        let base = simple_trace(42, 900);
        let cand = simple_trace(42, 1900);
        let report = diff_traces(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(!report.zero_delta());
        // local_update grew by 1000 µs and ranks first.
        assert_eq!(report.attribution[0].name, "local_update");
        assert_eq!(report.attribution[0].delta_us, 1000);
        assert_eq!(report.attribution[0].share_pct, Some(100.0));
        assert_eq!(report.phases[0].name, "local_update");
        assert_eq!(report.residual_us, 0);
        // The gauge changed; the counter did not.
        let gauge = report.metrics.iter().find(|m| m.name == "work").unwrap();
        assert!(!gauge.is_zero());
        let counter =
            report.metrics.iter().find(|m| m.name == "round.completed").unwrap();
        assert!(counter.is_zero());
    }

    #[test]
    fn thresholds_gate_growth() {
        let base = simple_trace(42, 900);
        let cand = simple_trace(42, 1900);
        let cfg = DiffConfig {
            max_phase_total_growth_pct: Some(50.0),
            ..DiffConfig::default()
        };
        let report = diff_traces(&base, &cand, &cfg).unwrap();
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("local_update")),
            "{:?}",
            report.failures
        );
        // Within budget: passes.
        let loose = DiffConfig {
            max_phase_total_growth_pct: Some(200.0),
            ..DiffConfig::default()
        };
        assert!(diff_traces(&base, &cand, &loose).unwrap().passed());
    }

    #[test]
    fn resumed_runs_diff_cleanly_and_are_noted() {
        let base = simple_trace(42, 900);
        // Same experiment, but the candidate trace was produced by a
        // process that resumed from a checkpoint at round 17.
        let mut cand = simple_trace(42, 900);
        cand.manifests[0].resumed_from = Some("deadbeefdeadbeef".to_string());
        cand.manifests[0].start_round = Some(17);
        let report = diff_traces(&base, &cand, &DiffConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        let note = report
            .notes
            .iter()
            .find(|n| n.contains("resumed from checkpoint"))
            .expect("lineage note missing");
        assert!(note.contains("candidate"), "{note}");
        assert!(note.contains("deadbeefdeadbeef"), "{note}");
        assert!(note.contains("rounds 17.."), "{note}");
    }

    #[test]
    fn mismatched_manifests_are_refused_by_name() {
        let base = simple_trace(42, 900);
        let cand = simple_trace(43, 900);
        let err = diff_traces(&base, &cand, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        assert!(err.contains("42") && err.contains("43"), "{err}");

        // --ignore-manifest overrides, with a note.
        let cfg = DiffConfig { ignore_manifest: true, ..DiffConfig::default() };
        let report = diff_traces(&base, &cand, &cfg).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("skipped")), "{:?}", report.notes);
    }

    #[test]
    fn one_sided_manifest_is_refused() {
        let with = simple_trace(42, 900);
        let text = [
            span_line(3, "selection", Some(2), 0, 100),
            span_line(2, "round", None, 0, 200),
        ]
        .join("\n");
        let without = Trace::parse(&text).unwrap();
        let err = diff_traces(&without, &with, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("baseline has no run manifest"), "{err}");
        let err = diff_traces(&with, &without, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("candidate has no run manifest"), "{err}");

        // Two manifest-free traces compare fine (pre-manifest era).
        let report = diff_traces(&without, &without, &DiffConfig::default()).unwrap();
        assert!(report.zero_delta());
        assert!(report.notes.iter().any(|n| n.contains("no run manifests")));
    }

    #[test]
    fn run_count_mismatch_is_refused() {
        let one = simple_trace(42, 900);
        let two_text = [one
            .manifests[0]
            .to_json_line(), one.manifests[0].to_json_line(),
            span_line(2, "round", None, 0, 100)]
        .join("\n");
        let two = Trace::parse(&two_text).unwrap();
        let err = diff_traces(&one, &two, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("run count differs"), "{err}");
    }

    #[test]
    fn roundless_sides_are_refused() {
        let good = simple_trace(42, 900);
        let empty_text = [manifest_line(42, "helcfl"), span_line(9, "setup", None, 0, 5)]
            .join("\n");
        let empty = Trace::parse(&empty_text).unwrap();
        let err = diff_traces(&empty, &good, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("baseline has no round spans"), "{err}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut xs, 0.50), 3.0);
        assert_eq!(percentile(&mut xs, 0.99), 5.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn histogram_metrics_compare_by_count_and_quantiles() {
        let hist = |count: u64, bucket: i16, n: u64| {
            format!(
                r#"{{"kind":"histogram","class":"sim","value":{{"count":{count},"underflow":0,"negative":0,"infinite":0,"nan":0,"min":1.0,"max":2.0,"buckets":{{"{bucket}":{n}}}}}}}"#
            )
        };
        let make = |h: &str| {
            let text = [
                manifest_line(1, "helcfl"),
                span_line(2, "round", None, 0, 100),
                format!(r#"{{"type":"metrics","metrics":{{"lat":{h}}}}}"#),
            ]
            .join("\n");
            Trace::parse(&text).unwrap()
        };
        let a = make(&hist(10, 0, 10));
        let same = make(&hist(10, 0, 10));
        let moved = make(&hist(10, 3, 10));
        let report = diff_traces(&a, &same, &DiffConfig::default()).unwrap();
        assert!(report.metrics.iter().all(MetricDelta::is_zero));
        let report = diff_traces(&a, &moved, &DiffConfig::default()).unwrap();
        let lat = report.metrics.iter().find(|m| m.name == "lat").unwrap();
        assert!(!lat.is_zero());
        match (&lat.baseline, &lat.candidate) {
            (
                Some(MetricSide::Histogram { p50: Some(b), .. }),
                Some(MetricSide::Histogram { p50: Some(c), .. }),
            ) => {
                assert_eq!(*b, 1.5);
                assert_eq!(*c, 12.0);
            }
            other => panic!("unexpected sides: {other:?}"),
        }
    }
}
