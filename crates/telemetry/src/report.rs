//! Post-run summary rendering.
//!
//! [`TelemetryReport`] turns a merged [`MetricsRegistry`] into a
//! compact, human-readable block that bench binaries print after a
//! run — counters and gauges one per line, histograms with count,
//! range, and approximate p50/p99.

use std::fmt;

use crate::metrics::{Class, Metric, MetricsRegistry};

/// A renderable snapshot of a metrics registry.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    registry: MetricsRegistry,
}

impl TelemetryReport {
    /// Captures a snapshot of `registry`.
    pub fn new(registry: MetricsRegistry) -> Self {
        Self { registry }
    }

    /// True when there is nothing to report.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// The underlying registry snapshot.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

/// Formats a value with engineering-style precision: integers plain,
/// small magnitudes with enough decimals to be meaningful.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{v:.0}");
    }
    let magnitude = v.abs();
    if magnitude >= 100.0 {
        format!("{v:.1}")
    } else if magnitude >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.registry.is_empty() {
            return writeln!(f, "telemetry: no metrics recorded");
        }
        writeln!(f, "telemetry report ({} metrics)", self.registry.len())?;
        for (name, class, metric) in self.registry.iter() {
            let tag = match class {
                Class::Sim => "sim",
                Class::Runtime => "rt ",
            };
            match metric {
                Metric::Counter(v) => {
                    writeln!(f, "  [{tag}] {name:<36} = {v}")?;
                }
                Metric::Gauge(v) => {
                    writeln!(f, "  [{tag}] {name:<36} = {}", fmt_f64(*v))?;
                }
                Metric::Histogram(h) => {
                    write!(f, "  [{tag}] {name:<36} n={}", h.count)?;
                    if h.finite_count() > 0 {
                        write!(
                            f,
                            " min={} max={}",
                            fmt_f64(h.min),
                            fmt_f64(h.max)
                        )?;
                    }
                    if let Some(p50) = h.approx_quantile(0.5) {
                        write!(f, " ~p50={}", fmt_f64(p50))?;
                    }
                    if let Some(p99) = h.approx_quantile(0.99) {
                        write!(f, " ~p99={}", fmt_f64(p99))?;
                    }
                    let odd = h.underflow + h.negative + h.infinite + h.nan;
                    if odd > 0 {
                        write!(
                            f,
                            " (zero/sub={} neg={} inf={} nan={})",
                            h.underflow, h.negative, h.infinite, h.nan
                        )?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_every_metric_kind() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Class::Sim, "selection.selected", 42);
        r.gauge_set(Class::Runtime, "pool.workers", 4.0);
        r.record(Class::Sim, "round.slack_s", 0.5);
        r.record(Class::Sim, "round.slack_s", f64::INFINITY);
        let text = TelemetryReport::new(r).to_string();
        assert!(text.contains("selection.selected"), "{text}");
        assert!(text.contains("= 42"), "{text}");
        assert!(text.contains("pool.workers"), "{text}");
        assert!(text.contains("round.slack_s"), "{text}");
        assert!(text.contains("inf=1"), "{text}");
    }

    #[test]
    fn empty_report_says_so() {
        let text = TelemetryReport::new(MetricsRegistry::new()).to_string();
        assert!(text.contains("no metrics"), "{text}");
    }
}
