//! Hierarchical spans with monotonic timings.
//!
//! A [`Span`] measures one region of work against the telemetry
//! epoch's monotonic clock and reports itself to the active sink when
//! it ends (explicitly via [`Span::end`] or implicitly on drop).
//! Children created with [`Span::child`] record their parent's id, so
//! a trace consumer can rebuild the tree even though JSONL lines
//! appear in *completion* order (children before parents).
//!
//! When telemetry is disabled or running metrics-only, spans are inert
//! zero-allocation shells — the fast path is a single `Option` check.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::sink::{Event, EventKind};
use crate::Shared;

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl Value {
    /// Writes this value as `key: value` into a JSON object builder.
    pub(crate) fn write_field(&self, o: &mut crate::json::JsonObject, key: &str) {
        match self {
            Value::U64(v) => o.field(key, *v),
            Value::I64(v) => o.field(key, *v),
            Value::F64(v) => o.field(key, *v),
            Value::Bool(v) => o.field(key, *v),
            Value::Str(v) => o.field(key, v.as_str()),
        };
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

struct SpanInner {
    shared: Arc<Shared>,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    attrs: Vec<(&'static str, Value)>,
}

/// A live measurement of one region of work.
///
/// Ends (and reports to the sink) when dropped or when [`Span::end`]
/// is called. Inert when telemetry is disabled.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// An inert span that measures and emits nothing.
    pub(crate) fn noop() -> Self {
        Self { inner: None }
    }

    pub(crate) fn start(
        shared: Arc<Shared>,
        name: &'static str,
        parent: Option<u64>,
    ) -> Self {
        let id = shared.next_id();
        Self {
            inner: Some(SpanInner {
                shared,
                name,
                id,
                parent,
                start: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Attaches an attribute; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value.into()));
        }
        self
    }

    /// Attaches an attribute in place (for spans held in a variable).
    pub fn set(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value.into()));
        }
    }

    /// Starts a child span of this one.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.inner {
            Some(inner) => Span::start(Arc::clone(&inner.shared), name, Some(inner.id)),
            None => Span::noop(),
        }
    }

    /// Elapsed time since the span started (zero when inert).
    pub fn elapsed(&self) -> std::time::Duration {
        match &self.inner {
            Some(inner) => inner.start.elapsed(),
            None => std::time::Duration::ZERO,
        }
    }

    /// Ends the span now, reporting it to the sink.
    ///
    /// Equivalent to dropping it, but reads better at the end of a
    /// block than a bare `drop(span)`.
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur = inner.start.elapsed();
        let t_us = inner
            .start
            .saturating_duration_since(inner.shared.epoch)
            .as_micros() as u64;
        inner.shared.sink.emit(&Event {
            kind: EventKind::Span,
            name: inner.name,
            id: inner.id,
            parent: inner.parent,
            t_us,
            dur_us: Some(dur.as_micros() as u64),
            attrs: &inner.attrs,
        });
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Span")
                .field("name", &inner.name)
                .field("id", &inner.id)
                .field("parent", &inner.parent)
                .finish_non_exhaustive(),
            None => f.write_str("Span(noop)"),
        }
    }
}
