//! Run provenance manifests.
//!
//! Every traced run opens its stream with one
//! `{"type":"run_manifest",...}` line describing *what produced the
//! bytes that follow*: manifest schema version, master seed, scheme
//! name, a fingerprint of the semantic training configuration, the
//! resolved worker count, the trace mode (full or digest), the fleet
//! size, and the build profile. The read side
//! ([`crate::analyze::Trace`]) collects these into
//! [`crate::analyze::Trace::manifests`], and cross-run comparison
//! ([`crate::diff`]) refuses to diff traces whose manifests are
//! [incompatible](RunManifest::compatible) — comparing a seed-7 HELCFL
//! run against a seed-9 FedCS run produces numbers, but not evidence.
//!
//! Identity versus environment: `schema_version`, `seed`, `scheme`,
//! `config_fingerprint`, and `fleet_size` define the *experiment* and
//! must match for a comparison to be meaningful. `threads`,
//! `trace_mode`, and `build_profile` describe *how it was recorded* —
//! histories are bit-identical across all three by construction, so
//! they are allowed to differ (that is exactly the comparison a perf
//! investigation wants: same experiment, different environment).

use crate::json::{JsonObject, JsonValue};

/// Version of the `run_manifest` line format. Bump on any breaking
/// change to the field set; readers refuse to compare across versions.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64-bit hash, rendered as 16 lowercase hex digits.
///
/// The workspace's standard cheap fingerprint (the fault-determinism
/// suite pins histories with the same function); used here to reduce a
/// training configuration to a comparable token.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Provenance of one traced run. See the module docs for which fields
/// are identity and which are environment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Scheme / selector name (`"helcfl"`, `"fedcs"`, …).
    pub scheme: String,
    /// Fingerprint over the semantic training configuration (fields
    /// that change the simulated experiment; trace shape, worker count,
    /// and the seed itself are excluded).
    pub config_fingerprint: String,
    /// Resolved worker-thread count (environment; may differ).
    pub threads: usize,
    /// `"full"` or `"digest"` (environment; may differ).
    pub trace_mode: String,
    /// Device population size.
    pub fleet_size: usize,
    /// `"release"` or `"debug"` (environment; may differ).
    pub build_profile: String,
    /// Checkpoint lineage: the FNV-1a checksum of the checkpoint this
    /// run resumed from, absent for uninterrupted runs. Lineage
    /// describes *how the bytes were produced*, not what experiment
    /// they describe — a resumed run is pinned bit-identical to the
    /// uninterrupted one, so lineage never affects
    /// [`RunManifest::compatible`].
    pub resumed_from: Option<String>,
    /// First round the resumed process executed (1-based), absent for
    /// uninterrupted runs.
    pub start_round: Option<u64>,
}

fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    let f = v.get(key)?.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
}

fn field_str(v: &JsonValue, key: &str) -> Option<String> {
    Some(v.get(key)?.as_str()?.to_string())
}

impl RunManifest {
    /// Renders the manifest as its one JSONL trace line.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.field("type", "run_manifest")
            .field("schema_version", u64::from(self.schema_version))
            .field("seed", self.seed)
            .field("scheme", &self.scheme)
            .field("config_fingerprint", &self.config_fingerprint)
            .field("threads", self.threads)
            .field("trace_mode", &self.trace_mode)
            .field("fleet_size", self.fleet_size)
            .field("build_profile", &self.build_profile);
        if let Some(resumed_from) = &self.resumed_from {
            o.field("resumed_from", resumed_from);
        }
        if let Some(start_round) = self.start_round {
            o.field("start_round", start_round);
        }
        o.finish()
    }

    /// One-line human rendering (the stderr sink's format).
    pub fn to_human_line(&self) -> String {
        let mut line = format!(
            "run_manifest scheme={} seed={} fleet={} mode={} threads={} \
             config={} profile={} schema=v{}",
            self.scheme,
            self.seed,
            self.fleet_size,
            self.trace_mode,
            self.threads,
            self.config_fingerprint,
            self.build_profile,
            self.schema_version,
        );
        if let Some(resumed_from) = &self.resumed_from {
            line.push_str(&format!(" resumed_from={resumed_from}"));
        }
        if let Some(start_round) = self.start_round {
            line.push_str(&format!(" start_round={start_round}"));
        }
        line
    }

    /// Decodes a parsed `run_manifest` JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let miss = |f: &str| format!("run_manifest without {f}");
        Ok(Self {
            schema_version: field_u64(v, "schema_version")
                .ok_or_else(|| miss("schema_version"))? as u32,
            seed: field_u64(v, "seed").ok_or_else(|| miss("seed"))?,
            scheme: field_str(v, "scheme").ok_or_else(|| miss("scheme"))?,
            config_fingerprint: field_str(v, "config_fingerprint")
                .ok_or_else(|| miss("config_fingerprint"))?,
            threads: field_u64(v, "threads").ok_or_else(|| miss("threads"))? as usize,
            trace_mode: field_str(v, "trace_mode").ok_or_else(|| miss("trace_mode"))?,
            fleet_size: field_u64(v, "fleet_size").ok_or_else(|| miss("fleet_size"))?
                as usize,
            build_profile: field_str(v, "build_profile")
                .ok_or_else(|| miss("build_profile"))?,
            // Lineage fields are optional: pre-checkpoint traces (and
            // every uninterrupted run) simply don't carry them.
            resumed_from: field_str(v, "resumed_from"),
            start_round: field_u64(v, "start_round"),
        })
    }

    /// Whether two runs are comparable, i.e. describe the same
    /// experiment.
    ///
    /// Identity fields (`schema_version`, `seed`, `scheme`,
    /// `config_fingerprint`, `fleet_size`) must match; environment
    /// fields (`threads`, `trace_mode`, `build_profile`) may differ —
    /// histories are pinned bit-identical across those by the
    /// determinism suites, so comparing them is the point.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first mismatched identity field and
    /// both values.
    pub fn compatible(&self, other: &RunManifest) -> Result<(), String> {
        if self.schema_version != other.schema_version {
            return Err(format!(
                "schema_version differs: baseline v{}, candidate v{}",
                self.schema_version, other.schema_version
            ));
        }
        if self.seed != other.seed {
            return Err(format!(
                "seed differs: baseline {}, candidate {}",
                self.seed, other.seed
            ));
        }
        if self.scheme != other.scheme {
            return Err(format!(
                "scheme differs: baseline {:?}, candidate {:?}",
                self.scheme, other.scheme
            ));
        }
        if self.config_fingerprint != other.config_fingerprint {
            return Err(format!(
                "config_fingerprint differs: baseline {}, candidate {}",
                self.config_fingerprint, other.config_fingerprint
            ));
        }
        if self.fleet_size != other.fleet_size {
            return Err(format!(
                "fleet_size differs: baseline {}, candidate {}",
                self.fleet_size, other.fleet_size
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn manifest() -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            seed: 42,
            scheme: "helcfl".to_string(),
            config_fingerprint: "deadbeefdeadbeef".to_string(),
            threads: 4,
            trace_mode: "full".to_string(),
            fleet_size: 100,
            build_profile: "release".to_string(),
            resumed_from: None,
            start_round: None,
        }
    }

    #[test]
    fn json_line_round_trips() {
        let m = manifest();
        let line = m.to_json_line();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("run_manifest"));
        let back = RunManifest::from_json(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn decode_names_the_missing_field() {
        let line = manifest().to_json_line().replace("\"seed\":42,", "");
        let v = parse(&line).unwrap();
        let err = RunManifest::from_json(&v).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn identity_mismatches_are_refused_by_name() {
        let base = manifest();
        type Mutator = Box<dyn Fn(&mut RunManifest)>;
        let cases: [(&str, Mutator); 5] = [
            ("schema_version", Box::new(|m| m.schema_version = 2)),
            ("seed", Box::new(|m| m.seed = 7)),
            ("scheme", Box::new(|m| m.scheme = "fedcs".to_string())),
            ("config_fingerprint", Box::new(|m| {
                m.config_fingerprint = "0000000000000000".to_string();
            })),
            ("fleet_size", Box::new(|m| m.fleet_size = 99)),
        ];
        for (field, mutate) in cases {
            let mut other = base.clone();
            mutate(&mut other);
            let err = base.compatible(&other).unwrap_err();
            assert!(err.contains(field), "field {field} not named in {err:?}");
        }
    }

    #[test]
    fn environment_differences_stay_compatible() {
        let base = manifest();
        let mut other = base.clone();
        other.threads = 8;
        other.trace_mode = "digest".to_string();
        other.build_profile = "debug".to_string();
        assert!(base.compatible(&other).is_ok());
        assert!(other.compatible(&base).is_ok());
    }

    #[test]
    fn lineage_round_trips_and_never_breaks_compatibility() {
        let mut resumed = manifest();
        resumed.resumed_from = Some("deadbeefdeadbeef".to_string());
        resumed.start_round = Some(17);
        let line = resumed.to_json_line();
        let back = RunManifest::from_json(&parse(&line).unwrap()).unwrap();
        assert_eq!(back, resumed);
        // Resumed-vs-uninterrupted is exactly the comparison the chaos
        // harness makes: lineage is provenance, not identity.
        let uninterrupted = manifest();
        assert!(resumed.compatible(&uninterrupted).is_ok());
        assert!(uninterrupted.compatible(&resumed).is_ok());
        // Both renderings surface the lineage.
        let human = resumed.to_human_line();
        assert!(human.contains("resumed_from=deadbeefdeadbeef"), "{human}");
        assert!(human.contains("start_round=17"), "{human}");
        // A pre-lineage line (no fields) parses to None, not an error.
        assert_eq!(back.resumed_from.as_deref(), Some("deadbeefdeadbeef"));
        let old = manifest().to_json_line();
        let old_back = RunManifest::from_json(&parse(&old).unwrap()).unwrap();
        assert_eq!(old_back.resumed_from, None);
        assert_eq!(old_back.start_round, None);
    }

    #[test]
    fn fnv_fingerprint_is_stable_and_input_sensitive() {
        // Pinned vector: FNV-1a 64 of the empty input is the offset
        // basis; any drift here silently invalidates every recorded
        // manifest.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), fnv1a_hex(b"a"));
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }

    #[test]
    fn human_line_carries_the_identity_fields() {
        let line = manifest().to_human_line();
        for needle in ["scheme=helcfl", "seed=42", "fleet=100", "mode=full"] {
            assert!(line.contains(needle), "{line}");
        }
    }
}
