//! Theory-invariant audit: replay a trace against the analytic model.
//!
//! The HELCFL schedule comes with guarantees that hold by construction
//! *inside* the simulator — Alg. 3's DVFS never extends the round
//! (delay-neutrality), slack is non-negative by definition, TDMA
//! serializes uploads, and `E^cal ∝ f²` means down-scaling only saves
//! energy. Delay-neutrality is a *per-policy* contract: the traced
//! runner stamps each round's `timeline` span with the frequency
//! policy's `delay_neutral` claim, and only claiming rounds are held
//! to the bound (FEDL's closed-form optimum deliberately trades round
//! delay for energy). This module re-derives each guarantee from
//! nothing but the emitted trace: the per-device attributes on `device_activity` spans
//! (see `RoundTimeline::trace_into` in `mec-sim`) are replayed through
//! an independent reimplementation of the TDMA queue, and the final
//! metrics line is cross-checked against the span stream. A violation
//! therefore means either the simulator or its telemetry broke — the
//! closed loop the observability layer exists for.
//!
//! # Fault-era traces
//!
//! Traces from the fault-injection engine (`FaultedRound`) extend the
//! device spans with planned-vs-effective attributes (`f_planned_hz`,
//! `planned_compute_finish_s`, `planned_upload_s`), delivery flags
//! (`uploaded`, `delivered`, `retries`), `wasted_energy_j`, and a
//! `fault` kind; the timeline span gains `fault_fired`,
//! `deadline_s`/`deadline_fired`, and `selected`/`delivered` counts.
//! Every new attribute is decoded with a backward-compatible default,
//! so pre-fault traces audit exactly as before. On faulted rounds the
//! contract shifts: slack and TDMA serialization apply only to devices
//! that actually transmitted, the `E ∝ f²` equality applies only to
//! undisturbed deliveries (faulted energies must merely stay under the
//! at-`f_max` reference), wasted joules must reconcile with delivery
//! outcomes, and delay-neutrality is checked **at plan time** — the
//! DVFS assignment must have been sound before the fault hit; the
//! degraded actual makespan is exempt.
//!
//! Like [`crate::analyze`], everything here is a read-only consumer of
//! a finished trace; auditing cannot perturb a run.

use std::fmt;

use crate::analyze::{SpanTree, Trace, TraceSpan};
use crate::json::JsonValue;
use crate::metrics::Histogram;

/// Tolerances for the floating-point comparisons.
///
/// The replayed quantities (`compute_finish · f / f_max`, TDMA queue
/// arithmetic) repeat the simulator's own `f64` operations in a
/// different association order, so exact equality is not available;
/// the defaults absorb a few ulps of drift while staying far below
/// any physically meaningful difference.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Relative tolerance for approximate comparisons.
    pub rel_tol: f64,
    /// Absolute tolerance floor (guards comparisons near zero).
    pub abs_tol: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { rel_tol: 1e-6, abs_tol: 1e-9 }
    }
}

impl AuditConfig {
    /// `a ≈ b` under this config.
    fn close(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.abs_tol + self.rel_tol * a.abs().max(b.abs())
    }

    /// `a ≤ b` up to tolerance.
    fn le(&self, a: f64, b: f64) -> bool {
        a <= b + self.abs_tol + self.rel_tol * a.abs().max(b.abs())
    }
}

/// One broken invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant name (`"slack-nonnegative"`, …).
    pub invariant: &'static str,
    /// The `index` attribute of the offending round span, when the
    /// violation is round-scoped.
    pub round: Option<u64>,
    /// The offending span id, when one exists.
    pub span: Option<u64>,
    /// Human-readable specifics (device, values, bounds).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.invariant)?;
        if let Some(round) = self.round {
            write!(f, " round {round}")?;
        }
        if let Some(span) = self.span {
            write!(f, " (span {span})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Outcome of an audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// `round` spans seen in the trace.
    pub rounds: usize,
    /// Rounds that carried auditable device activity.
    pub rounds_audited: usize,
    /// Audited rounds whose `timeline` span claimed delay-neutrality
    /// (`delay_neutral:true`) and were therefore held to the
    /// all-at-`f_max` makespan bound.
    pub rounds_delay_neutral: usize,
    /// Audited rounds where a fault fired (a device-level fault event,
    /// a round deadline cut, or the timeline's `fault_fired` flag).
    pub rounds_faulted: usize,
    /// Faulted rounds that claimed delay-neutrality and were therefore
    /// audited against the *plan-time* TDMA replay instead of the
    /// degraded actual makespan.
    pub rounds_fault_exempt: usize,
    /// Audited rounds traced in digest mode (`cohort_digest` span):
    /// exemplar devices replayed exactly, totals reconciled against the
    /// digest aggregates, full-cohort TDMA replay skipped.
    pub rounds_digest: usize,
    /// Total `device_activity` spans replayed.
    pub devices_audited: usize,
    /// Metrics-line cross-checks performed.
    pub metrics_checked: usize,
    /// `run_manifest` lines seen (0 on pre-manifest traces).
    pub manifests: usize,
    /// Manifests carrying checkpoint lineage (`resumed_from`): runs
    /// whose trace holds only the rounds after their resume point. The
    /// auditor replays whatever rounds are present — lineage changes
    /// nothing about the invariants, only how many rounds there are.
    pub manifests_resumed: usize,
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary (verdict first, then each violation).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: {} — {} rounds ({} audited, {} delay-neutral, \
             {} faulted, {} plan-time exempt, {} digest), {} device \
             activities, {} metrics checks, {} manifest(s), {} violations",
            if self.passed() { "PASS" } else { "FAIL" },
            self.rounds,
            self.rounds_audited,
            self.rounds_delay_neutral,
            self.rounds_faulted,
            self.rounds_fault_exempt,
            self.rounds_digest,
            self.devices_audited,
            self.metrics_checked,
            self.manifests,
            self.violations.len()
        );
        if self.manifests_resumed > 0 {
            let _ = writeln!(
                out,
                "  {} run(s) resumed from a checkpoint (trace holds only \
                 post-resume rounds)",
                self.manifests_resumed
            );
        }
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
        out
    }
}

/// One device's activity, decoded from a `device_activity` span.
///
/// Fault-era attributes fall back to values that make a pre-fault span
/// behave as an undisturbed delivery: planned quantities default to
/// the actuals, `uploaded`/`delivered` default to `true`, wasted
/// energy and retries to zero, and `fault` to `None`.
struct Activity {
    device: String,
    device_id: u64,
    f: f64,
    f_planned: f64,
    f_max: f64,
    compute_finish: f64,
    planned_compute_finish: f64,
    planned_upload: f64,
    upload_start: f64,
    upload_end: f64,
    compute_energy: f64,
    compute_energy_at_max: f64,
    upload_energy: f64,
    wasted_energy: f64,
    uploaded: bool,
    delivered: bool,
    retries: u64,
    fault: Option<String>,
}

impl Activity {
    fn decode(span: &TraceSpan) -> Result<Self, String> {
        let need = |key: &str| {
            span.attr_f64(key).ok_or_else(|| {
                format!(
                    "device_activity span {} lacks numeric attr {key:?}",
                    span.id
                )
            })
        };
        let f = need("f_hz")?;
        let compute_finish = need("compute_finish_s")?;
        let upload_start = need("upload_start_s")?;
        let upload_end = need("upload_end_s")?;
        Ok(Self {
            device: span.attr_str("device").unwrap_or("?").to_string(),
            device_id: span.attr_u64("device_id").ok_or_else(|| {
                format!("device_activity span {} lacks attr \"device_id\"", span.id)
            })?,
            f,
            f_planned: span.attr_f64("f_planned_hz").unwrap_or(f),
            f_max: need("f_max_hz")?,
            compute_finish,
            planned_compute_finish: span
                .attr_f64("planned_compute_finish_s")
                .unwrap_or(compute_finish),
            planned_upload: span
                .attr_f64("planned_upload_s")
                .unwrap_or(upload_end - upload_start),
            upload_start,
            upload_end,
            compute_energy: need("compute_energy_j")?,
            compute_energy_at_max: need("compute_energy_at_max_j")?,
            upload_energy: need("upload_energy_j")?,
            wasted_energy: span.attr_f64("wasted_energy_j").unwrap_or(0.0),
            uploaded: span.attr_bool("uploaded").unwrap_or(true),
            delivered: span.attr_bool("delivered").unwrap_or(true),
            retries: span.attr_u64("retries").unwrap_or(0),
            fault: span.attr_str("fault").map(str::to_string),
        })
    }

    /// When the channel releases this device's round contribution: the
    /// upload end when it transmitted, the (possibly truncated)
    /// compute finish when it never reached the channel.
    fn release(&self) -> f64 {
        if self.uploaded {
            self.upload_end
        } else {
            self.compute_finish
        }
    }
}

/// The cohort aggregates of a digest-mode round, decoded from a
/// `cohort_digest` span (see `RoundTimeline::trace_digest_into` /
/// `FaultedRound::trace_digest_into` in `mec-sim`).
///
/// Attributes the healthy timeline's digest does not emit fall back
/// like [`Activity`]'s fault-era ones: `delivered` defaults to the
/// device count, `faults_fired` to zero, and the wasted-energy sum to
/// absent (check skipped).
struct Digest {
    devices: u64,
    exemplars: u64,
    uploads: u64,
    delivered: u64,
    faults_fired: u64,
    energy_sum: f64,
    energy_min: f64,
    energy_max: f64,
    compute_sum: f64,
    wasted_sum: Option<f64>,
    slack_sum: f64,
    slack_min: f64,
    slack_max: f64,
    release_max: f64,
    energy_hist: String,
    slack_hist: String,
}

impl Digest {
    fn decode(span: &TraceSpan) -> Result<Self, String> {
        let need = |key: &str| {
            span.attr_f64(key).ok_or_else(|| {
                format!("cohort_digest span {} lacks numeric attr {key:?}", span.id)
            })
        };
        let need_count = |key: &str| {
            span.attr_u64(key).ok_or_else(|| {
                format!("cohort_digest span {} lacks count attr {key:?}", span.id)
            })
        };
        let need_str = |key: &str| {
            span.attr_str(key).map(str::to_string).ok_or_else(|| {
                format!("cohort_digest span {} lacks string attr {key:?}", span.id)
            })
        };
        let devices = need_count("devices")?;
        Ok(Self {
            devices,
            exemplars: need_count("exemplars")?,
            uploads: need_count("uploads")?,
            delivered: span.attr_u64("delivered").unwrap_or(devices),
            faults_fired: span.attr_u64("faults_fired").unwrap_or(0),
            energy_sum: need("energy_sum_j")?,
            energy_min: need("energy_min_j")?,
            energy_max: need("energy_max_j")?,
            compute_sum: need("compute_energy_sum_j")?,
            wasted_sum: span.attr_f64("wasted_energy_sum_j"),
            slack_sum: need("slack_sum_s")?,
            slack_min: need("slack_min_s")?,
            slack_max: need("slack_max_s")?,
            release_max: need("release_max_s")?,
            energy_hist: need_str("energy_hist")?,
            slack_hist: need_str("slack_hist")?,
        })
    }
}

/// Replays the TDMA queue over `(compute_finish, upload_duration)`
/// pairs, FIFO by compute finish with device-id tie-break — the same
/// discipline as `mec_sim::tdma::TdmaSchedule` — and returns the
/// resulting makespan.
fn replay_tdma(mut jobs: Vec<(f64, f64, u64)>) -> f64 {
    jobs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.2.cmp(&b.2))
    });
    let mut channel_free = 0.0f64;
    for (finish, duration, _) in jobs {
        channel_free = channel_free.max(finish) + duration;
    }
    channel_free
}

/// Audits every round of `trace` against the model invariants.
///
/// Checks, per round with `device_activity` spans under its `timeline`
/// phase:
///
/// * **slack-nonnegative** — `upload_start ≥ compute_finish` for every
///   device that transmitted (a negative wait would mean the channel
///   ran backwards); devices that crashed before reaching the channel
///   never queued and are exempt;
/// * **frequency-bound** — the DVFS-assigned frequency never exceeds
///   the device's `f_max`, and the *effective* frequency never exceeds
///   the assignment (faults can only slow a device down, never speed
///   it up);
/// * **fault-consistency** — the timeline's `fault_fired` flag matches
///   the device-level evidence (a `fault` attribute or a fired
///   deadline), an unfaulted device's actuals equal its plan, and the
///   timeline/quorum `selected`/`delivered` counts agree with the
///   device spans;
/// * **tdma-serialization** — upload windows of transmitting devices,
///   sorted by start, never overlap, and the recorded makespan is the
///   latest channel release clamped to the round deadline;
/// * **delay-neutrality** — for rounds whose `timeline` span carries
///   `delay_neutral:true` (recorded from
///   `FrequencyPolicy::delay_neutral`; HELCFL's slack DVFS and the
///   `f_max` baseline claim it, FEDL's energy/delay tradeoff does
///   not): replaying the round with every device at `f_max` (compute
///   finish rescales by `f / f_max`; upload duration is
///   frequency-independent) through an independent TDMA queue bounds
///   the traced makespan from above — DVFS slow-down must not extend
///   the round (HELCFL Alg. 3's defining guarantee). On rounds where a
///   fault fired the *actual* makespan is legitimately degraded, so
///   the check moves to plan time: the planned schedule at the
///   assigned frequencies must not exceed the planned schedule at
///   `f_max` ("slack ≥ 0 at plan time"); such rounds are tallied in
///   [`AuditReport::rounds_fault_exempt`];
/// * **energy-consistency** — for an undisturbed delivery the
///   per-device compute energy equals the `E ∝ f²` projection
///   `E_max · (f / f_max)²` of the recorded at-`f_max` energy; every
///   device (faulted or not) stays at or below that at-`f_max`
///   reference, and the timeline span's energy/slack totals equal the
///   per-device sums;
/// * **wasted-energy** — a device that failed to deliver wastes
///   exactly its spent joules, a clean delivery wastes none, a
///   delivery after retries wastes at most its upload energy, and the
///   timeline's wasted total equals the per-device sum.
///
/// # Digest-mode rounds
///
/// A round whose `timeline` span carries `digest:true` and a
/// `cohort_digest` child (see `trace_digest_into` in `mec-sim`) is
/// audited under the digest contract (**digest-consistency**): the
/// exemplar `device_activity` spans are replayed through every
/// per-device check above exactly as full-fidelity spans are (a subset
/// of a serial TDMA schedule still must not overlap), the timeline's
/// energy/slack/wasted totals must equal the digest's streaming sums,
/// its makespan must be the digest's `release_max_s` clamped to the
/// deadline, the compact histograms must hold exactly one sample per
/// device, every exemplar value must sit inside the digest extrema,
/// and `selected`/`delivered` counts are taken from the digest. The
/// full-cohort delay-neutrality replay is not reconstructible from K
/// exemplars and is skipped on such rounds.
///
/// Plus, once per trace when a final metrics line exists
/// (**metrics-consistency**): every histogram's category counts sum to
/// its total, `tdma.uploads` equals the number of transmitting devices
/// (per-round: digest counts on digest rounds, `device_activity` spans
/// elsewhere), `round.completed` equals the number of round spans,
/// `round.delivered` and `faults.fired` (when present) agree with the
/// same per-round accounting, and the `round.makespan_s` histogram
/// agrees with the timeline spans on sample count and maximum.
///
/// # Errors
///
/// Returns `Err` when the trace is structurally unauditable — no
/// spans, unresolvable parents, no `device_activity` spans (trace
/// predates per-device emission), or activity spans with missing
/// attributes. Violations are *not* errors; they land in the report.
pub fn audit(trace: &Trace, cfg: &AuditConfig) -> Result<AuditReport, String> {
    if trace.spans.is_empty() {
        return Err("no spans at all — was tracing enabled?".to_string());
    }
    // A manifest from a future schema means the trace may encode
    // semantics this auditor does not know; refuse rather than pass a
    // trace it cannot fully interpret. Manifest-free traces (pre-PR 8)
    // stay auditable.
    for m in &trace.manifests {
        if m.schema_version != crate::manifest::MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "run_manifest schema v{} unsupported (auditor knows v{})",
                m.schema_version,
                crate::manifest::MANIFEST_SCHEMA_VERSION
            ));
        }
    }
    let tree = SpanTree::build(trace)?;
    let mut report = AuditReport {
        manifests: trace.manifests.len(),
        manifests_resumed: trace
            .manifests
            .iter()
            .filter(|m| m.resumed_from.is_some())
            .count(),
        ..AuditReport::default()
    };
    let mut totals = StreamTotals::default();

    for round in trace.spans.iter().filter(|s| s.name == "round") {
        report.rounds += 1;
        let round_no = round.attr_u64("index");
        let mut activities = Vec::new();
        let mut timeline_span: Option<&TraceSpan> = None;
        let mut quorum_span: Option<&TraceSpan> = None;
        for phase in tree.children(round.id) {
            if phase.name == "quorum" {
                quorum_span = Some(phase);
            }
            if phase.name != "timeline" {
                continue;
            }
            timeline_span = Some(phase);
            for act in tree.children(phase.id) {
                if act.name == "device_activity" {
                    activities.push((act.id, Activity::decode(act)?));
                }
            }
        }
        // Digest-mode rounds carry one cohort_digest child under the
        // timeline span; their activities are the sampled exemplars.
        let mut digest: Option<(u64, Digest)> = None;
        if let Some(tl) = timeline_span {
            for child in tree.children(tl.id) {
                if child.name == "cohort_digest" {
                    digest = Some((child.id, Digest::decode(child)?));
                    break;
                }
            }
        }
        if activities.is_empty() && digest.is_none() {
            continue;
        }
        report.rounds_audited += 1;
        report.devices_audited += activities.len();
        if digest.is_some() {
            report.rounds_digest += 1;
        }
        let claims_neutrality = timeline_span
            .and_then(|tl| tl.attr_bool("delay_neutral"))
            .unwrap_or(false);
        if claims_neutrality {
            report.rounds_delay_neutral += 1;
        }
        let deadline = timeline_span.and_then(|tl| tl.attr_f64("deadline_s"));
        let deadline_fired = timeline_span
            .and_then(|tl| tl.attr_bool("deadline_fired"))
            .unwrap_or(false);
        let fault_flag = timeline_span.and_then(|tl| tl.attr_bool("fault_fired"));
        let device_faults =
            activities.iter().filter(|(_, a)| a.fault.is_some()).count();
        let round_faults = match &digest {
            Some((_, d)) => d.faults_fired as usize,
            None => device_faults,
        };
        let faulted = fault_flag.unwrap_or(false) || round_faults > 0 || deadline_fired;
        if faulted {
            report.rounds_faulted += 1;
            if claims_neutrality && digest.is_none() {
                report.rounds_fault_exempt += 1;
            }
        }
        match &digest {
            Some((_, d)) => {
                totals.devices += d.devices;
                totals.uploads += d.uploads;
                totals.delivered += d.delivered;
                totals.faults += d.faults_fired;
            }
            None => {
                totals.devices += activities.len() as u64;
                totals.uploads +=
                    activities.iter().filter(|(_, a)| a.uploaded).count() as u64;
                totals.delivered +=
                    activities.iter().filter(|(_, a)| a.delivered).count() as u64;
                totals.faults += device_faults as u64;
            }
        }
        let mut violation = |invariant, span, detail| {
            report.violations.push(Violation {
                invariant,
                round: round_no.or(Some(round.id)),
                span,
                detail,
            });
        };

        // The timeline's digest flag and the cohort_digest child must
        // come and go together.
        let claims_digest = timeline_span
            .and_then(|tl| tl.attr_bool("digest"))
            .unwrap_or(false);
        if claims_digest != digest.is_some() {
            violation(
                "digest-consistency",
                timeline_span.map(|tl| tl.id),
                format!(
                    "timeline digest flag is {claims_digest} but the round \
                     {} a cohort_digest span",
                    if digest.is_some() { "carries" } else { "lacks" }
                ),
            );
        }

        // The timeline's fault flag must match the round evidence: the
        // digest tally when one exists, the device spans otherwise.
        if let Some(flag) = fault_flag {
            let evidence = round_faults > 0 || deadline_fired;
            if flag != evidence {
                violation(
                    "fault-consistency",
                    timeline_span.map(|tl| tl.id),
                    format!(
                        "timeline claims fault_fired={flag} but the round shows \
                         {round_faults} fault(s) and deadline_fired={deadline_fired}"
                    ),
                );
            }
        }

        for (span_id, a) in &activities {
            if a.uploaded && !cfg.le(a.compute_finish, a.upload_start) {
                violation(
                    "slack-nonnegative",
                    Some(*span_id),
                    format!(
                        "device {}: upload starts at {:.6}s before compute \
                         finishes at {:.6}s (slack {:.3e}s)",
                        a.device,
                        a.upload_start,
                        a.compute_finish,
                        a.upload_start - a.compute_finish
                    ),
                );
            }
            if !cfg.le(a.f_planned, a.f_max) {
                violation(
                    "frequency-bound",
                    Some(*span_id),
                    format!(
                        "device {}: assigned frequency {:.3e}Hz exceeds \
                         f_max {:.3e}Hz",
                        a.device, a.f_planned, a.f_max
                    ),
                );
            }
            if !cfg.le(a.f, a.f_planned) {
                violation(
                    "frequency-bound",
                    Some(*span_id),
                    format!(
                        "device {}: effective frequency {:.3e}Hz exceeds the \
                         DVFS assignment {:.3e}Hz — a fault can only slow a \
                         device down",
                        a.device, a.f, a.f_planned
                    ),
                );
            }
            if a.fault.is_none() && !cfg.close(a.compute_finish, a.planned_compute_finish)
            {
                violation(
                    "fault-consistency",
                    Some(*span_id),
                    format!(
                        "device {}: no fault recorded, yet compute finish \
                         {:.6}s deviates from the plan {:.6}s",
                        a.device, a.compute_finish, a.planned_compute_finish
                    ),
                );
            }
            // E^cal ∝ f² (Eq. 5): both energies come from the same
            // α·W, so an undisturbed delivery's scaled energy must
            // equal the at-f_max reference times (f/f_max)². A faulted
            // device spent *less* (partial compute, truncated upload),
            // so for every device the reference is only an upper
            // bound — down-scaling and dying both save energy.
            if a.f_max > 0.0 {
                if a.fault.is_none() && a.delivered {
                    let projected = a.compute_energy_at_max * (a.f / a.f_max).powi(2);
                    if !cfg.close(a.compute_energy, projected) {
                        violation(
                            "energy-consistency",
                            Some(*span_id),
                            format!(
                                "device {}: compute energy {:.6}J at {:.3e}Hz is \
                                 not the E∝f² projection {:.6}J of the at-f_max \
                                 energy {:.6}J",
                                a.device,
                                a.compute_energy,
                                a.f,
                                projected,
                                a.compute_energy_at_max
                            ),
                        );
                    }
                }
                if !cfg.le(a.compute_energy, a.compute_energy_at_max) {
                    violation(
                        "energy-consistency",
                        Some(*span_id),
                        format!(
                            "device {}: compute energy {:.6}J at the scaled \
                             frequency exceeds the at-f_max energy {:.6}J — \
                             DVFS must only save energy",
                            a.device, a.compute_energy, a.compute_energy_at_max
                        ),
                    );
                }
            }
            // Wasted joules must reconcile with the delivery outcome.
            let spent = a.compute_energy + a.upload_energy;
            if !a.delivered {
                if !cfg.close(a.wasted_energy, spent) {
                    violation(
                        "wasted-energy",
                        Some(*span_id),
                        format!(
                            "device {}: failed delivery must waste its full \
                             {spent:.6}J, recorded {:.6}J",
                            a.device, a.wasted_energy
                        ),
                    );
                }
            } else if a.retries == 0 {
                if !cfg.close(a.wasted_energy, 0.0) {
                    violation(
                        "wasted-energy",
                        Some(*span_id),
                        format!(
                            "device {}: clean delivery wastes nothing, \
                             recorded {:.6}J",
                            a.device, a.wasted_energy
                        ),
                    );
                }
            } else if !cfg.le(a.wasted_energy, a.upload_energy) {
                violation(
                    "wasted-energy",
                    Some(*span_id),
                    format!(
                        "device {}: delivery after {} retries can waste at \
                         most its upload energy {:.6}J, recorded {:.6}J",
                        a.device, a.retries, a.upload_energy, a.wasted_energy
                    ),
                );
            }
        }

        // Digest self-consistency: the aggregates must cohere with
        // each other and bound the replayed exemplars.
        if let Some((digest_id, d)) = &digest {
            if d.exemplars != activities.len() as u64 {
                violation(
                    "digest-consistency",
                    Some(*digest_id),
                    format!(
                        "digest claims {} exemplars but the round carries {} \
                         device_activity spans",
                        d.exemplars,
                        activities.len()
                    ),
                );
            }
            for (what, count) in [
                ("exemplars", d.exemplars),
                ("uploads", d.uploads),
                ("delivered", d.delivered),
                ("faults_fired", d.faults_fired),
            ] {
                if count > d.devices {
                    violation(
                        "digest-consistency",
                        Some(*digest_id),
                        format!(
                            "digest {what}={count} exceeds its device count {}",
                            d.devices
                        ),
                    );
                }
            }
            for (key, encoded) in
                [("energy_hist", &d.energy_hist), ("slack_hist", &d.slack_hist)]
            {
                match Histogram::decode_compact(encoded) {
                    Some(h) if h.count == d.devices => {}
                    Some(h) => violation(
                        "digest-consistency",
                        Some(*digest_id),
                        format!(
                            "digest {key} holds {} samples for {} devices",
                            h.count, d.devices
                        ),
                    ),
                    None => violation(
                        "digest-consistency",
                        Some(*digest_id),
                        format!("digest {key} is malformed: {encoded:?}"),
                    ),
                }
            }
            // Every exemplar's values must sit inside the cohort
            // extrema the digest advertises.
            for (span_id, a) in &activities {
                let energy = a.compute_energy + a.upload_energy;
                if !cfg.le(d.energy_min, energy) || !cfg.le(energy, d.energy_max) {
                    violation(
                        "digest-consistency",
                        Some(*span_id),
                        format!(
                            "exemplar {}: energy {energy:.6}J outside the digest \
                             range [{:.6}, {:.6}]J",
                            a.device, d.energy_min, d.energy_max
                        ),
                    );
                }
                let slack =
                    if a.uploaded { a.upload_start - a.compute_finish } else { 0.0 };
                if !cfg.le(d.slack_min, slack) || !cfg.le(slack, d.slack_max) {
                    violation(
                        "digest-consistency",
                        Some(*span_id),
                        format!(
                            "exemplar {}: slack {slack:.6}s outside the digest \
                             range [{:.6}, {:.6}]s",
                            a.device, d.slack_min, d.slack_max
                        ),
                    );
                }
            }
        }

        // TDMA serialization: transmit windows sorted by start must
        // not overlap. A digest round's exemplars are a subset of a
        // serial schedule, so the no-overlap law survives sampling.
        // Devices that crashed before reaching the
        // channel never occupied it.
        let mut windows: Vec<&Activity> =
            activities.iter().map(|(_, a)| a).filter(|a| a.uploaded).collect();
        windows.sort_by(|a, b| {
            a.upload_start
                .partial_cmp(&b.upload_start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.device_id.cmp(&b.device_id))
        });
        for pair in windows.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            if !cfg.le(prev.upload_end, next.upload_start) {
                violation(
                    "tdma-serialization",
                    None,
                    format!(
                        "uploads overlap: device {} holds the channel until \
                         {:.6}s but device {} starts at {:.6}s",
                        prev.device, prev.upload_end, next.device, next.upload_start
                    ),
                );
            }
        }

        // The round ends when the last contribution releases the
        // channel — or at the deadline, whichever comes first. On a
        // digest round the exemplars need not include the last
        // releaser; the digest's release_max_s stands in for it.
        let natural = match &digest {
            Some((_, d)) => d.release_max,
            None => activities
                .iter()
                .map(|(_, a)| a.release())
                .fold(f64::NEG_INFINITY, f64::max),
        };
        let expected_makespan = deadline.map_or(natural, |t| natural.min(t));
        let actual_makespan = activities
            .iter()
            .map(|(_, a)| a.upload_end)
            .fold(f64::NEG_INFINITY, f64::max);

        // Delay-neutrality: rescale each compute finish to f_max
        // (cycles c = T·f are frequency-invariant, so T_max = T·f/f_max)
        // and replay the TDMA queue. Only rounds whose frequency
        // policy *claimed* the bound (timeline attr `delay_neutral`,
        // from `FrequencyPolicy::delay_neutral`) are held to it —
        // FEDL's closed-form optimum legitimately slows the critical
        // device and extends the round. On faulted rounds the actual
        // makespan is degraded by events DVFS could not foresee, so
        // the claim is audited at plan time instead: the planned
        // schedule at the assigned frequencies must not exceed the
        // planned schedule at f_max.
        // A digest round exposes only its exemplars, so neither TDMA
        // replay can be reconstructed — the claim is witnessed by the
        // full-fidelity rounds and determinism suites instead.
        if claims_neutrality && digest.is_none() {
            if faulted {
                let planned_actual = replay_tdma(
                    activities
                        .iter()
                        .map(|(_, a)| {
                            (a.planned_compute_finish, a.planned_upload, a.device_id)
                        })
                        .collect(),
                );
                let planned_at_max = replay_tdma(
                    activities
                        .iter()
                        .map(|(_, a)| {
                            let finish_at_max = if a.f_max > 0.0 {
                                a.planned_compute_finish * a.f_planned / a.f_max
                            } else {
                                a.planned_compute_finish
                            };
                            (finish_at_max, a.planned_upload, a.device_id)
                        })
                        .collect(),
                );
                if !cfg.le(planned_actual, planned_at_max) {
                    violation(
                        "delay-neutrality",
                        None,
                        format!(
                            "planned makespan {planned_actual:.6}s at the DVFS \
                             assignment exceeds the all-at-f_max plan \
                             {planned_at_max:.6}s — the schedule was unsound \
                             before any fault fired"
                        ),
                    );
                }
            } else {
                let baseline = replay_tdma(
                    activities
                        .iter()
                        .map(|(_, a)| {
                            let finish_at_max = if a.f_max > 0.0 {
                                a.compute_finish * a.f / a.f_max
                            } else {
                                a.compute_finish
                            };
                            (finish_at_max, a.upload_end - a.upload_start, a.device_id)
                        })
                        .collect(),
                );
                if !cfg.le(actual_makespan, baseline) {
                    violation(
                        "delay-neutrality",
                        None,
                        format!(
                            "DVFS-scaled makespan {actual_makespan:.6}s exceeds \
                             the all-at-f_max replay {baseline:.6}s — slow-down \
                             extended the round"
                        ),
                    );
                }
            }
        }

        // Timeline span totals must match the per-device sums — or, on
        // a digest round, the digest's streaming sums (the digest and
        // the timeline attrs are computed from the same resolved
        // schedule, so disagreement means the emission broke). Slack
        // only accrues for devices that reached the channel.
        if let Some(tl) = timeline_span {
            let sums: [(&str, Option<f64>); 4] = match &digest {
                Some((_, d)) => [
                    ("energy_j", Some(d.energy_sum)),
                    ("compute_energy_j", Some(d.compute_sum)),
                    ("wasted_energy_j", d.wasted_sum),
                    ("slack_total_s", Some(d.slack_sum)),
                ],
                None => [
                    (
                        "energy_j",
                        Some(
                            activities
                                .iter()
                                .map(|(_, a)| a.compute_energy + a.upload_energy)
                                .sum(),
                        ),
                    ),
                    (
                        "compute_energy_j",
                        Some(activities.iter().map(|(_, a)| a.compute_energy).sum()),
                    ),
                    (
                        "wasted_energy_j",
                        Some(activities.iter().map(|(_, a)| a.wasted_energy).sum()),
                    ),
                    (
                        "slack_total_s",
                        Some(
                            activities
                                .iter()
                                .filter(|(_, a)| a.uploaded)
                                .map(|(_, a)| a.upload_start - a.compute_finish)
                                .sum(),
                        ),
                    ),
                ],
            };
            for (key, sum) in sums {
                let Some(sum) = sum else { continue };
                if let Some(total) = tl.attr_f64(key) {
                    if !cfg.close(total, sum) {
                        violation(
                            "energy-consistency",
                            Some(tl.id),
                            format!(
                                "timeline attr {key}={total:.9} does not match \
                                 the round sum {sum:.9}"
                            ),
                        );
                    }
                }
            }
            if let Some(makespan) = tl.attr_f64("makespan_s") {
                if !cfg.close(makespan, expected_makespan) {
                    violation(
                        "tdma-serialization",
                        Some(tl.id),
                        format!(
                            "timeline attr makespan_s={makespan:.9} is not the \
                             last channel release {expected_makespan:.9}",
                        ),
                    );
                }
            }
            let (selected, delivered) = match &digest {
                Some((_, d)) => (d.devices, d.delivered),
                None => (
                    activities.len() as u64,
                    activities.iter().filter(|(_, a)| a.delivered).count() as u64,
                ),
            };
            for (source, span_id) in [
                (Some(tl), Some(tl.id)),
                (quorum_span, quorum_span.map(|q| q.id)),
            ] {
                let Some(src) = source else { continue };
                for (key, expect) in [("selected", selected), ("delivered", delivered)] {
                    if let Some(value) = src.attr_u64(key) {
                        if value != expect {
                            violation(
                                "fault-consistency",
                                span_id,
                                format!(
                                    "{} span claims {key}={value} but the \
                                     device spans show {expect}",
                                    src.name
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    if report.rounds_audited == 0 {
        return Err(
            "no device_activity spans found — the trace predates per-device \
             emission; regenerate it with a current build"
                .to_string(),
        );
    }

    audit_metrics(trace, cfg, &totals, &mut report);
    Ok(report)
}

/// Per-round device accounting accumulated while auditing: digest
/// rounds contribute their aggregate counts, full-fidelity rounds the
/// counts of their `device_activity` spans. This is what the final
/// metrics line must agree with — the simulator records metrics from
/// the full round state regardless of trace mode.
#[derive(Debug, Default)]
struct StreamTotals {
    devices: u64,
    uploads: u64,
    delivered: u64,
    faults: u64,
}

/// Cross-checks the final metrics line against the span stream.
fn audit_metrics(
    trace: &Trace,
    cfg: &AuditConfig,
    totals: &StreamTotals,
    report: &mut AuditReport,
) {
    let Some(JsonValue::Object(metrics)) = trace.metrics.as_ref() else {
        return;
    };
    let mut violation = |invariant, detail| {
        report.violations.push(Violation { invariant, round: None, span: None, detail });
    };

    // Histogram self-consistency: the category tallies partition the
    // total count (see Histogram::record).
    for (name, entry) in metrics {
        if entry.get("kind").and_then(JsonValue::as_str) != Some("histogram") {
            continue;
        }
        let Some(value) = entry.get("value") else { continue };
        report.metrics_checked += 1;
        let field = |key: &str| value.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let bucket_sum = match value.get("buckets") {
            Some(JsonValue::Object(buckets)) => {
                buckets.iter().filter_map(|(_, v)| v.as_f64()).sum::<f64>()
            }
            _ => 0.0,
        };
        let partition = field("underflow")
            + field("negative")
            + field("infinite")
            + field("nan")
            + bucket_sum;
        if partition != field("count") {
            violation(
                "metrics-consistency",
                format!(
                    "histogram {name:?}: categories sum to {partition} but \
                     count is {}",
                    field("count")
                ),
            );
        }
    }

    let hist_count = |name: &str| {
        trace
            .metric(name)
            .filter(|m| m.get("kind").and_then(JsonValue::as_str) == Some("histogram"))
            .and_then(|m| m.get("value"))
            .and_then(|v| v.get("count"))
            .and_then(JsonValue::as_f64)
    };

    let rounds = trace.spans.iter().filter(|s| s.name == "round").count() as u64;
    for (counter, expect, what) in [
        ("round.completed", rounds, "round spans"),
        ("tdma.uploads", totals.uploads, "transmitting devices"),
        ("round.delivered", totals.delivered, "delivered devices"),
        ("faults.fired", totals.faults, "device faults"),
    ] {
        if let Some(value) = trace.metric_counter(counter) {
            report.metrics_checked += 1;
            if value != expect {
                violation(
                    "metrics-consistency",
                    format!("counter {counter}={value} but the trace has {expect} {what}"),
                );
            }
        }
    }
    for (hist, expect) in [
        ("round.makespan_s", rounds as f64),
        ("device.energy_j", totals.devices as f64),
        ("tdma.queue_wait_s", totals.uploads as f64),
    ] {
        if let Some(count) = hist_count(hist) {
            report.metrics_checked += 1;
            if count != expect {
                violation(
                    "metrics-consistency",
                    format!(
                        "histogram {hist} holds {count} samples but the trace \
                         implies {expect}"
                    ),
                );
            }
        }
    }
    // The makespan histogram's max must agree with the timeline spans
    // (which already account for deadline clamping and non-uploading
    // crashers).
    let span_max = trace
        .spans
        .iter()
        .filter(|s| s.name == "timeline")
        .filter_map(|s| s.attr_f64("makespan_s"))
        .fold(f64::NEG_INFINITY, f64::max);
    if span_max.is_finite() {
        if let Some(hist_max) = trace
            .metric("round.makespan_s")
            .and_then(|m| m.get("value"))
            .and_then(|v| v.get("max"))
            .and_then(JsonValue::as_f64)
        {
            report.metrics_checked += 1;
            if !cfg.close(hist_max, span_max) {
                violation(
                    "metrics-consistency",
                    format!(
                        "round.makespan_s max={hist_max} but the latest \
                         timeline makespan is {span_max}"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_tdma_serializes_fifo_with_tiebreak() {
        // Two devices finishing together: id order decides; the queue
        // then serializes back-to-back.
        assert_eq!(replay_tdma(vec![(2.0, 5.0, 1), (2.0, 5.0, 0)]), 12.0);
        // A late finisher waits for the channel.
        assert_eq!(replay_tdma(vec![(2.5, 5.0, 0), (10.0, 5.0, 1)]), 15.0);
        assert_eq!(replay_tdma(Vec::new()), 0.0);
    }

    #[test]
    fn close_and_le_respect_tolerances() {
        let cfg = AuditConfig::default();
        assert!(cfg.close(1.0, 1.0 + 1e-9));
        assert!(!cfg.close(1.0, 1.001));
        assert!(cfg.le(1.0, 1.0));
        assert!(cfg.le(1.0 + 1e-9, 1.0));
        assert!(!cfg.le(1.1, 1.0));
    }

    #[test]
    fn audit_rejects_traces_without_device_activity() {
        let text = concat!(
            r#"{"type":"span","name":"timeline","id":3,"parent":2,"t_us":0,"dur_us":1}"#,
            "\n",
            r#"{"type":"span","name":"round","id":2,"parent":null,"t_us":0,"dur_us":2}"#,
        );
        let trace = Trace::parse(text).unwrap();
        let err = audit(&trace, &AuditConfig::default()).unwrap_err();
        assert!(err.contains("no device_activity"), "{err}");
    }

    #[test]
    fn resumed_manifests_are_counted_and_rendered() {
        let report = AuditReport {
            manifests: 2,
            manifests_resumed: 1,
            ..AuditReport::default()
        };
        let rendered = report.render();
        assert!(rendered.contains("2 manifest(s)"), "{rendered}");
        assert!(
            rendered.contains("1 run(s) resumed from a checkpoint"),
            "{rendered}"
        );
        // Lineage is informational, never a violation.
        assert!(report.passed());
        let fresh = AuditReport { manifests: 1, ..AuditReport::default() };
        assert!(!fresh.render().contains("resumed"), "{}", fresh.render());
    }

    #[test]
    fn violation_display_names_invariant_and_round() {
        let v = Violation {
            invariant: "slack-nonnegative",
            round: Some(7),
            span: Some(42),
            detail: "oops".to_string(),
        };
        let text = v.to_string();
        assert!(text.contains("[slack-nonnegative]"), "{text}");
        assert!(text.contains("round 7"), "{text}");
        assert!(text.contains("span 42"), "{text}");
    }
}
