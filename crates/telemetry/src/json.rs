//! Minimal hand-rolled JSON emission and parsing.
//!
//! The workspace's zero-dependency policy leaves no serde; this module
//! is the single place where JSON enters or leaves the process. The
//! emitter half ([`ToJson`], [`JsonObject`]) serves the bench reports
//! under `results/` and the [`crate::JsonlSink`] trace stream; the
//! parser half ([`parse`], [`validate`]) exists so the trace checker
//! can verify that every emitted JSONL line round-trips.
//!
//! (This module originated as `helcfl_bench::json`, which now
//! re-exports it; the telemetry crate sits at the bottom of the
//! dependency graph so every crate can emit structured events.)

use std::fmt::Write as _;

/// A value that can render itself as a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for u32 {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for i64 {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }
}

impl ToJson for f64 {
    /// Rust's shortest-roundtrip `Display` output is valid JSON for
    /// every finite value; non-finite values (which JSON cannot
    /// express) become `null`.
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON object builder.
///
/// # Examples
///
/// ```
/// use helcfl_telemetry::json::{JsonObject, ToJson};
///
/// let mut o = JsonObject::new();
/// o.field("scheme", "helcfl");
/// o.field("accuracy", 0.85);
/// assert_eq!(o.finish(), r#"{"scheme":"helcfl","accuracy":0.85}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::new() }
    }

    /// Appends one `"key": value` member.
    pub fn field<V: ToJson>(&mut self, key: &str, value: V) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self
    }

    /// Appends a member whose value is a nested object.
    pub fn object(&mut self, key: &str, nested: JsonObject) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
        self.buf.push_str(&nested.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

impl ToJson for JsonObject {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{{}}}", self.buf);
    }
}

// ---------------------------------------------------------------------
// Parsing — a strict, allocation-light recursive-descent reader used by
// the trace checker (`check_trace`) and the JSONL tests. Not a DOM for
// application data flow; the simulator itself never *consumes* JSON.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (duplicate keys kept).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted by [`parse`]; prevents stack
/// exhaustion on hostile input.
const MAX_DEPTH: usize = 64;

/// Parses one complete JSON value (with no trailing garbage).
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the
/// first violation.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the input is valid UTF-8).
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: JSON encodes astral
                            // chars as \uD8xx\uDCxx.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // consume the 'u' below expects it
                                if self.peek() != Some(b'\\') {
                                    return Err(format!(
                                        "unpaired surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(format!(
                                        "unpaired surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let c =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(format!(
                                        "invalid code point at byte {}",
                                        self.pos
                                    ))
                                }
                            }
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads the 4 hex digits after a `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let digits = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| format!("invalid \\u escape at byte {start}"))?;
        let cp = u32::from_str_radix(digits, 16)
            .map_err(|_| format!("invalid \\u escape at byte {start}"))?;
        self.pos = end - 1; // leave cursor on the final digit
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("invalid number at byte {start}"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("invalid number at byte {start}"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("unparseable number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(2.0f64.to_json(), "2");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(7u64).to_json(), "7");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("plain".to_json(), r#""plain""#);
        assert_eq!("say \"hi\"\n".to_json(), r#""say \"hi\"\n""#);
        assert_eq!("back\\slash\ttab".to_json(), r#""back\\slash\ttab""#);
        assert_eq!("\u{1}".to_json(), r#""\u0001""#);
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        assert_eq!("η = 0.3".to_json(), r#""η = 0.3""#);
    }

    #[test]
    fn vectors_render_as_arrays() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Vec::<u64>::new().to_json(), "[]");
        assert_eq!(vec![0.25f64, 0.5].to_json(), "[0.25,0.5]");
    }

    #[test]
    fn objects_nest_and_preserve_field_order() {
        let mut inner = JsonObject::new();
        inner.field("gflops", 1.5);
        let mut o = JsonObject::new();
        o.field("name", "matmul").field("runs", 3usize).object("kernel", inner);
        assert_eq!(
            o.finish(),
            r#"{"name":"matmul","runs":3,"kernel":{"gflops":1.5}}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parse_round_trips_emitted_objects() {
        let mut inner = JsonObject::new();
        inner.field("gflops", 1.5).field("label", "a\"b\\c\nd");
        let mut o = JsonObject::new();
        o.field("name", "matmul")
            .field("runs", 3usize)
            .field("ratio", -0.25)
            .field("missing", Option::<u64>::None)
            .field("flags", vec![true, false])
            .object("kernel", inner);
        let text = o.finish();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("name").and_then(JsonValue::as_str), Some("matmul"));
        assert_eq!(parsed.get("runs").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(parsed.get("ratio").and_then(JsonValue::as_f64), Some(-0.25));
        assert_eq!(parsed.get("missing"), Some(&JsonValue::Null));
        assert_eq!(
            parsed.get("kernel").and_then(|k| k.get("label")).and_then(JsonValue::as_str),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn parse_accepts_standard_forms() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("0").unwrap(), JsonValue::Number(0.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(
            parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            JsonValue::String("é😀".to_string())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "tru", "01", "1.", "1e", "+1", "[1,]", "{\"a\":}", "{\"a\" 1}",
            "\"unterminated", "{\"a\":1} extra", "\"\\x\"", "nan", "[1 2]",
            "\"\u{1}\"",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_unbounded_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(validate(&ok).is_ok());
    }
}
