//! Trace interpretation: parsing, span-tree reconstruction, per-round
//! phase breakdowns, critical-path extraction, and the coverage check.
//!
//! The [`crate::JsonlSink`] stream is completion-ordered — children
//! appear *before* their parents, because a child span drops first —
//! so nothing in the file can be read top-down as a tree. [`Trace`]
//! ingests the whole file through the strict parser in [`crate::json`]
//! and [`SpanTree`] rebuilds the hierarchy from the recorded parent
//! ids, tolerating any interleaving of lines.
//!
//! Everything here is a *read-only consumer*: analysis never touches a
//! live [`crate::Telemetry`] handle, so it cannot perturb the
//! determinism guarantees of a traced run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{parse, JsonObject, JsonValue};
use crate::manifest::RunManifest;

/// One completed span read back from a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Unique id within the run.
    pub id: u64,
    /// Span name (`"round"`, `"local_update"`, …).
    pub name: String,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Start time in µs since the telemetry epoch.
    pub t_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Attached attributes, in emission order.
    pub attrs: Vec<(String, JsonValue)>,
}

impl TraceSpan {
    /// End time in µs since the telemetry epoch.
    #[inline]
    pub fn end_us(&self) -> u64 {
        self.t_us + self.dur_us
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&JsonValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric attribute, if present and a number.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attr(key).and_then(JsonValue::as_f64)
    }

    /// Integer attribute (non-negative whole number).
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        let v = self.attr_f64(key)?;
        (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
    }

    /// String attribute, if present and a string.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(JsonValue::as_str)
    }

    /// Boolean attribute, if present and a boolean.
    pub fn attr_bool(&self, key: &str) -> Option<bool> {
        self.attr(key).and_then(JsonValue::as_bool)
    }
}

/// One point event read back from a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Event name.
    pub name: String,
    /// Time in µs since the telemetry epoch.
    pub t_us: u64,
    /// Attached attributes.
    pub attrs: Vec<(String, JsonValue)>,
}

/// A fully parsed trace file.
///
/// Produced by [`Trace::parse`], which enforces the same strictness as
/// the old `check_trace` binary: every line must be a standalone JSON
/// object of a known `type` with the fields that type requires, and
/// span ids must be unique.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in file (completion) order.
    pub spans: Vec<TraceSpan>,
    /// All point events, in file order.
    pub events: Vec<TracePoint>,
    /// The end-of-run metrics object (`{"type":"metrics",...}`), when
    /// present. When a file holds several (one per `finish()` call),
    /// the last one wins — it is the most complete snapshot.
    pub metrics: Option<JsonValue>,
    /// Lines of other tolerated types (e.g. `"round"` records appended
    /// by `TrainingHistory::to_jsonl`).
    pub other_lines: usize,
    /// Run-provenance manifests, in file order. One per traced run; a
    /// multi-run file (e.g. `table1_delay` sweeping several schemes
    /// into one trace) holds several.
    pub manifests: Vec<RunManifest>,
}

fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    let f = v.get(key)?.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
}

fn attrs_of(v: &JsonValue) -> Vec<(String, JsonValue)> {
    match v.get("attrs") {
        Some(JsonValue::Object(members)) => members.clone(),
        _ => Vec::new(),
    }
}

impl Trace {
    /// Parses a whole JSONL trace from its text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed JSON,
    /// an unknown `type`, a missing required field, or a duplicate
    /// span id.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut trace = Trace::default();
        let mut seen_ids = std::collections::HashSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let lineno = lineno + 1;
            if line.trim().is_empty() {
                continue;
            }
            let value =
                parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {lineno}: missing \"type\""))?;
            match kind {
                "span" => {
                    let name = value
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("line {lineno}: span without name"))?
                        .to_string();
                    let id = field_u64(&value, "id")
                        .ok_or_else(|| format!("line {lineno}: span without id"))?;
                    let t_us = field_u64(&value, "t_us")
                        .ok_or_else(|| format!("line {lineno}: span without t_us"))?;
                    let dur_us = field_u64(&value, "dur_us")
                        .ok_or_else(|| format!("line {lineno}: span without dur_us"))?;
                    if !seen_ids.insert(id) {
                        return Err(format!("line {lineno}: duplicate span id {id}"));
                    }
                    trace.spans.push(TraceSpan {
                        id,
                        name,
                        parent: field_u64(&value, "parent"),
                        t_us,
                        dur_us,
                        attrs: attrs_of(&value),
                    });
                }
                "event" => {
                    let name = value
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("line {lineno}: event without name"))?
                        .to_string();
                    let t_us = field_u64(&value, "t_us")
                        .ok_or_else(|| format!("line {lineno}: event without t_us"))?;
                    trace.events.push(TracePoint { name, t_us, attrs: attrs_of(&value) });
                }
                "metrics" => {
                    trace.metrics = value.get("metrics").cloned();
                }
                "run_manifest" => {
                    let m = RunManifest::from_json(&value)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    trace.manifests.push(m);
                }
                // "round" lines come from TrainingHistory::to_jsonl()
                // when a history is appended to a trace stream.
                "round" => trace.other_lines += 1,
                other => {
                    return Err(format!("line {lineno}: unknown type {other:?}"));
                }
            }
        }
        Ok(trace)
    }

    /// Reads and parses a trace file from disk.
    ///
    /// # Errors
    ///
    /// I/O failures and every [`Trace::parse`] condition.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Lenient parse for a trace that is *still being written* (the
    /// `helcfl-trace watch` path): malformed lines — typically one
    /// partially-flushed tail line — and duplicate span ids are skipped
    /// instead of failing, and spans whose parent has not landed yet
    /// are pruned so [`SpanTree::build`] always succeeds on the result.
    ///
    /// Returns the parseable prefix plus the number of lines and spans
    /// dropped. A fully-written trace drops nothing and round-trips
    /// identically to [`Trace::parse`].
    pub fn parse_prefix(text: &str) -> (Self, usize) {
        let mut trace = Trace::default();
        let mut dropped = 0usize;
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            // Every JSONL line is standalone, so the strict parser
            // doubles as a per-line validator.
            match Trace::parse(line) {
                Ok(mut one) => {
                    if let Some(span) = one.spans.pop() {
                        if seen.insert(span.id) {
                            trace.spans.push(span);
                        } else {
                            dropped += 1;
                        }
                    }
                    trace.events.append(&mut one.events);
                    if one.metrics.is_some() {
                        trace.metrics = one.metrics;
                    }
                    trace.other_lines += one.other_lines;
                    trace.manifests.append(&mut one.manifests);
                }
                Err(_) => dropped += 1,
            }
        }
        dropped += prune_orphan_spans(&mut trace);
        (trace, dropped)
    }

    /// Looks up a span by id.
    pub fn span(&self, id: u64) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// A named metric entry from the metrics line, if present:
    /// returns the `{"kind":..,"class":..,"value":..}` object.
    pub fn metric(&self, name: &str) -> Option<&JsonValue> {
        self.metrics.as_ref()?.get(name)
    }

    /// Counter value from the metrics line (None when absent or not a
    /// counter).
    pub fn metric_counter(&self, name: &str) -> Option<u64> {
        let m = self.metric(name)?;
        (m.get("kind")?.as_str()? == "counter")
            .then(|| field_u64(m, "value"))
            .flatten()
    }
}

/// Removes spans whose parent chain does not fully resolve within the
/// trace — the completion-ordered stream writes children before
/// parents, so a file snapshot taken mid-round holds spans whose
/// enclosing `round` has not been emitted yet. Returns how many spans
/// were pruned.
pub fn prune_orphan_spans(trace: &mut Trace) -> usize {
    let mut removed = 0;
    loop {
        let ids: std::collections::HashSet<u64> =
            trace.spans.iter().map(|s| s.id).collect();
        let before = trace.spans.len();
        trace.spans.retain(|s| s.parent.is_none_or(|p| ids.contains(&p)));
        removed += before - trace.spans.len();
        if trace.spans.len() == before {
            return removed;
        }
    }
}

/// The rebuilt span hierarchy of a [`Trace`].
///
/// Children are ordered by start time (`t_us`, ties by id), so walking
/// the tree reads chronologically even though the file is
/// completion-ordered.
#[derive(Debug)]
pub struct SpanTree<'a> {
    trace: &'a Trace,
    /// span id → indices into `trace.spans`, start-time sorted.
    children: BTreeMap<u64, Vec<usize>>,
    /// Indices of parentless spans, start-time sorted.
    roots: Vec<usize>,
}

impl<'a> SpanTree<'a> {
    /// Rebuilds the tree from the flat span list.
    ///
    /// # Errors
    ///
    /// Returns a message if any span references a parent id that does
    /// not occur in the trace.
    pub fn build(trace: &'a Trace) -> Result<Self, String> {
        let ids: std::collections::HashSet<u64> =
            trace.spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, span) in trace.spans.iter().enumerate() {
            match span.parent {
                Some(p) => {
                    if !ids.contains(&p) {
                        return Err(format!(
                            "span {} ({}) references unknown parent {p}",
                            span.id, span.name
                        ));
                    }
                    children.entry(p).or_default().push(i);
                }
                None => roots.push(i),
            }
        }
        let by_start = |a: &usize, b: &usize| {
            let (sa, sb) = (&trace.spans[*a], &trace.spans[*b]);
            sa.t_us.cmp(&sb.t_us).then(sa.id.cmp(&sb.id))
        };
        for list in children.values_mut() {
            list.sort_by(by_start);
        }
        roots.sort_by(by_start);
        Ok(Self { trace, children, roots })
    }

    /// Root spans in start order.
    pub fn roots(&self) -> impl Iterator<Item = &TraceSpan> {
        self.roots.iter().map(|&i| &self.trace.spans[i])
    }

    /// Direct children of a span, in start order.
    pub fn children(&self, id: u64) -> impl Iterator<Item = &TraceSpan> {
        self.children
            .get(&id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.trace.spans[i])
    }

    /// The chain of spans from `id` downward that ends latest — the
    /// critical path: at every level the child whose end time is
    /// maximal (ties broken toward the later start, then higher id).
    pub fn critical_path(&self, id: u64) -> Vec<&TraceSpan> {
        let mut path = Vec::new();
        let Some(mut cur) = self.trace.span(id) else {
            return path;
        };
        path.push(cur);
        // Depth is bounded by the number of spans; the duplicate-id
        // check in Trace::parse makes parent cycles impossible.
        for _ in 0..self.trace.spans.len() {
            let next = self.children(cur.id).max_by(|a, b| {
                a.end_us()
                    .cmp(&b.end_us())
                    .then(a.t_us.cmp(&b.t_us))
                    .then(a.id.cmp(&b.id))
            });
            match next {
                Some(child) => {
                    path.push(child);
                    cur = child;
                }
                None => break,
            }
        }
        path
    }

    fn render_node(&self, out: &mut String, idx: usize, prefix: &str, last: bool, depth: usize, max_depth: usize) {
        let span = &self.trace.spans[idx];
        let branch = if prefix.is_empty() {
            String::new()
        } else if last {
            format!("{prefix}└─ ")
        } else {
            format!("{prefix}├─ ")
        };
        let _ = write!(out, "{branch}{} {:.3}ms", span.name, span.dur_us as f64 / 1000.0);
        for (key, value) in &span.attrs {
            match value {
                JsonValue::String(s) => {
                    let _ = write!(out, " {key}={s}");
                }
                JsonValue::Number(n) => {
                    let _ = write!(out, " {key}={n}");
                }
                JsonValue::Bool(b) => {
                    let _ = write!(out, " {key}={b}");
                }
                _ => {}
            }
        }
        out.push('\n');
        if depth >= max_depth {
            return;
        }
        let kids = self.children.get(&span.id).map(Vec::as_slice).unwrap_or(&[]);
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else if last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let deeper = if prefix.is_empty() { "  ".to_string() } else { child_prefix };
        for (n, &kid) in kids.iter().enumerate() {
            self.render_node(out, kid, &deeper, n + 1 == kids.len(), depth + 1, max_depth);
        }
    }

    /// Renders the subtree under the span `id` as ASCII, to at most
    /// `max_depth` levels below it.
    pub fn render(&self, id: u64, max_depth: usize) -> String {
        let mut out = String::new();
        if let Some(idx) = self.trace.spans.iter().position(|s| s.id == id) {
            self.render_node(&mut out, idx, "", true, 0, max_depth);
        }
        out
    }
}

/// Aggregated per-phase timing across every `round` span of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Child-span name (`"selection"`, `"local_update"`, …).
    pub name: String,
    /// Occurrences across all rounds.
    pub count: usize,
    /// Summed duration in µs.
    pub total_us: u64,
    /// Largest single duration in µs.
    pub max_us: u64,
}

/// The per-round phase breakdown of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Number of `round` spans seen.
    pub rounds: usize,
    /// Summed duration of all `round` spans, µs.
    pub rounds_total_us: u64,
    /// Duration of the longest round and its span id.
    pub longest_round: Option<(u64, u64)>,
    /// Stats per phase name, ordered by descending total time.
    pub phases: Vec<PhaseStat>,
    /// Worst (lowest) per-round direct-child coverage among judgeable
    /// rounds, with the round span id.
    pub worst_coverage: Option<(f64, u64)>,
}

/// Computes the phase breakdown over every `round` span.
pub fn phase_breakdown(trace: &Trace, tree: &SpanTree<'_>) -> PhaseBreakdown {
    let mut stats: BTreeMap<String, PhaseStat> = BTreeMap::new();
    let mut rounds = 0usize;
    let mut rounds_total_us = 0u64;
    let mut longest: Option<(u64, u64)> = None;
    let mut worst: Option<(f64, u64)> = None;
    for span in &trace.spans {
        if span.name != "round" {
            continue;
        }
        rounds += 1;
        rounds_total_us += span.dur_us;
        if longest.is_none_or(|(d, _)| span.dur_us > d) {
            longest = Some((span.dur_us, span.id));
        }
        let mut child_sum = 0u64;
        for child in tree.children(span.id) {
            child_sum += child.dur_us;
            let entry = stats.entry(child.name.clone()).or_insert_with(|| PhaseStat {
                name: child.name.clone(),
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            entry.count += 1;
            entry.total_us += child.dur_us;
            entry.max_us = entry.max_us.max(child.dur_us);
        }
        if span.dur_us as f64 >= MIN_JUDGEABLE_US {
            let coverage = child_sum as f64 / span.dur_us as f64;
            if worst.is_none_or(|(w, _)| coverage < w) {
                worst = Some((coverage, span.id));
            }
        }
    }
    let mut phases: Vec<PhaseStat> = stats.into_values().collect();
    phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    PhaseBreakdown {
        rounds,
        rounds_total_us,
        longest_round: longest,
        phases,
        worst_coverage: worst,
    }
}

impl PhaseBreakdown {
    /// Renders the breakdown as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} rounds, {:.3}ms total round time",
            self.rounds,
            self.rounds_total_us as f64 / 1000.0
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>12} {:>12} {:>12} {:>7}",
            "phase", "count", "total ms", "mean µs", "max µs", "share"
        );
        for p in &self.phases {
            let mean = p.total_us as f64 / p.count.max(1) as f64;
            let share = if self.rounds_total_us > 0 {
                p.total_us as f64 / self.rounds_total_us as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>12.3} {:>12.1} {:>12} {:>6.1}%",
                p.name,
                p.count,
                p.total_us as f64 / 1000.0,
                mean,
                p.max_us,
                share
            );
        }
        if let Some((dur, id)) = self.longest_round {
            let _ = writeln!(
                out,
                "longest round: span {id} at {:.3}ms",
                dur as f64 / 1000.0
            );
        }
        if let Some((coverage, id)) = self.worst_coverage {
            let _ = writeln!(
                out,
                "worst child coverage: {:.1}% (round span {id})",
                coverage * 100.0
            );
        }
        out
    }
}

impl PhaseBreakdown {
    /// The breakdown as a JSON object (the `phases --json` payload).
    pub fn to_json(&self) -> JsonObject {
        let phases: Vec<JsonObject> = self
            .phases
            .iter()
            .map(|p| {
                let mut o = JsonObject::new();
                o.field("name", &p.name)
                    .field("count", p.count)
                    .field("total_us", p.total_us)
                    .field("max_us", p.max_us)
                    .field("mean_us", p.total_us as f64 / p.count.max(1) as f64);
                o
            })
            .collect();
        let mut o = JsonObject::new();
        o.field("rounds", self.rounds)
            .field("rounds_total_us", self.rounds_total_us)
            .field("longest_round_us", self.longest_round.map(|(d, _)| d))
            .field("longest_round_span", self.longest_round.map(|(_, id)| id))
            .field("worst_coverage", self.worst_coverage.map(|(c, _)| c))
            .field("phases", phases);
        o
    }
}

/// Folded-stack export: one `(path, self_us)` entry per distinct span
/// path, in the `a;b;c weight` format flamegraph.pl and speedscope
/// consume.
///
/// The weight is **self time**: a span's duration minus the summed
/// durations of its direct children, clamped at zero (children of a
/// round can overlap the parent's bookkeeping by a µs of rounding).
/// Self time makes the folded stacks additive — summing every line
/// reproduces total root time without double counting — which is the
/// invariant flamegraph renderers assume. Zero-weight paths are
/// omitted; identical paths (e.g. every round's `round;selection`) are
/// merged. Output is sorted by path for byte-stable export.
pub fn folded_stacks(tree: &SpanTree<'_>) -> Vec<(String, u64)> {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    // Iterative DFS: (span, path prefix). Depth is bounded by the span
    // count; parse-time duplicate-id rejection rules out cycles.
    let mut stack: Vec<(&TraceSpan, String)> = tree
        .roots()
        .map(|s| (s, s.name.clone()))
        .collect();
    while let Some((span, path)) = stack.pop() {
        let child_sum: u64 = tree.children(span.id).map(|c| c.dur_us).sum();
        let self_us = span.dur_us.saturating_sub(child_sum);
        if self_us > 0 {
            *folded.entry(path.clone()).or_insert(0) += self_us;
        }
        for child in tree.children(span.id) {
            stack.push((child, format!("{path};{}", child.name)));
        }
    }
    folded.into_iter().collect()
}

/// One round of a trace as a timeseries sample.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPoint {
    /// The round's `index` attribute, when recorded.
    pub index: Option<u64>,
    /// Span id of the round.
    pub span_id: u64,
    /// Start time in µs since the telemetry epoch.
    pub t_us: u64,
    /// Round duration in µs.
    pub dur_us: u64,
    /// Per-phase total µs within the round (direct children of the
    /// round span, summed per name, name-sorted).
    pub phases: Vec<(String, u64)>,
}

/// Extracts the per-round timeseries: one [`RoundPoint`] per `round`
/// span, ordered by round index (rounds without an index sort last,
/// then by start time and span id).
pub fn round_series(trace: &Trace, tree: &SpanTree<'_>) -> Vec<RoundPoint> {
    let mut points: Vec<RoundPoint> = trace
        .spans
        .iter()
        .filter(|s| s.name == "round")
        .map(|span| {
            let mut phases: BTreeMap<String, u64> = BTreeMap::new();
            for child in tree.children(span.id) {
                *phases.entry(child.name.clone()).or_insert(0) += child.dur_us;
            }
            RoundPoint {
                index: span.attr_u64("index"),
                span_id: span.id,
                t_us: span.t_us,
                dur_us: span.dur_us,
                phases: phases.into_iter().collect(),
            }
        })
        .collect();
    points.sort_by(|a, b| {
        a.index
            .unwrap_or(u64::MAX)
            .cmp(&b.index.unwrap_or(u64::MAX))
            .then(a.t_us.cmp(&b.t_us))
            .then(a.span_id.cmp(&b.span_id))
    });
    points
}

/// Minimum trailing samples before a value is judged by [`mad_flags`].
pub const MAD_MIN_HISTORY: usize = 4;

/// Flags anomalous entries of `values` by robust deviation from a
/// trailing window.
///
/// For each value with at least [`MAD_MIN_HISTORY`] earlier samples,
/// the median and MAD (median absolute deviation) of the up-to-`window`
/// most recent *earlier* values are computed; the value is flagged when
/// it deviates from the median by more than `k` deviation units. The
/// unit is the MAD floored at 1 % of the median's magnitude (and an
/// absolute epsilon), so a perfectly flat history — MAD 0 — does not
/// flag µs-level jitter. Median/MAD instead of mean/σ keeps one
/// earlier spike from masking later ones.
pub fn mad_flags(values: &[f64], window: usize, k: f64) -> Vec<bool> {
    let window = window.max(MAD_MIN_HISTORY);
    let mut flags = vec![false; values.len()];
    let median = |sorted: &[f64]| -> f64 {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    };
    for (i, &x) in values.iter().enumerate() {
        if i < MAD_MIN_HISTORY {
            continue;
        }
        let start = i.saturating_sub(window);
        let mut prior: Vec<f64> = values[start..i].to_vec();
        prior.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let med = median(&prior);
        let mut devs: Vec<f64> = prior.iter().map(|v| (v - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mad = median(&devs);
        let scale = mad.max(med.abs() * 0.01).max(1e-12);
        if (x - med).abs() > k * scale {
            flags[i] = true;
        }
    }
    flags
}

/// Coverage below this fails [`check_coverage`].
pub const FAIL_BELOW: f64 = 0.80;
/// Coverage below this warns.
pub const WARN_BELOW: f64 = 0.95;
/// Rounds shorter than this (µs) are not judged for coverage —
/// µs-resolution child timings cannot be compared against them.
pub const MIN_JUDGEABLE_US: f64 = 2000.0;

/// Result of a passing [`check_coverage`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Spans in the trace.
    pub spans: usize,
    /// Point events in the trace.
    pub events: usize,
    /// Metrics / history lines.
    pub metrics_lines: usize,
    /// `round` spans seen.
    pub rounds: usize,
    /// Rounds long enough to judge.
    pub judged: usize,
    /// Warnings issued (coverage in the warn band), as printable text.
    pub warnings: Vec<String>,
    /// Worst coverage among judged rounds.
    pub worst: Option<f64>,
}

impl CoverageReport {
    /// One-line human summary matching the historical `check_trace`
    /// output.
    pub fn summary(&self) -> String {
        format!(
            "{} spans, {} events, {} metrics/round lines, {} rounds \
             ({} coverage-judged, {} warnings{})",
            self.spans,
            self.events,
            self.metrics_lines,
            self.rounds,
            self.judged,
            self.warnings.len(),
            match self.worst {
                Some(w) => format!(", worst coverage {:.1}%", w * 100.0),
                None => String::new(),
            }
        )
    }
}

/// The historical `check_trace` validation: schema strictness is
/// enforced by [`Trace::parse`]; this adds the structural checks —
/// parent links resolve, at least one `round` span exists, and the
/// direct children of every judgeable round cover ≥ 80 % of its
/// wall-clock.
///
/// # Errors
///
/// Returns a failure message naming the first violated property.
pub fn check_coverage(trace: &Trace) -> Result<CoverageReport, String> {
    if trace.spans.is_empty() {
        return Err("no spans at all — was tracing enabled?".to_string());
    }
    let tree = SpanTree::build(trace)?;
    let mut report = CoverageReport {
        spans: trace.spans.len(),
        events: trace.events.len(),
        metrics_lines: trace.other_lines + usize::from(trace.metrics.is_some()),
        rounds: 0,
        judged: 0,
        warnings: Vec::new(),
        worst: None,
    };
    for span in &trace.spans {
        if span.name != "round" {
            continue;
        }
        report.rounds += 1;
        if (span.dur_us as f64) < MIN_JUDGEABLE_US {
            continue;
        }
        report.judged += 1;
        let sum: u64 = tree.children(span.id).map(|c| c.dur_us).sum();
        let coverage = sum as f64 / span.dur_us as f64;
        report.worst = Some(report.worst.map_or(coverage, |w: f64| w.min(coverage)));
        if coverage < FAIL_BELOW {
            return Err(format!(
                "round span {}: children cover only {:.1}% of {} µs (< {:.0}%)",
                span.id,
                coverage * 100.0,
                span.dur_us,
                FAIL_BELOW * 100.0
            ));
        }
        if coverage < WARN_BELOW {
            report.warnings.push(format!(
                "round span {}: child coverage {:.1}% (< {:.0}%)",
                span.id,
                coverage * 100.0,
                WARN_BELOW * 100.0
            ));
        }
    }
    if report.rounds == 0 {
        return Err("no round spans — was a federated run traced?".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(id: u64, name: &str, parent: Option<u64>, t: u64, dur: u64) -> String {
        let parent = parent.map_or("null".to_string(), |p| p.to_string());
        format!(
            r#"{{"type":"span","name":"{name}","id":{id},"parent":{parent},"t_us":{t},"dur_us":{dur}}}"#
        )
    }

    #[test]
    fn parse_collects_spans_events_and_metrics() {
        let text = [
            r#"{"type":"event","name":"pool_resolved","id":1,"parent":null,"t_us":5,"dur_us":null,"attrs":{"workers":4}}"#.to_string(),
            span_line(3, "selection", Some(2), 10, 7),
            span_line(2, "round", None, 9, 100),
            r#"{"type":"round","round":1}"#.to_string(),
            r#"{"type":"metrics","metrics":{"round.completed":{"kind":"counter","class":"sim","value":1}}}"#.to_string(),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.other_lines, 1);
        assert_eq!(trace.metric_counter("round.completed"), Some(1));
        assert_eq!(trace.span(2).unwrap().name, "round");
    }

    #[test]
    fn parse_prefix_skips_partial_tails_and_prunes_orphans() {
        // A snapshot of a growing file: complete round, then a child of
        // a round span that hasn't been emitted yet (completion order),
        // then a half-written line.
        let text = [
            span_line(3, "selection", Some(2), 10, 7),
            span_line(2, "round", None, 9, 100),
            span_line(6, "grandkid", Some(5), 110, 2),
            span_line(5, "local_update", Some(4), 109, 20),
            r#"{"type":"span","name":"tr"#.to_string(),
        ]
        .join("\n");
        let (trace, dropped) = Trace::parse_prefix(&text);
        // Orphan chain 5→4 (missing) pulls 6 down with it; the partial
        // tail is one more drop.
        assert_eq!(dropped, 3);
        let ids: Vec<_> = trace.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 2]);
        assert!(SpanTree::build(&trace).is_ok());

        // A fully-written trace round-trips losslessly.
        let whole = [
            span_line(3, "selection", Some(2), 10, 7),
            span_line(2, "round", None, 9, 100),
        ]
        .join("\n");
        let (lenient, dropped) = Trace::parse_prefix(&whole);
        assert_eq!(dropped, 0);
        assert_eq!(lenient, Trace::parse(&whole).unwrap());

        // Duplicate ids keep the first occurrence instead of erroring.
        let dup = [span_line(2, "a", None, 0, 1), span_line(2, "b", None, 0, 1)].join("\n");
        let (trace, dropped) = Trace::parse_prefix(&dup);
        assert_eq!(dropped, 1);
        assert_eq!(trace.spans[0].name, "a");
    }

    #[test]
    fn parse_rejects_duplicates_and_unknown_types() {
        let dup = [span_line(2, "a", None, 0, 1), span_line(2, "b", None, 0, 1)].join("\n");
        assert!(Trace::parse(&dup).unwrap_err().contains("duplicate span id 2"));
        let unknown = r#"{"type":"mystery"}"#;
        assert!(Trace::parse(unknown).unwrap_err().contains("unknown type"));
        let nofield = r#"{"type":"span","name":"x","id":1,"t_us":0}"#;
        assert!(Trace::parse(nofield).unwrap_err().contains("dur_us"));
    }

    #[test]
    fn tree_reconstructs_completion_ordered_children() {
        // Children appear before parents, and not in start order.
        let text = [
            span_line(5, "late_child", Some(2), 50, 10),
            span_line(3, "early_child", Some(2), 10, 5),
            span_line(4, "grandchild", Some(3), 11, 2),
            span_line(2, "round", None, 9, 100),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let roots: Vec<_> = tree.roots().map(|s| s.id).collect();
        assert_eq!(roots, vec![2]);
        let kids: Vec<_> = tree.children(2).map(|s| s.id).collect();
        assert_eq!(kids, vec![3, 5], "children must come back start-ordered");
        let grand: Vec<_> = tree.children(3).map(|s| s.id).collect();
        assert_eq!(grand, vec![4]);
    }

    #[test]
    fn tree_rejects_unknown_parents() {
        let text = span_line(3, "orphan", Some(99), 0, 1);
        let trace = Trace::parse(&text).unwrap();
        assert!(SpanTree::build(&trace).unwrap_err().contains("unknown parent 99"));
    }

    #[test]
    fn critical_path_follows_latest_end() {
        let text = [
            span_line(3, "short", Some(2), 0, 10),
            span_line(4, "long", Some(2), 5, 90),
            span_line(5, "inner", Some(4), 6, 80),
            span_line(2, "round", None, 0, 100),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let path: Vec<_> = tree.critical_path(2).iter().map(|s| s.id).collect();
        assert_eq!(path, vec![2, 4, 5]);
    }

    #[test]
    fn render_shows_names_durations_and_attrs() {
        let text = [
            r#"{"type":"span","name":"selection","id":3,"parent":2,"t_us":1,"dur_us":500,"attrs":{"alpha":0.25}}"#
                .to_string(),
            span_line(2, "round", None, 0, 2000),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let text = tree.render(2, 8);
        assert!(text.contains("round 2.000ms"), "{text}");
        assert!(text.contains("selection 0.500ms"), "{text}");
        assert!(text.contains("alpha=0.25"), "{text}");
    }

    #[test]
    fn phase_breakdown_aggregates_by_child_name() {
        let text = [
            span_line(3, "selection", Some(2), 0, 100),
            span_line(4, "local_update", Some(2), 100, 900),
            span_line(2, "round", None, 0, 1000),
            span_line(6, "selection", Some(5), 1000, 300),
            span_line(7, "local_update", Some(5), 1300, 2700),
            span_line(5, "round", None, 1000, 3000),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let b = phase_breakdown(&trace, &tree);
        assert_eq!(b.rounds, 2);
        assert_eq!(b.rounds_total_us, 4000);
        assert_eq!(b.longest_round, Some((3000, 5)));
        assert_eq!(b.phases[0].name, "local_update");
        assert_eq!(b.phases[0].total_us, 3600);
        assert_eq!(b.phases[0].count, 2);
        assert_eq!(b.phases[1].name, "selection");
        let rendered = b.render();
        assert!(rendered.contains("local_update"), "{rendered}");
    }

    fn manifest_line(seed: u64) -> String {
        format!(
            r#"{{"type":"run_manifest","schema_version":1,"seed":{seed},"scheme":"helcfl","config_fingerprint":"aa","threads":1,"trace_mode":"full","fleet_size":10,"build_profile":"release"}}"#
        )
    }

    #[test]
    fn parse_collects_manifests_in_order() {
        let text = [
            manifest_line(1),
            span_line(2, "round", None, 0, 10),
            manifest_line(7),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.manifests.len(), 2);
        assert_eq!(trace.manifests[0].seed, 1);
        assert_eq!(trace.manifests[1].seed, 7);

        // parse_prefix keeps them too.
        let (lenient, dropped) = Trace::parse_prefix(&text);
        assert_eq!(dropped, 0);
        assert_eq!(lenient, trace);

        // A malformed manifest is a parse error naming the line.
        let bad = manifest_line(1).replace("\"seed\":1,", "");
        let err = Trace::parse(&bad).unwrap_err();
        assert!(err.contains("line 1") && err.contains("seed"), "{err}");
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        // round(100) = selection(10) + local_update(80) + 10 self;
        // local_update has a grandchild worth 30.
        let text = [
            span_line(3, "selection", Some(2), 0, 10),
            span_line(5, "gemm", Some(4), 12, 30),
            span_line(4, "local_update", Some(2), 10, 80),
            span_line(2, "round", None, 0, 100),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let folded = folded_stacks(&tree);
        let get = |p: &str| folded.iter().find(|(q, _)| q == p).map(|(_, w)| *w);
        assert_eq!(get("round"), Some(10));
        assert_eq!(get("round;selection"), Some(10));
        assert_eq!(get("round;local_update"), Some(50));
        assert_eq!(get("round;local_update;gemm"), Some(30));
        // Additivity: total weight equals total root time.
        let total: u64 = folded.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 100);
        // Paths are sorted for stable export.
        let mut sorted = folded.clone();
        sorted.sort();
        assert_eq!(folded, sorted);
    }

    #[test]
    fn folded_stacks_merge_repeated_paths_and_skip_zero_weights() {
        let text = [
            span_line(3, "work", Some(2), 0, 50),
            span_line(2, "round", None, 0, 50), // zero self time
            span_line(5, "work", Some(4), 50, 70),
            span_line(4, "round", None, 50, 70), // zero self time
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let folded = folded_stacks(&tree);
        assert_eq!(folded, vec![("round;work".to_string(), 120)]);
    }

    #[test]
    fn round_series_orders_by_index_and_sums_phases() {
        // Rounds emitted out of index order; bookkeeping twice in one
        // round must sum.
        let text = [
            r#"{"type":"span","name":"round","id":10,"parent":null,"t_us":500,"dur_us":100,"attrs":{"index":1}}"#
                .to_string(),
            span_line(12, "bookkeeping", Some(11), 0, 3),
            span_line(13, "bookkeeping", Some(11), 90, 4),
            r#"{"type":"span","name":"round","id":11,"parent":null,"t_us":0,"dur_us":100,"attrs":{"index":0}}"#
                .to_string(),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let series = round_series(&trace, &tree);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].index, Some(0));
        assert_eq!(series[0].phases, vec![("bookkeeping".to_string(), 7)]);
        assert_eq!(series[1].index, Some(1));
        assert!(series[1].phases.is_empty());
    }

    #[test]
    fn mad_flags_catch_spikes_and_tolerate_flat_series() {
        // Flat series with µs jitter: MAD is 0, the 1% floor keeps
        // jitter unflagged.
        let flat: Vec<f64> = (0..20).map(|i| 1000.0 + f64::from(i % 2)).collect();
        assert!(mad_flags(&flat, 8, 5.0).iter().all(|f| !f));

        // A 10× spike after warmup is flagged; warmup itself never is.
        let mut spiky = vec![100.0; 12];
        spiky[8] = 1000.0;
        let flags = mad_flags(&spiky, 8, 5.0);
        assert!(flags[8], "{flags:?}");
        assert_eq!(flags.iter().filter(|f| **f).count(), 1, "{flags:?}");
        assert!(!flags[..MAD_MIN_HISTORY].iter().any(|f| *f));

        // Short series: nothing judged at all.
        assert!(mad_flags(&[1.0, 2.0, 3.0], 8, 5.0).iter().all(|f| !f));
    }

    #[test]
    fn phase_breakdown_to_json_is_valid_and_complete() {
        let text = [
            span_line(3, "selection", Some(2), 0, 100),
            span_line(4, "local_update", Some(2), 100, 900),
            span_line(2, "round", None, 0, 1000),
        ]
        .join("\n");
        let trace = Trace::parse(&text).unwrap();
        let tree = SpanTree::build(&trace).unwrap();
        let json = phase_breakdown(&trace, &tree).to_json().finish();
        let v = parse(&json).unwrap();
        assert_eq!(v.get("rounds").and_then(JsonValue::as_f64), Some(1.0));
        let phases = match v.get("phases") {
            Some(JsonValue::Array(a)) => a,
            other => panic!("phases not an array: {other:?}"),
        };
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0].get("name").and_then(JsonValue::as_str),
            Some("local_update")
        );
        assert_eq!(phases[0].get("total_us").and_then(JsonValue::as_f64), Some(900.0));
    }

    #[test]
    fn coverage_check_matches_historical_semantics() {
        // Judgeable round at 100% coverage: passes.
        let ok = [
            span_line(3, "work", Some(2), 0, 2500),
            span_line(2, "round", None, 0, 2500),
        ]
        .join("\n");
        let trace = Trace::parse(&ok).unwrap();
        let report = check_coverage(&trace).unwrap();
        assert_eq!(report.rounds, 1);
        assert_eq!(report.judged, 1);
        assert!(report.warnings.is_empty());
        assert!(report.summary().contains("1 rounds"));

        // 50% coverage on a judgeable round: fails naming the span.
        let bad = [
            span_line(3, "work", Some(2), 0, 5000),
            span_line(2, "round", None, 0, 10000),
        ]
        .join("\n");
        let trace = Trace::parse(&bad).unwrap();
        let err = check_coverage(&trace).unwrap_err();
        assert!(err.contains("round span 2"), "{err}");
        assert!(err.contains("50.0%"), "{err}");

        // Short rounds are skipped, but a trace without rounds fails.
        let short =
            [span_line(2, "round", None, 0, 100)].join("\n");
        let trace = Trace::parse(&short).unwrap();
        assert_eq!(check_coverage(&trace).unwrap().judged, 0);
        let no_rounds = span_line(2, "other", None, 0, 100);
        let trace = Trace::parse(&no_rounds).unwrap();
        assert!(check_coverage(&trace).unwrap_err().contains("no round spans"));
    }
}
