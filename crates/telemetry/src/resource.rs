//! Std-only process resource probes.
//!
//! Million-device runs live or die on memory, so the runner records
//! `runtime.rss_bytes` / `runtime.peak_rss_bytes` gauges every round.
//! The probes read Linux procfs and degrade to `None` anywhere that
//! interface is missing (other platforms, locked-down containers) —
//! resource gauges are best-effort observability, never a correctness
//! dependency, and all of them are [`crate::Class::Runtime`].

/// Bytes per page; procfs `statm` reports pages. Linux x86-64/aarch64
/// default. A probe built on a 64 KiB-page kernel underreports, which
/// is acceptable for a trend gauge — exactness is not the contract.
const PAGE_BYTES: u64 = 4096;

/// Current resident set size in bytes, from `/proc/self/statm`
/// (second field, in pages).
///
/// Returns `None` when procfs is unavailable or unparseable — a
/// truncated, garbled, or absurdly large `statm` must degrade the
/// gauge, never panic the run.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    parse_statm_rss(&statm)
}

fn parse_statm_rss(statm: &str) -> Option<u64> {
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // A hostile/corrupt page count times the page size must not wrap.
    resident_pages.checked_mul(PAGE_BYTES)
}

/// Peak resident set size in bytes, from `/proc/self/status`
/// (`VmHWM`, reported in kB).
///
/// Returns `None` when procfs is unavailable or the field is missing
/// or malformed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    kb.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parsing_handles_the_kernel_format() {
        let status = "Name:\tcargo\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tcargo\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn statm_parsing_handles_the_kernel_format() {
        assert_eq!(parse_statm_rss("12345 678 90 1 0 2 0\n"), Some(678 * PAGE_BYTES));
        // Leading whitespace and trailing junk fields are tolerated —
        // only the second field matters.
        assert_eq!(parse_statm_rss("  1 2 junk"), Some(2 * PAGE_BYTES));
    }

    #[test]
    fn malformed_statm_degrades_to_none_without_panicking() {
        for garbage in [
            "",               // empty read
            "12345",          // truncated: no second field
            "12345 ",         // trailing space, still no field
            "abc def",        // non-numeric
            "1 -2 3",         // negative page count
            "1 2.5 3",        // fractional
            "1 99999999999999999999 3", // overflows u64 in parse
            "\0\0\0",         // binary garbage
        ] {
            assert_eq!(parse_statm_rss(garbage), None, "accepted {garbage:?}");
        }
    }

    #[test]
    fn overflowing_page_counts_are_rejected_not_wrapped() {
        // u64::MAX pages parses, but times the page size would wrap;
        // checked_mul must turn it into None.
        let statm = format!("1 {} 3", u64::MAX);
        assert_eq!(parse_statm_rss(&statm), None);
        let status = format!("VmHWM:\t{} kB\n", u64::MAX);
        assert_eq!(parse_vm_hwm(&status), None);
    }

    #[test]
    fn probes_are_sane_on_linux_and_graceful_elsewhere() {
        match rss_bytes() {
            Some(rss) => {
                // A running test process resides in at least a few pages
                // and fewer than a terabyte.
                assert!(rss > 64 * 1024, "implausibly small RSS {rss}");
                assert!(rss < 1 << 40, "implausibly large RSS {rss}");
                // Peak is at least current (when the kernel reports it).
                if let Some(peak) = peak_rss_bytes() {
                    assert!(peak + PAGE_BYTES >= rss, "peak {peak} below current {rss}");
                }
            }
            None => {
                // No procfs: both probes must agree there is nothing.
                assert_eq!(peak_rss_bytes(), None);
            }
        }
    }
}
