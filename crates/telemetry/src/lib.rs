//! Zero-dependency telemetry for the HELCFL workspace.
//!
//! Three pieces, matching the three questions a perf investigation
//! asks:
//!
//! * **Spans** ([`Span`], [`span!`]) — *where does the wall-clock go?*
//!   Hierarchical, monotonic-clock timed regions streamed to a sink as
//!   they complete.
//! * **Metrics** ([`MetricsRegistry`]) — *what did the run do?*
//!   Counters, gauges, and log-bucketed histograms, split into
//!   deterministic ([`Class::Sim`]) and wall-clock ([`Class::Runtime`])
//!   halves so the engine's bit-identical guarantee survives
//!   instrumentation.
//! * **Sinks** ([`Sink`]) — *where does the trace land?* [`NullSink`]
//!   (nothing), [`JsonlSink`] (streaming `results/trace_*.jsonl`),
//!   [`StderrSink`] (human-readable), selected at runtime via the
//!   `HELCFL_TRACE` environment variable.
//!
//! The [`Telemetry`] handle ties them together and is designed to be
//! passed by value everywhere: it is a clone-cheap
//! `Option<Arc<...>>`, and every operation on a
//! [`Telemetry::disabled`] handle is a single `Option` check — no
//! locks, no clocks, no allocation.
//!
//! # Example
//!
//! ```
//! use helcfl_telemetry::{span, Class, MemorySink, Telemetry};
//!
//! let sink = MemorySink::new();
//! let tele = Telemetry::with_sink(sink.clone());
//! {
//!     let round = span!(tele, "round", index = 0usize);
//!     let _work = round.child("local_update");
//!     tele.counter_add(Class::Sim, "selection.selected", 5);
//! }
//! tele.finish();
//! assert_eq!(sink.lines().len(), 3); // child span, round span, metrics
//! assert_eq!(tele.snapshot().counter("selection.selected"), 5);
//! ```

pub mod analyze;
pub mod audit;
pub mod diff;
pub mod json;
mod manifest;
mod metrics;
mod progress;
mod report;
pub mod resource;
mod sink;
mod span;

pub use manifest::{fnv1a_hex, RunManifest, MANIFEST_SCHEMA_VERSION};
pub use metrics::{Class, Histogram, Metric, MetricsRegistry};
pub use progress::{ProgressSink, ProgressTarget, RoundSnapshot, PROGRESS_ENV};
pub use report::TelemetryReport;
pub use sink::{
    register_shard, Event, EventKind, JsonlSink, LineSink, MemorySink, NullSink,
    ShardedSink, Sink, StderrSink,
};
pub use span::{Span, Value};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable selecting the trace sink for
/// [`Telemetry::from_env`]: `off`/empty → metrics only, `stderr`,
/// `jsonl`, or a file path.
pub const TRACE_ENV: &str = "HELCFL_TRACE";

pub(crate) struct Shared {
    pub(crate) sink: Box<dyn Sink>,
    pub(crate) epoch: Instant,
    /// When false, spans and events are inert (metrics-only mode);
    /// the sink is never handed an [`Event`].
    events: bool,
    metrics: Mutex<MetricsRegistry>,
    next_id: AtomicU64,
}

impl Shared {
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// Handle to a telemetry context; cheap to clone and pass by value.
#[derive(Clone, Default)]
pub struct Telemetry {
    shared: Option<Arc<Shared>>,
}

impl Telemetry {
    /// A fully disabled handle: every operation is a no-op.
    ///
    /// This is what the untraced entry points (`run_federated` etc.)
    /// use, so existing callers pay one branch per call site and
    /// nothing else.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// Collects metrics but emits no span/event stream.
    ///
    /// The default when `HELCFL_TRACE` is unset: the post-run
    /// [`TelemetryReport`] still works, but the hot path never touches
    /// a clock for span timing.
    pub fn metrics_only() -> Self {
        Self::build(Box::new(NullSink), false)
    }

    /// Collects metrics and streams spans/events to `sink`.
    pub fn with_sink(sink: impl Sink + 'static) -> Self {
        Self::build(Box::new(sink), true)
    }

    /// Streams JSONL trace events to the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the trace file cannot be created.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(JsonlSink::create(path)?))
    }

    /// Builds a handle from the `HELCFL_TRACE` environment variable.
    ///
    /// | value            | behaviour                                   |
    /// |------------------|---------------------------------------------|
    /// | unset, ``, `off` | metrics only, no trace stream               |
    /// | `stderr`         | human-readable lines on stderr              |
    /// | `jsonl`          | JSONL stream at `results/trace_<name>.jsonl`|
    /// | anything else    | JSONL stream at that path                   |
    ///
    /// If the trace file cannot be created the handle degrades to
    /// metrics-only with a warning on stderr rather than failing the
    /// run.
    pub fn from_env(name: &str) -> Self {
        let value = std::env::var(TRACE_ENV).unwrap_or_default();
        match value.as_str() {
            "" | "off" => Self::metrics_only(),
            "stderr" => Self::with_sink(StderrSink),
            "jsonl" => Self::trace_file(&format!("results/trace_{name}.jsonl")),
            path => Self::trace_file(path),
        }
    }

    fn trace_file(path: &str) -> Self {
        match Self::to_file(path) {
            Ok(tele) => tele,
            Err(err) => {
                eprintln!(
                    "warning: cannot create trace file '{path}': {err}; \
                     continuing with metrics only"
                );
                Self::metrics_only()
            }
        }
    }

    fn build(sink: Box<dyn Sink>, events: bool) -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                sink,
                epoch: Instant::now(),
                events,
                metrics: Mutex::new(MetricsRegistry::new()),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// True unless this is a [`Telemetry::disabled`] handle.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// True when spans and events reach a sink (not metrics-only).
    pub fn events_enabled(&self) -> bool {
        self.shared.as_ref().is_some_and(|s| s.events)
    }

    /// Starts a root span. Inert when events are off.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.shared {
            Some(shared) if shared.events => {
                Span::start(Arc::clone(shared), name, None)
            }
            _ => Span::noop(),
        }
    }

    /// Emits an instantaneous point event (e.g. pool resolution).
    ///
    /// Returns a builder; attributes are attached with
    /// [`EventBuilder::with`] and the event fires when the builder
    /// drops, so `tele.event("x").with("k", 1u64);` is a complete
    /// statement.
    pub fn event(&self, name: &'static str) -> EventBuilder {
        match &self.shared {
            Some(shared) if shared.events => EventBuilder {
                inner: Some(EventInner {
                    shared: Arc::clone(shared),
                    name,
                    attrs: Vec::new(),
                }),
            },
            _ => EventBuilder { inner: None },
        }
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, class: Class, name: &str, delta: u64) {
        if let Some(shared) = &self.shared {
            shared.metrics.lock().expect("metrics lock poisoned").counter_add(
                class, name, delta,
            );
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, class: Class, name: &str, value: f64) {
        if let Some(shared) = &self.shared {
            shared
                .metrics
                .lock()
                .expect("metrics lock poisoned")
                .gauge_set(class, name, value);
        }
    }

    /// Records a histogram sample.
    pub fn record(&self, class: Class, name: &str, sample: f64) {
        if let Some(shared) = &self.shared {
            shared.metrics.lock().expect("metrics lock poisoned").record(
                class, name, sample,
            );
        }
    }

    /// Runs `f` against the registry under a single lock acquisition —
    /// use for batches of related updates instead of N separate calls.
    pub fn with_metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        if let Some(shared) = &self.shared {
            f(&mut shared.metrics.lock().expect("metrics lock poisoned"));
        }
    }

    /// Folds a detached registry (e.g. a worker-local one) into the
    /// shared registry. Callers merge per-worker registries in
    /// worker-index order so the result is reproducible.
    pub fn merge_registry(&self, other: &MetricsRegistry) {
        if other.is_empty() {
            return;
        }
        self.with_metrics(|m| m.merge_from(other));
    }

    /// Clones the current registry contents.
    pub fn snapshot(&self) -> MetricsRegistry {
        match &self.shared {
            Some(shared) => {
                shared.metrics.lock().expect("metrics lock poisoned").clone()
            }
            None => MetricsRegistry::new(),
        }
    }

    /// A renderable report over the current registry contents.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport::new(self.snapshot())
    }

    /// The id the next span or event will be assigned — captured at a
    /// round barrier by the checkpoint writer so a resumed run's trace
    /// tail continues the id sequence instead of restarting at 1.
    /// Returns 1 (the initial counter value) on a disabled handle.
    pub fn peek_next_span_id(&self) -> u64 {
        match &self.shared {
            Some(shared) => shared.next_id.load(Ordering::Relaxed),
            None => 1,
        }
    }

    /// Restores the span/event id counter — the resume path's pairing
    /// of [`Telemetry::peek_next_span_id`]. Call before the first span
    /// of the resumed run; a no-op on a disabled handle.
    pub fn restore_next_span_id(&self, next: u64) {
        if let Some(shared) = &self.shared {
            shared.next_id.store(next, Ordering::Relaxed);
        }
    }

    /// Stamps the run-provenance manifest at the head of the trace
    /// stream. The runner calls this once per traced run, before the
    /// first span; inert in metrics-only and disabled modes.
    pub fn emit_manifest(&self, manifest: &RunManifest) {
        if let Some(shared) = &self.shared {
            if shared.events {
                shared.sink.emit_manifest(manifest);
            }
        }
    }

    /// Emits the final metrics record to the sink and flushes it.
    ///
    /// Call once at the end of a run; safe to call on a disabled
    /// handle.
    pub fn finish(&self) {
        if let Some(shared) = &self.shared {
            if shared.events {
                let registry =
                    shared.metrics.lock().expect("metrics lock poisoned").clone();
                shared.sink.emit_metrics(&registry);
            }
            shared.sink.flush();
        }
    }

    /// Flushes the sink without emitting metrics — the round-barrier
    /// drain point for buffering sinks like [`ShardedSink`], which
    /// empty their per-worker buffers in fixed shard order here. Cheap
    /// on non-buffering sinks; safe on a disabled handle.
    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            shared.sink.flush();
        }
    }

    /// Durable round-barrier flush: like [`Telemetry::flush`] but the
    /// sink also fsyncs its file (see [`Sink::flush_sync`]). The
    /// runner uses this instead of `flush` when checkpointing is
    /// active, so a SIGKILLed run's trace is replayable up to the last
    /// completed round. Safe on a disabled handle.
    pub fn sync_flush(&self) {
        if let Some(shared) = &self.shared {
            shared.sink.flush_sync();
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(shared) => f
                .debug_struct("Telemetry")
                .field("events", &shared.events)
                .finish_non_exhaustive(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

struct EventInner {
    shared: Arc<Shared>,
    name: &'static str,
    attrs: Vec<(&'static str, Value)>,
}

/// Builder for a point event; fires when dropped.
pub struct EventBuilder {
    inner: Option<EventInner>,
}

impl EventBuilder {
    /// Attaches an attribute; returns `self` for chaining.
    #[must_use = "the event fires when the builder drops"]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value.into()));
        }
        self
    }

    /// Fires the event now (equivalent to dropping the builder).
    pub fn emit(self) {}
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        let Some(EventInner { shared, name, attrs }) = self.inner.take() else {
            return;
        };
        let t_us =
            Instant::now().saturating_duration_since(shared.epoch).as_micros() as u64;
        shared.sink.emit(&Event {
            kind: EventKind::Point,
            name,
            id: shared.next_id(),
            parent: None,
            t_us,
            dur_us: None,
            attrs: &attrs,
        });
    }
}

/// Starts a span with inline attributes:
/// `span!(tele, "round", index = j, scheme = "helcfl")`.
///
/// Expands to `tele.span("round").with("index", j).with(...)`; with a
/// disabled handle the whole chain is inert.
#[macro_export]
macro_rules! span {
    ($tele:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $tele.span($name)$(.with(stringify!($key), $value))*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        assert!(!tele.events_enabled());
        let span = span!(tele, "round", index = 1usize);
        drop(span.child("inner"));
        drop(span);
        tele.counter_add(Class::Sim, "x", 1);
        tele.event("nothing").with("k", 1u64).emit();
        tele.finish();
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn metrics_only_collects_without_emitting() {
        let tele = Telemetry::metrics_only();
        assert!(tele.is_enabled());
        assert!(!tele.events_enabled());
        tele.counter_add(Class::Sim, "x", 2);
        drop(tele.span("quiet"));
        assert_eq!(tele.snapshot().counter("x"), 2);
    }

    #[test]
    fn spans_record_parent_child_structure() {
        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        {
            let round = span!(tele, "round", index = 3usize);
            round.child("selection").end();
            round.child("local_update").end();
        }
        tele.finish();
        let lines = sink.lines();
        assert_eq!(lines.len(), 4); // 2 children + round + metrics
        let parsed: Vec<_> =
            lines.iter().map(|l| json::parse(l).unwrap()).collect();
        // Children complete first; the round span is third.
        let round = &parsed[2];
        assert_eq!(round.get("name").and_then(|v| v.as_str()), Some("round"));
        let round_id = round.get("id").and_then(|v| v.as_f64()).unwrap();
        for child in &parsed[..2] {
            assert_eq!(
                child.get("parent").and_then(|v| v.as_f64()),
                Some(round_id)
            );
        }
        assert_eq!(
            parsed[3].get("type").and_then(|v| v.as_str()),
            Some("metrics")
        );
    }

    #[test]
    fn span_id_counter_survives_a_checkpoint_round_trip() {
        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        drop(tele.span("a"));
        drop(tele.span("b"));
        let saved = tele.peek_next_span_id();
        assert_eq!(saved, 3, "two spans consumed ids 1 and 2");
        // A fresh handle (the resumed process) continues the sequence.
        let resumed_sink = MemorySink::new();
        let resumed = Telemetry::with_sink(resumed_sink.clone());
        resumed.restore_next_span_id(saved);
        drop(resumed.span("c"));
        let line = &resumed_sink.lines()[0];
        let v = json::parse(line).unwrap();
        assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(3.0));
        // Disabled handles stay inert.
        let off = Telemetry::disabled();
        off.restore_next_span_id(99);
        assert_eq!(off.peek_next_span_id(), 1);
    }

    #[test]
    fn from_env_defaults_to_metrics_only() {
        // The test runner may set HELCFL_TRACE; only assert the
        // unset/off behaviour when the variable is absent.
        if std::env::var(TRACE_ENV).unwrap_or_default().is_empty() {
            let tele = Telemetry::from_env("unit_test");
            assert!(tele.is_enabled());
            assert!(!tele.events_enabled());
        }
    }
}
