//! Live run monitor: throttled one-line stderr progress snapshots.
//!
//! A [`ProgressSink`] consumes one [`RoundSnapshot`] per training round
//! and, at most once per interval, renders a single status line —
//! round counter, rounds/sec, per-phase p50 latencies, pool busy %,
//! fault count, current RSS — to its [`ProgressTarget`]. It is enabled
//! by setting the `HELCFL_PROGRESS` environment variable (any value
//! except `0`; `file:PATH` appends the lines to a file instead of
//! stderr, for headless runs whose stderr nobody watches), works
//! whether or not event tracing is on, and never writes to the trace
//! stream itself, so it cannot perturb trace bytes or history
//! determinism: everything it consumes is wall-clock (runtime-class)
//! observability.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use crate::metrics::Histogram;
use crate::resource;

/// Environment variable that enables the live monitor.
pub const PROGRESS_ENV: &str = "HELCFL_PROGRESS";

/// What a parsed [`PROGRESS_ENV`] value asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressMode {
    /// Progress lines to stderr.
    Stderr,
    /// Progress lines appended to this file.
    ToFile(String),
}

/// Parses a [`PROGRESS_ENV`] value without touching the environment.
///
/// Returns the requested mode (`None` = monitor disabled) plus an
/// optional warning describing what was ignored:
///
/// * `0`, `off`, `false` (any case) → disabled, no warning (explicit
///   opt-out);
/// * empty or whitespace-only → disabled, warned (a set-but-empty
///   variable is a typo, not an opt-in);
/// * `file:PATH` → append to `PATH`;
/// * `file:` with no path → stderr, warned;
/// * anything else → stderr (any other value opts in).
pub fn progress_from_env_value(value: &str) -> (Option<ProgressMode>, Option<String>) {
    let v = value.trim();
    if v.is_empty() {
        return (
            None,
            Some(format!(
                "{PROGRESS_ENV} is set but empty; the live monitor stays off"
            )),
        );
    }
    if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
        return (None, None);
    }
    if let Some(path) = v.strip_prefix("file:") {
        if path.trim().is_empty() {
            return (
                Some(ProgressMode::Stderr),
                Some(format!(
                    "{PROGRESS_ENV} names an empty progress file; \
                     progress falls back to stderr"
                )),
            );
        }
        return (Some(ProgressMode::ToFile(path.to_string())), None);
    }
    (Some(ProgressMode::Stderr), None)
}

/// One round's worth of live-monitor input, fed by the training loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundSnapshot<'a> {
    /// Round index (0-based, as the runner counts them).
    pub round: usize,
    /// Wall-clock duration of named phases this round.
    pub phases: &'a [(&'a str, Duration)],
    /// Worker-pool busy share over the round, 0..=1, when known.
    pub pool_busy: Option<f64>,
    /// Cumulative faults fired so far in the run.
    pub faults_fired: u64,
}

/// Where progress lines go.
#[derive(Debug)]
pub enum ProgressTarget {
    /// Lines via `eprintln!` (the default).
    Stderr,
    /// Lines appended to an already-opened file, flushed per line so a
    /// tail-follower sees them promptly.
    File(std::fs::File),
}

/// Throttled progress reporter. See the module docs.
#[derive(Debug)]
pub struct ProgressSink {
    interval: Duration,
    target: ProgressTarget,
    started: Instant,
    last_emit: Option<Instant>,
    rounds_seen: u64,
    /// Per-phase latency distribution and summed time, in seconds.
    phase_hist: BTreeMap<String, (Histogram, f64)>,
    last_busy: Option<f64>,
    faults_fired: u64,
}

impl ProgressSink {
    /// Builds the monitor when [`PROGRESS_ENV`] opts in; `None` keeps
    /// the hot path free of even the per-round bookkeeping. Values are
    /// parsed by [`progress_from_env_value`]: a `file:PATH` value
    /// appends to `PATH`, and invalid values (empty variable, empty
    /// file path, unopenable file) warn once on stderr and fall back
    /// to the nearest sane default rather than disabling themselves
    /// silently or failing the run.
    pub fn from_env() -> Option<Self> {
        let value = std::env::var(PROGRESS_ENV).ok()?;
        let (mode, warning) = progress_from_env_value(&value);
        if let Some(w) = warning {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("helcfl: {w}"));
        }
        let interval = Duration::from_secs(1);
        match mode? {
            ProgressMode::Stderr => Some(Self::with_interval(interval)),
            ProgressMode::ToFile(path) => Some(match Self::with_file(interval, &path) {
                Ok(sink) => sink,
                Err(err) => {
                    eprintln!(
                        "warning: cannot open progress file '{path}': {err}; \
                         progress falls back to stderr"
                    );
                    Self::with_interval(interval)
                }
            }),
        }
    }

    /// Monitor emitting at most once per `interval` (zero = every
    /// round; used by tests), to stderr.
    pub fn with_interval(interval: Duration) -> Self {
        Self::with_target(interval, ProgressTarget::Stderr)
    }

    /// Monitor appending to the file at `path` (created if missing,
    /// appended to if present — a multi-run sweep accumulates one log).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be opened.
    pub fn with_file(
        interval: Duration,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::with_target(interval, ProgressTarget::File(file)))
    }

    fn with_target(interval: Duration, target: ProgressTarget) -> Self {
        Self {
            interval,
            target,
            started: Instant::now(),
            last_emit: None,
            rounds_seen: 0,
            phase_hist: BTreeMap::new(),
            last_busy: None,
            faults_fired: 0,
        }
    }

    /// Ingests one round and, when an emission is due, writes the
    /// status line to the target and returns it (tests inspect the
    /// return; production ignores it).
    pub fn record_round(&mut self, snap: &RoundSnapshot<'_>) -> Option<String> {
        self.rounds_seen += 1;
        for (name, dur) in snap.phases {
            let entry = self
                .phase_hist
                .entry((*name).to_string())
                .or_insert_with(|| (Histogram::new(), 0.0));
            entry.0.record(dur.as_secs_f64());
            entry.1 += dur.as_secs_f64();
        }
        self.last_busy = snap.pool_busy.or(self.last_busy);
        self.faults_fired = snap.faults_fired;
        let now = Instant::now();
        let due = self
            .last_emit
            .is_none_or(|last| now.duration_since(last) >= self.interval);
        if !due {
            return None;
        }
        self.last_emit = Some(now);
        let line = self.render_line(snap.round);
        match &mut self.target {
            ProgressTarget::Stderr => eprintln!("{line}"),
            ProgressTarget::File(file) => {
                // A full disk must not kill the run; drop the line.
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            }
        }
        Some(line)
    }

    /// Renders the one-line snapshot without emitting it.
    pub fn render_line(&self, round: usize) -> String {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut line = format!(
            "[helcfl] round {round} | {:.2} r/s",
            self.rounds_seen as f64 / elapsed
        );
        // Top phases by total time keep the line bounded no matter how
        // many phases the loop reports.
        let mut by_total: Vec<(&str, &Histogram, f64)> = self
            .phase_hist
            .iter()
            .map(|(k, (h, total))| (k.as_str(), h, *total))
            .collect();
        by_total.sort_by(|a, b| {
            b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0))
        });
        let shown: Vec<String> = by_total
            .iter()
            .take(3)
            .filter_map(|(name, h, _)| {
                h.approx_quantile(0.5).map(|p50| format!("{name} {}", fmt_seconds(p50)))
            })
            .collect();
        if !shown.is_empty() {
            let _ = write!(line, " | p50 {}", shown.join(", "));
        }
        if let Some(busy) = self.last_busy {
            let _ = write!(line, " | busy {:.0}%", busy * 100.0);
        }
        let _ = write!(line, " | faults {}", self.faults_fired);
        if let Some(rss) = resource::rss_bytes() {
            let _ = write!(line, " | rss {}", fmt_bytes(rss));
        }
        line
    }
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

fn fmt_bytes(b: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= 1024.0 * MIB {
        format!("{:.2}GiB", b / (1024.0 * MIB))
    } else {
        format!("{:.0}MiB", b / MIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_line_carries_every_field() {
        let mut sink = ProgressSink::with_interval(Duration::ZERO);
        let phases = [
            ("local_update", Duration::from_millis(40)),
            ("timeline", Duration::from_micros(900)),
        ];
        let line = sink
            .record_round(&RoundSnapshot {
                round: 7,
                phases: &phases,
                pool_busy: Some(0.82),
                faults_fired: 3,
            })
            .expect("zero interval always emits");
        assert!(line.contains("round 7"), "{line}");
        assert!(line.contains("r/s"), "{line}");
        // Quantiles are bucket midpoints 1.5·2^e: 40 ms lands in
        // [2⁻⁵, 2⁻⁴) → 46.9 ms; 900 µs in [2⁻¹¹, 2⁻¹⁰) → 732 µs.
        assert!(line.contains("local_update 46.9ms"), "{line}");
        assert!(line.contains("timeline 732µs"), "{line}");
        assert!(line.contains("busy 82%"), "{line}");
        assert!(line.contains("faults 3"), "{line}");
        // RSS segment is present wherever procfs is (i.e. the CI box).
        if resource::rss_bytes().is_some() {
            assert!(line.contains("rss "), "{line}");
        }
    }

    #[test]
    fn throttling_suppresses_until_interval_elapses() {
        let mut sink = ProgressSink::with_interval(Duration::from_secs(3600));
        let first = sink.record_round(&RoundSnapshot::default());
        assert!(first.is_some(), "first round always emits");
        for round in 1..50 {
            let again = sink.record_round(&RoundSnapshot { round, ..Default::default() });
            assert!(again.is_none(), "inside the interval nothing emits");
        }
        // The state still accumulated behind the throttle.
        assert_eq!(sink.rounds_seen, 50);
    }

    #[test]
    fn busy_gauge_is_sticky_and_phases_rank_by_total_time() {
        let mut sink = ProgressSink::with_interval(Duration::ZERO);
        let heavy = [("aggregate", Duration::from_secs(2))];
        sink.record_round(&RoundSnapshot {
            round: 0,
            phases: &heavy,
            pool_busy: Some(0.5),
            faults_fired: 0,
        });
        // No busy sample this round: the last known value is shown.
        let line = sink
            .record_round(&RoundSnapshot { round: 1, phases: &heavy, ..Default::default() })
            .unwrap();
        assert!(line.contains("busy 50%"), "{line}");
        // 2 s sits in bucket [2, 4) whose midpoint is 3 s.
        assert!(line.contains("aggregate 3.00s"), "{line}");
    }

    #[test]
    fn file_mode_appends_across_rounds_and_runs() {
        let path = std::env::temp_dir()
            .join(format!("progress_append_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut sink =
                ProgressSink::with_file(Duration::ZERO, &path).unwrap();
            sink.record_round(&RoundSnapshot::default()).unwrap();
            sink.record_round(&RoundSnapshot { round: 1, ..Default::default() })
                .unwrap();
        }
        {
            // A second run on the same path appends, never truncates.
            let mut sink =
                ProgressSink::with_file(Duration::ZERO, &path).unwrap();
            sink.record_round(&RoundSnapshot { round: 2, ..Default::default() })
                .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("round 0"), "{text}");
        assert!(lines[2].contains("round 2"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_mode_rejects_unwritable_paths() {
        // A directory cannot be opened for append; the constructor
        // surfaces the error instead of panicking, and from_env's
        // fallback path turns it into a stderr sink.
        let dir = std::env::temp_dir()
            .join(format!("progress_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ProgressSink::with_file(Duration::ZERO, &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_mode_line_format_matches_stderr_mode() {
        // The snapshot line is a stable format shared by both targets;
        // scripts parsing the file must see exactly what stderr shows.
        let path = std::env::temp_dir()
            .join(format!("progress_fmt_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        let phases = [("local_update", Duration::from_millis(40))];
        let snap = RoundSnapshot {
            round: 5,
            phases: &phases,
            pool_busy: Some(0.5),
            faults_fired: 2,
        };
        let mut sink = ProgressSink::with_file(Duration::ZERO, &path).unwrap();
        let returned = sink.record_round(&snap).unwrap();
        drop(sink);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk.trim_end(), returned, "file and return value diverge");
        assert!(returned.starts_with("[helcfl] round 5 | "), "{returned}");
        assert!(returned.contains("| faults 2"), "{returned}");
        assert!(returned.contains("busy 50%"), "{returned}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_env_respects_the_opt_in_contract() {
        // Runs single-threaded assertions on whatever the ambient env
        // is; the ctor contract itself is pure.
        match std::env::var(PROGRESS_ENV) {
            Ok(v) => assert_eq!(
                ProgressSink::from_env().is_some(),
                progress_from_env_value(&v).0.is_some()
            ),
            Err(_) => assert!(ProgressSink::from_env().is_none()),
        }
    }

    #[test]
    fn env_value_parsing_covers_valid_and_invalid_forms() {
        // Plain opt-ins go to stderr.
        for on in ["1", "yes", "watch", " 1 "] {
            let (mode, warning) = progress_from_env_value(on);
            assert_eq!(mode, Some(ProgressMode::Stderr), "`{on}`");
            assert!(warning.is_none(), "`{on}` warned");
        }
        // Explicit opt-outs disable without a warning.
        for off in ["0", "off", "OFF", "false", "False"] {
            let (mode, warning) = progress_from_env_value(off);
            assert_eq!(mode, None, "`{off}`");
            assert!(warning.is_none(), "`{off}` warned");
        }
        // Set-but-empty is a typo: disabled, but warned about.
        for empty in ["", "   "] {
            let (mode, warning) = progress_from_env_value(empty);
            assert_eq!(mode, None);
            assert!(warning.unwrap().contains("empty"));
        }
        // File mode carries the path through verbatim.
        let (mode, warning) = progress_from_env_value("file:/tmp/p.log");
        assert_eq!(mode, Some(ProgressMode::ToFile("/tmp/p.log".into())));
        assert!(warning.is_none());
        // An empty file path falls back to stderr with a warning.
        let (mode, warning) = progress_from_env_value("file:");
        assert_eq!(mode, Some(ProgressMode::Stderr));
        assert!(warning.unwrap().contains("empty progress file"));
    }
}
