//! Pluggable trace destinations.
//!
//! A [`Sink`] receives completed [`Event`]s — span ends and point
//! events — and serializes them however it likes. The simulator never
//! blocks on a sink beyond the sink's own lock; sinks that do I/O
//! buffer internally and flush on [`Sink::flush`].

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::JsonObject;
use crate::manifest::RunManifest;
use crate::metrics::MetricsRegistry;
use crate::span::Value;

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span that has finished; `dur_us` is set.
    Span,
    /// An instantaneous point event; `dur_us` is `None`.
    Point,
}

/// One completed trace record handed to a sink.
#[derive(Debug)]
pub struct Event<'a> {
    /// Span end or point event.
    pub kind: EventKind,
    /// Static name, e.g. `"round"` or `"local_update"`.
    pub name: &'a str,
    /// Unique id within the run (monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Start time in microseconds since the telemetry epoch.
    pub t_us: u64,
    /// Duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Attached key/value attributes.
    pub attrs: &'a [(&'static str, Value)],
}

impl Event<'_> {
    /// Renders the event as one JSONL object.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.field(
            "type",
            match self.kind {
                EventKind::Span => "span",
                EventKind::Point => "event",
            },
        )
        .field("name", self.name)
        .field("id", self.id)
        .field("parent", self.parent)
        .field("t_us", self.t_us)
        .field("dur_us", self.dur_us);
        if !self.attrs.is_empty() {
            let mut attrs = JsonObject::new();
            for (key, value) in self.attrs {
                value.write_field(&mut attrs, key);
            }
            o.object("attrs", attrs);
        }
        o.finish()
    }

    /// Renders the event as a one-line human-readable string.
    pub fn to_human_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = String::new();
        let _ = write!(line, "[{:>10.3}ms]", self.t_us as f64 / 1000.0);
        match self.dur_us {
            Some(d) => {
                let _ = write!(line, " {} took {:.3}ms", self.name, d as f64 / 1000.0);
            }
            None => {
                let _ = write!(line, " {}", self.name);
            }
        }
        for (key, value) in self.attrs {
            let _ = write!(line, " {key}={value}");
        }
        line
    }
}

/// A destination for trace events and the final metrics summary.
pub trait Sink: Send + Sync {
    /// Consumes one completed event.
    fn emit(&self, event: &Event<'_>);

    /// Consumes the run-provenance manifest the runner stamps at the
    /// top of a traced run. Defaults to a no-op for sinks with no
    /// durable stream to open.
    fn emit_manifest(&self, manifest: &RunManifest) {
        let _ = manifest;
    }

    /// Consumes the merged end-of-run metrics registry.
    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }

    /// Flushes any buffered output.
    fn flush(&self) {}

    /// Flushes and, where the sink owns a durable file, fsyncs it so
    /// the bytes survive a process kill. Called by the runner at round
    /// barriers **only when checkpointing is active** — a killed run's
    /// trace must be replayable up to the last completed round, which
    /// a page-cache-only flush cannot promise. Defaults to a plain
    /// [`Sink::flush`] for sinks with nothing durable to sync.
    fn flush_sync(&self) {
        self.flush();
    }
}

/// Discards everything. Used when metrics are wanted without a trace
/// stream; the [`crate::Telemetry`] handle skips event construction
/// entirely in that mode, so this sink's methods are rarely even
/// reached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event<'_>) {}
}

/// Streams events as JSON Lines to a file.
///
/// Each event becomes one `{"type":"span"|"event",...}` object; the
/// end-of-run metrics registry is appended as a final
/// `{"type":"metrics",...}` line. Lines are buffered and flushed on
/// [`Sink::flush`] and on drop.
pub struct JsonlSink {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created
    /// (parent directories are created first).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        // 64 KiB: a digest-mode round is ~3 KiB of JSONL, so the
        // default 8 KiB buffer would syscall every couple of rounds
        // from inside the traced hot loop. Round barriers still make
        // whole rounds visible to tailing readers via `flush`.
        Ok(Self { path, out: Mutex::new(BufWriter::with_capacity(64 * 1024, file)) })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("trace file lock poisoned");
        // A full disk should not kill a simulation; drop the line.
        let _ = writeln!(out, "{line}");
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        self.write_line(&event.to_json_line());
    }

    fn emit_manifest(&self, manifest: &RunManifest) {
        self.write_line(&manifest.to_json_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let mut o = JsonObject::new();
        o.field("type", "metrics").object("metrics", registry.to_json());
        self.write_line(&o.finish());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace file lock poisoned").flush();
    }

    fn flush_sync(&self) {
        let mut out = self.out.lock().expect("trace file lock poisoned");
        // Same error posture as write_line: a sick disk degrades the
        // trace, it does not kill the simulation.
        let _ = out.flush();
        let _ = out.get_ref().sync_data();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A [`Sink`] that can also accept pre-rendered JSONL lines.
///
/// [`ShardedSink`] buffers rendered lines per worker and replays them
/// into its inner sink at flush barriers; this trait is the replay
/// channel. Implemented by the sinks that store JSONL verbatim
/// ([`JsonlSink`], [`MemorySink`]).
pub trait LineSink: Sink {
    /// Appends one already-rendered JSONL line.
    fn write_jsonl_line(&self, line: &str);
}

impl LineSink for JsonlSink {
    fn write_jsonl_line(&self, line: &str) {
        self.write_line(line);
    }
}

thread_local! {
    /// Which [`ShardedSink`] shard the current thread writes into.
    /// Unregistered threads (including the main thread) share shard 0.
    static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Associates the calling thread with shard `shard` of every
/// [`ShardedSink`] it subsequently emits into. Worker `w` of an
/// `n`-worker pool registers shard `w`; the main thread stays on
/// shard 0.
pub fn register_shard(shard: usize) {
    SHARD.with(|s| s.set(shard));
}

/// Per-worker event buffers in front of a [`LineSink`].
///
/// `emit` renders the event and appends it to the calling thread's own
/// shard buffer — an uncontended lock per worker instead of one global
/// sink mutex on the pool's hot path. [`Sink::flush`] (called by the
/// runner at every round barrier) drains the shards **in fixed shard
/// order** into the inner sink, so the emitted JSONL is byte-identical
/// for any worker count: all of a barrier interval's shard-0 lines,
/// then shard 1's, and so on — the same bytes whether 1 or 8 workers
/// carried the round.
///
/// Today every span is emitted by the main thread (shard 0), so the
/// sharded stream is ordering-identical to the unsharded one; the
/// shards exist so worker-side emission never has to take a global
/// lock, and the byte-equality tests pin that contract.
pub struct ShardedSink<S: LineSink> {
    inner: S,
    shards: Vec<Mutex<Vec<String>>>,
}

impl<S: LineSink> ShardedSink<S> {
    /// Wraps `inner` with `shards` per-worker buffers (at least one).
    pub fn new(inner: S, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            inner,
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Drains every shard, in shard order, into the inner sink.
    fn drain(&self) {
        for shard in &self.shards {
            let mut lines = shard.lock().expect("shard lock poisoned");
            for line in lines.drain(..) {
                self.inner.write_jsonl_line(&line);
            }
        }
    }
}

impl<S: LineSink> Sink for ShardedSink<S> {
    fn emit(&self, event: &Event<'_>) {
        let shard = SHARD.with(std::cell::Cell::get) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("shard lock poisoned")
            .push(event.to_json_line());
    }

    fn emit_manifest(&self, manifest: &RunManifest) {
        // Manifests head the stream; drain anything already buffered
        // (e.g. a previous run on a reused handle) so ordering holds.
        self.drain();
        self.inner.write_jsonl_line(&manifest.to_json_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        // The metrics line must land after every buffered event.
        self.drain();
        self.inner.emit_metrics(registry);
    }

    fn flush(&self) {
        self.drain();
        self.inner.flush();
    }

    fn flush_sync(&self) {
        self.drain();
        self.inner.flush_sync();
    }
}

impl<S: LineSink> Drop for ShardedSink<S> {
    fn drop(&mut self) {
        self.drain();
        self.inner.flush();
    }
}

/// Writes human-readable one-line events to stderr.
///
/// Selected with `HELCFL_TRACE=stderr`; useful for watching a run
/// live without post-processing a JSONL file.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        eprintln!("trace: {}", event.to_human_line());
    }

    fn emit_manifest(&self, manifest: &RunManifest) {
        eprintln!("trace: {}", manifest.to_human_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        eprintln!("trace: metrics {}", registry.to_json().finish());
    }
}

/// Captures rendered JSONL lines in memory; test-only convenience.
///
/// Clone the sink before handing it to [`crate::Telemetry::with_sink`]
/// — both clones share the same buffer, so the test keeps access to
/// what the run emitted.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock poisoned").clone()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event<'_>) {
        self.lines
            .lock()
            .expect("memory sink lock poisoned")
            .push(event.to_json_line());
    }

    fn emit_manifest(&self, manifest: &RunManifest) {
        self.lines
            .lock()
            .expect("memory sink lock poisoned")
            .push(manifest.to_json_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let mut o = JsonObject::new();
        o.field("type", "metrics").object("metrics", registry.to_json());
        self.lines.lock().expect("memory sink lock poisoned").push(o.finish());
    }
}

impl LineSink for MemorySink {
    fn write_jsonl_line(&self, line: &str) {
        self.lines.lock().expect("memory sink lock poisoned").push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_parseable_json_lines() {
        let attrs = [("round", Value::U64(3)), ("scheme", Value::Str("helcfl".into()))];
        let event = Event {
            kind: EventKind::Span,
            name: "round",
            id: 7,
            parent: Some(1),
            t_us: 1500,
            dur_us: Some(250),
            attrs: &attrs,
        };
        let line = event.to_json_line();
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("type").and_then(|v| v.as_str()), Some("span"));
        assert_eq!(parsed.get("dur_us").and_then(|v| v.as_f64()), Some(250.0));
        assert_eq!(
            parsed.get("attrs").and_then(|a| a.get("scheme")).and_then(|v| v.as_str()),
            Some("helcfl")
        );
    }

    #[test]
    fn human_line_includes_attrs() {
        let attrs = [("workers", Value::U64(4))];
        let event = Event {
            kind: EventKind::Point,
            name: "pool_resolved",
            id: 1,
            parent: None,
            t_us: 42,
            dur_us: None,
            attrs: &attrs,
        };
        let line = event.to_human_line();
        assert!(line.contains("pool_resolved"), "{line}");
        assert!(line.contains("workers=4"), "{line}");
    }

    fn point(name: &'static str, id: u64) -> Event<'static> {
        Event {
            kind: EventKind::Point,
            name,
            id,
            parent: None,
            t_us: 0,
            dur_us: None,
            attrs: &[],
        }
    }

    #[test]
    fn sharded_sink_holds_lines_until_flush_then_drains_in_shard_order() {
        let memory = MemorySink::new();
        let sharded = ShardedSink::new(memory.clone(), 4);
        sharded.emit(&point("a", 1));
        sharded.emit(&point("b", 2));
        assert!(memory.lines().is_empty(), "lines leaked before the barrier");
        sharded.flush();
        let lines = memory.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""name":"a""#));
        assert!(lines[1].contains(r#""name":"b""#));
    }

    #[test]
    fn sharded_sink_orders_worker_shards_deterministically() {
        // Emit from registered worker threads in scrambled wall-clock
        // order; the flushed stream is in shard order regardless.
        let run = |nshards: usize| -> Vec<String> {
            let memory = MemorySink::new();
            let sharded = std::sync::Arc::new(ShardedSink::new(memory.clone(), nshards));
            std::thread::scope(|scope| {
                for wid in (0..nshards).rev() {
                    let sharded = std::sync::Arc::clone(&sharded);
                    scope.spawn(move || {
                        register_shard(wid);
                        sharded.emit(&point("w", wid as u64));
                    });
                }
            });
            sharded.flush();
            memory.lines()
        };
        let lines = run(4);
        assert_eq!(lines.len(), 4);
        for (shard, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!(r#""id":{shard}"#)),
                "shard {shard} out of order: {line}"
            );
        }
        // Repeatable: same bytes on a rerun.
        assert_eq!(lines, run(4));
    }

    #[test]
    fn sharded_sink_metrics_line_lands_after_buffered_events() {
        let memory = MemorySink::new();
        let sharded = ShardedSink::new(memory.clone(), 2);
        sharded.emit(&point("early", 1));
        sharded.emit_metrics(&MetricsRegistry::new());
        let lines = memory.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""name":"early""#), "{lines:?}");
        assert!(lines[1].contains(r#""type":"metrics""#), "{lines:?}");
    }

    #[test]
    fn sharded_sink_drop_drains_outstanding_lines() {
        let memory = MemorySink::new();
        {
            let sharded = ShardedSink::new(memory.clone(), 2);
            sharded.emit(&point("tail", 9));
        }
        assert_eq!(memory.lines().len(), 1, "drop lost a buffered line");
    }

    #[test]
    fn jsonl_sink_create_fails_cleanly_on_unwritable_path() {
        // The path is a directory, so File::create must fail — the
        // error surfaces instead of panicking.
        let dir = std::env::temp_dir().join(format!("jsonl_sink_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(JsonlSink::create(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_survives_write_errors_without_panicking() {
        // /dev/full accepts the open but fails every write with ENOSPC;
        // the sink's contract is to drop lines, not kill the run.
        if !Path::new("/dev/full").exists() {
            return; // non-Linux host
        }
        let sink = JsonlSink::create("/dev/full").unwrap();
        sink.emit(&point("lost", 1));
        sink.flush();
        sink.emit_metrics(&MetricsRegistry::new());
        // The durable round-barrier flush must also survive ENOSPC.
        sink.flush_sync();
        // Reaching here without a panic is the assertion.
    }

    #[test]
    fn flush_sync_persists_lines_and_keeps_the_sink_usable() {
        let path = std::env::temp_dir()
            .join(format!("jsonl_sink_sync_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&point("round_one", 1));
        sink.flush_sync();
        // The line is on disk (not just buffered) while the sink is
        // still alive — what a SIGKILLed run's trace depends on.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""name":"round_one""#), "{text}");
        sink.emit(&point("round_two", 2));
        sink.flush_sync();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""name":"round_two""#), "{text}");
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path = std::env::temp_dir()
            .join(format!("jsonl_sink_drop_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(&point("flushed", 1));
            // No explicit flush: drop must push the buffered line out.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""name":"flushed""#), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_line_heads_a_sharded_stream() {
        let manifest = RunManifest {
            schema_version: crate::manifest::MANIFEST_SCHEMA_VERSION,
            seed: 1,
            scheme: "helcfl".to_string(),
            config_fingerprint: "00".to_string(),
            threads: 2,
            trace_mode: "full".to_string(),
            fleet_size: 3,
            build_profile: "debug".to_string(),
            resumed_from: None,
            start_round: None,
        };
        let memory = MemorySink::new();
        let sharded = ShardedSink::new(memory.clone(), 2);
        sharded.emit_manifest(&manifest);
        sharded.emit(&point("a", 1));
        sharded.flush();
        let lines = memory.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""type":"run_manifest""#), "{lines:?}");
        assert!(crate::json::validate(&lines[0]).is_ok(), "{lines:?}");
        assert!(lines[1].contains(r#""name":"a""#), "{lines:?}");
    }

    #[test]
    fn memory_sink_shares_buffer_across_clones() {
        let sink = MemorySink::new();
        let clone = sink.clone();
        clone.emit(&Event {
            kind: EventKind::Point,
            name: "x",
            id: 1,
            parent: None,
            t_us: 0,
            dur_us: None,
            attrs: &[],
        });
        assert_eq!(sink.lines().len(), 1);
    }
}
