//! Pluggable trace destinations.
//!
//! A [`Sink`] receives completed [`Event`]s — span ends and point
//! events — and serializes them however it likes. The simulator never
//! blocks on a sink beyond the sink's own lock; sinks that do I/O
//! buffer internally and flush on [`Sink::flush`].

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::JsonObject;
use crate::metrics::MetricsRegistry;
use crate::span::Value;

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span that has finished; `dur_us` is set.
    Span,
    /// An instantaneous point event; `dur_us` is `None`.
    Point,
}

/// One completed trace record handed to a sink.
#[derive(Debug)]
pub struct Event<'a> {
    /// Span end or point event.
    pub kind: EventKind,
    /// Static name, e.g. `"round"` or `"local_update"`.
    pub name: &'a str,
    /// Unique id within the run (monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Start time in microseconds since the telemetry epoch.
    pub t_us: u64,
    /// Duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Attached key/value attributes.
    pub attrs: &'a [(&'static str, Value)],
}

impl Event<'_> {
    /// Renders the event as one JSONL object.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.field(
            "type",
            match self.kind {
                EventKind::Span => "span",
                EventKind::Point => "event",
            },
        )
        .field("name", self.name)
        .field("id", self.id)
        .field("parent", self.parent)
        .field("t_us", self.t_us)
        .field("dur_us", self.dur_us);
        if !self.attrs.is_empty() {
            let mut attrs = JsonObject::new();
            for (key, value) in self.attrs {
                value.write_field(&mut attrs, key);
            }
            o.object("attrs", attrs);
        }
        o.finish()
    }

    /// Renders the event as a one-line human-readable string.
    pub fn to_human_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = String::new();
        let _ = write!(line, "[{:>10.3}ms]", self.t_us as f64 / 1000.0);
        match self.dur_us {
            Some(d) => {
                let _ = write!(line, " {} took {:.3}ms", self.name, d as f64 / 1000.0);
            }
            None => {
                let _ = write!(line, " {}", self.name);
            }
        }
        for (key, value) in self.attrs {
            let _ = write!(line, " {key}={value}");
        }
        line
    }
}

/// A destination for trace events and the final metrics summary.
pub trait Sink: Send + Sync {
    /// Consumes one completed event.
    fn emit(&self, event: &Event<'_>);

    /// Consumes the merged end-of-run metrics registry.
    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Discards everything. Used when metrics are wanted without a trace
/// stream; the [`crate::Telemetry`] handle skips event construction
/// entirely in that mode, so this sink's methods are rarely even
/// reached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event<'_>) {}
}

/// Streams events as JSON Lines to a file.
///
/// Each event becomes one `{"type":"span"|"event",...}` object; the
/// end-of-run metrics registry is appended as a final
/// `{"type":"metrics",...}` line. Lines are buffered and flushed on
/// [`Sink::flush`] and on drop.
pub struct JsonlSink {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created
    /// (parent directories are created first).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Self { path, out: Mutex::new(BufWriter::new(file)) })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("trace file lock poisoned");
        // A full disk should not kill a simulation; drop the line.
        let _ = writeln!(out, "{line}");
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        self.write_line(&event.to_json_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let mut o = JsonObject::new();
        o.field("type", "metrics").object("metrics", registry.to_json());
        self.write_line(&o.finish());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace file lock poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Writes human-readable one-line events to stderr.
///
/// Selected with `HELCFL_TRACE=stderr`; useful for watching a run
/// live without post-processing a JSONL file.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        eprintln!("trace: {}", event.to_human_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        eprintln!("trace: metrics {}", registry.to_json().finish());
    }
}

/// Captures rendered JSONL lines in memory; test-only convenience.
///
/// Clone the sink before handing it to [`crate::Telemetry::with_sink`]
/// — both clones share the same buffer, so the test keeps access to
/// what the run emitted.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock poisoned").clone()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event<'_>) {
        self.lines
            .lock()
            .expect("memory sink lock poisoned")
            .push(event.to_json_line());
    }

    fn emit_metrics(&self, registry: &MetricsRegistry) {
        let mut o = JsonObject::new();
        o.field("type", "metrics").object("metrics", registry.to_json());
        self.lines.lock().expect("memory sink lock poisoned").push(o.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_parseable_json_lines() {
        let attrs = [("round", Value::U64(3)), ("scheme", Value::Str("helcfl".into()))];
        let event = Event {
            kind: EventKind::Span,
            name: "round",
            id: 7,
            parent: Some(1),
            t_us: 1500,
            dur_us: Some(250),
            attrs: &attrs,
        };
        let line = event.to_json_line();
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("type").and_then(|v| v.as_str()), Some("span"));
        assert_eq!(parsed.get("dur_us").and_then(|v| v.as_f64()), Some(250.0));
        assert_eq!(
            parsed.get("attrs").and_then(|a| a.get("scheme")).and_then(|v| v.as_str()),
            Some("helcfl")
        );
    }

    #[test]
    fn human_line_includes_attrs() {
        let attrs = [("workers", Value::U64(4))];
        let event = Event {
            kind: EventKind::Point,
            name: "pool_resolved",
            id: 1,
            parent: None,
            t_us: 42,
            dur_us: None,
            attrs: &attrs,
        };
        let line = event.to_human_line();
        assert!(line.contains("pool_resolved"), "{line}");
        assert!(line.contains("workers=4"), "{line}");
    }

    #[test]
    fn memory_sink_shares_buffer_across_clones() {
        let sink = MemorySink::new();
        let clone = sink.clone();
        clone.emit(&Event {
            kind: EventKind::Point,
            name: "x",
            id: 1,
            parent: None,
            t_us: 0,
            dur_us: None,
            attrs: &[],
        });
        assert_eq!(sink.lines().len(), 1);
    }
}
