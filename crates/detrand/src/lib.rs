//! Deterministic, dependency-free pseudo-random streams.
//!
//! The whole workspace draws randomness through this one crate so the
//! simulator builds offline (no crates.io `rand`) and every sample is
//! reproducible from a single `u64` seed. The generator is
//! xoshiro256++ (Blackman & Vigna), seeded by expanding the `u64` with
//! SplitMix64 — the construction the xoshiro authors recommend, and
//! the same finalizer `fl_sim::seeds` already uses for seed-domain
//! derivation.
//!
//! Besides the raw generator, this crate carries exactly the
//! distributions the simulator needs: uniform floats over a range,
//! bounded integers, Fisher–Yates [`Rng::shuffle`], Box–Muller
//! [`Rng::standard_normal`], and distinct-index sampling
//! ([`Rng::sample_indices`]). Nothing here is cryptographic; it is a
//! simulation PRNG with good statistical behaviour and bit-stable
//! output across platforms (only integer ops and IEEE-754 arithmetic).
//!
//! # Streams
//!
//! Parallel client training wants one independent stream per client,
//! all derived from the master experiment seed so the schedule of
//! threads never changes the numbers drawn. [`Rng::stream`] derives
//! such sub-streams by mixing the stream index through SplitMix64
//! before seeding:
//!
//! ```
//! use detrand::Rng;
//!
//! let mut a = Rng::stream(42, 0);
//! let mut b = Rng::stream(42, 1);
//! assert_ne!(a.next_u64(), b.next_u64());
//! assert_eq!(Rng::stream(42, 0).next_u64(), Rng::stream(42, 0).next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64 finalization step: avalanche-mixes `z` into a new `u64`.
///
/// Public because seed-derivation helpers elsewhere in the workspace
/// (e.g. `fl_sim::seeds`) use the same constants; keeping one
/// implementation avoids silent drift.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator with SplitMix64 seeding.
///
/// Cloning an `Rng` forks the exact state, so a clone replays the
/// same sequence — handy in tests, but use [`Rng::stream`] when you
/// want *independent* sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator by expanding `seed` through four rounds of
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        // Guard against the (astronomically unlikely) all-zero state,
        // which xoshiro cannot escape.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Derives the `stream`-th independent sub-generator of `master`.
    ///
    /// Equal `(master, stream)` pairs always produce the same
    /// generator; distinct pairs produce statistically independent
    /// ones. Used for per-client RNG streams in the parallel round
    /// engine so results do not depend on thread scheduling.
    pub fn stream(master: u64, stream: u64) -> Self {
        Self::seed_from_u64(splitmix64(master ^ splitmix64(stream ^ 0xA076_1D64_78BD_642F)))
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` using the top 24 bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is non-finite.
    #[inline]
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low <= high && low.is_finite() && high.is_finite(),
            "uniform requires finite low <= high"
        );
        low + (high - low) * self.next_f64()
    }

    /// Uniform `f32` over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is non-finite.
    #[inline]
    pub fn uniform_f32(&mut self, low: f32, high: f32) -> f32 {
        assert!(
            low <= high && low.is_finite() && high.is_finite(),
            "uniform_f32 requires finite low <= high"
        );
        low + (high - low) * self.next_f32()
    }

    /// Uniform `usize` in `[0, n)` via Lemire's nearly-divisionless
    /// bounded sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform `usize` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    #[inline]
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "range_usize requires low < high");
        low + self.below(high - low)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Standard normal `N(0, 1)` via the Box–Muller transform.
    ///
    /// Matches the construction previously in `mec_sim::channel`:
    /// `u1` is shifted away from zero so the log is finite.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// A 64-bit digest of the generator's current state, without
    /// advancing it.
    ///
    /// Two generators report the same fingerprint iff they will
    /// produce the same future sequence, so traces can tag a round
    /// with `rng_probe` and a diverging run pinpoints the first round
    /// where the random state disagrees — far cheaper than diffing
    /// whole histories.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xD6E8_FEB8_6659_FD93;
        for &word in &self.s {
            acc = splitmix64(acc ^ word);
        }
        acc
    }

    /// Exports the raw xoshiro256++ state words, without advancing.
    ///
    /// Together with [`Rng::from_state`] this makes a generator
    /// durable: a checkpointed simulation serializes the four words and
    /// later resumes the exact sequence from where it stopped. The
    /// words are the generator's full state — two generators with equal
    /// state are indistinguishable forever.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from previously exported state words.
    ///
    /// The all-zero state is the one point xoshiro cannot escape; it is
    /// unreachable from [`Rng::seed_from_u64`], so encountering it in a
    /// checkpoint means corruption, and the same guard substitution the
    /// seeder applies is used rather than returning a stuck generator.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self { s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3] };
        }
        Self { s }
    }

    /// Samples `k` distinct indices from `0..n`, in random order.
    ///
    /// Partial Fisher–Yates over an index vector: O(n) memory, O(n)
    /// time, exactly uniform over ordered k-subsets.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seed stability: these exact outputs are part of the crate's
    /// contract. If they change, every recorded experiment changes.
    #[test]
    fn seed_stability_pinned_outputs() {
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Re-derive: same seed, same prefix.
        let mut again = Rng::seed_from_u64(0);
        let replay: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, replay);
        // Distinct seeds diverge immediately.
        assert_ne!(Rng::seed_from_u64(1).next_u64(), first[0]);
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut a = Rng::stream(7, 0);
        let mut b = Rng::stream(7, 1);
        let mut a2 = Rng::stream(7, 0);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
        assert_ne!(Rng::stream(8, 0).next_u64(), Rng::stream(7, 0).next_u64());
    }

    #[test]
    fn next_f64_is_in_unit_interval_with_plausible_mean() {
        let mut rng = Rng::seed_from_u64(123);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn uniform_respects_bounds_f64_and_f32() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.5, 3.5);
            assert!((-2.5..=3.5).contains(&v));
            let w = rng.uniform_f32(-0.25, 0.25);
            assert!((-0.25..=0.25).contains(&w));
        }
        // Degenerate range collapses to the point.
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut rng = Rng::seed_from_u64(42);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = rng.below(7);
            counts[v] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; 4σ ≈ 380.
            assert!((9_500..10_500).contains(&c), "bucket count {c} out of band");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut rng2 = Rng::seed_from_u64(5);
        let mut v2: Vec<usize> = (0..50).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut rng = Rng::seed_from_u64(77);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.standard_normal();
            assert!(z.is_finite());
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn sample_indices_distinct_in_range_covering() {
        let mut rng = Rng::seed_from_u64(3);
        let picked = rng.sample_indices(20, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(sorted.iter().all(|&i| i < 20));
        // k == n yields a permutation.
        let mut all = rng.sample_indices(6, 6);
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // Over many draws every index is eventually selected.
        let mut seen = [false; 10];
        for _ in 0..200 {
            for i in rng.sample_indices(10, 3) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fingerprint_tracks_state_without_advancing_it() {
        let mut rng = Rng::seed_from_u64(11);
        let before = rng.fingerprint();
        assert_eq!(rng.fingerprint(), before, "fingerprint must not advance");
        let next = rng.next_u64();
        assert_ne!(rng.fingerprint(), before, "state change changes digest");
        // A replayed generator agrees at every step.
        let mut replay = Rng::seed_from_u64(11);
        assert_eq!(replay.fingerprint(), before);
        assert_eq!(replay.next_u64(), next);
        assert_eq!(replay.fingerprint(), rng.fingerprint());
    }

    #[test]
    fn state_round_trips_and_replays_the_sequence() {
        let mut rng = Rng::seed_from_u64(2022);
        for _ in 0..17 {
            rng.next_u64();
        }
        let saved = rng.state();
        let mut resumed = Rng::from_state(saved);
        // Exporting never advances; the restored generator is the
        // original in every observable way, including the fingerprint.
        assert_eq!(rng.state(), saved);
        assert_eq!(resumed.fingerprint(), rng.fingerprint());
        let ahead: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let replay: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(resumed, rng);
    }

    #[test]
    fn from_state_guards_the_all_zero_trap() {
        // The stuck point is remapped exactly as seed_from_u64 would.
        let mut guarded = Rng::from_state([0; 4]);
        assert_eq!(guarded.state(), [0x9E37_79B9_7F4A_7C15, 1, 2, 3]);
        assert_ne!(guarded.next_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversized_k() {
        Rng::seed_from_u64(0).sample_indices(3, 4);
    }
}
