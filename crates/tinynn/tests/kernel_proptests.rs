//! Bit-exactness properties of the register-blocked matmul kernels.
//!
//! The blocked kernels ([`Matrix::matmul_into`] and friends) promise a
//! specific accumulation contract: **one accumulator per output
//! element, summed over `k` in ascending order** — column blocking and
//! the `lhs == 0.0` skip change instruction scheduling, never the
//! arithmetic. That makes the reference implementation trivial: a
//! naive triple loop with a single `f32` accumulator must match the
//! optimized kernels *bit for bit* on every finite input, not merely
//! within a tolerance.
//!
//! Seeded deterministic case loops (no external property-test crate),
//! with the case index in every assertion message. Shapes deliberately
//! straddle the kernels' blocking boundaries (`WIDE = 32` column
//! blocks, the runtime-width tail, `matmul_nt`'s 8-column unroll) and
//! include degenerate 1×N / N×1 / k=1 forms; sparse inputs exercise
//! the zero-skip path, which must be a pure no-op on the result.

use detrand::Rng;
use tinynn::simd::{available_paths, force_path_for_tests, SimdPath};
use tinynn::tensor::{Matrix, NtPanel};

const CASES: usize = 200;

/// Cases per SIMD path in the cross-path suites (every case runs on
/// every path the host supports, so the totals multiply).
const PATH_CASES: usize = 60;

/// Forces `path` for the calling thread and restores normal dispatch
/// on drop (also on panic, so a failing case cannot poison dispatch
/// for tests that share the thread).
struct PathGuard;

impl PathGuard {
    fn force(path: SimdPath) -> Self {
        force_path_for_tests(Some(path));
        PathGuard
    }
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        force_path_for_tests(None);
    }
}

fn gen_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_f32(-4.0, 4.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// A matrix with roughly `sparsity` of its entries exactly `0.0` —
/// the shape of a post-ReLU activation, the input the zero-skip path
/// is built for.
fn gen_sparse(rng: &mut Rng, rows: usize, cols: usize, sparsity: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if rng.uniform_f32(0.0, 1.0) < sparsity {
                0.0
            } else {
                rng.uniform_f32(-4.0, 4.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Shape triple for one case: dimensions hug the blocking boundaries
/// (1, WIDE−1=31, WIDE=32, WIDE+1=33, NT_BLOCK=8 multiples, …) as well
/// as arbitrary sizes.
fn gen_shape(rng: &mut Rng) -> (usize, usize, usize) {
    const EDGES: [usize; 9] = [1, 2, 7, 8, 9, 31, 32, 33, 40];
    let dim = |rng: &mut Rng| {
        if rng.below(2) == 0 {
            EDGES[rng.below(EDGES.len())]
        } else {
            rng.range_usize(1, 70)
        }
    };
    (dim(rng), dim(rng), dim(rng))
}

/// `lhs · rhs` by the contract's definition: single accumulator,
/// ascending `k`.
fn naive_matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (m, kk) = lhs.shape();
    let n = rhs.cols();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(i, k) * rhs.at(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// `lhsᵀ · rhs`, same contract (ascending `k` = lhs/rhs row index).
fn naive_matmul_tn(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (kk, m) = lhs.shape();
    let n = rhs.cols();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(k, i) * rhs.at(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// `lhs · rhsᵀ`, same contract.
fn naive_matmul_nt(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (m, kk) = lhs.shape();
    let n = rhs.rows();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(i, k) * rhs.at(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// The fused epilogue: add bias after the full reduction, then clamp
/// negatives if `relu` — exactly one rounding step per operation.
fn naive_bias_epilogue(out: &mut Matrix, bias: &[f32], relu: bool) {
    for i in 0..out.rows() {
        for (j, &b) in bias.iter().enumerate() {
            let v = out.at(i, j) + b;
            out.set(i, j, if relu && v < 0.0 { 0.0 } else { v });
        }
    }
}

/// Asserts exact IEEE-754 bit equality, element by element.
fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str, case: usize) {
    assert_eq!(got.shape(), want.shape(), "case {case}: {what} shape");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "case {case}: {what} differs at flat index {idx}: {g} vs {w}"
        );
    }
}

#[test]
fn matmul_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0011);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        // Alternate dense and ReLU-sparse lhs: the zero-skip path must
        // be invisible in the bits.
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, m, k)
        } else {
            gen_sparse(&mut rng, m, k, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul(&a, &b), "matmul", case);
    }
}

#[test]
fn matmul_tn_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0012);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, k, m)
        } else {
            gen_sparse(&mut rng, k, m, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        a.matmul_tn_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_tn(&a, &b), "matmul_tn", case);
    }
}

#[test]
fn matmul_nt_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0013);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = gen_matrix(&mut rng, m, k);
        let b = gen_matrix(&mut rng, n, k);
        a.matmul_nt_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_nt(&a, &b), "matmul_nt", case);
    }
}

#[test]
fn fused_bias_and_relu_are_bit_identical_to_naive() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0014);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, m, k)
        } else {
            gen_sparse(&mut rng, m, k, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();

        let mut want = naive_matmul(&a, &b);
        naive_bias_epilogue(&mut want, &bias, false);
        a.matmul_bias_into(&b, &bias, &mut out).unwrap();
        assert_bits_eq(&out, &want, "matmul_bias", case);

        let mut want_relu = naive_matmul(&a, &b);
        naive_bias_epilogue(&mut want_relu, &bias, true);
        a.matmul_bias_relu_into(&b, &bias, &mut out).unwrap();
        assert_bits_eq(&out, &want_relu, "matmul_bias_relu", case);
        // The ReLU epilogue never lets a negative through and agrees
        // with clamping the non-fused result.
        assert!(
            out.as_slice().iter().all(|&v| v >= 0.0),
            "case {case}: fused ReLU produced a negative"
        );
    }
}

#[test]
fn degenerate_shapes_are_exact_too() {
    // 1×N, N×1, and k=1 hit every remainder path with no full block.
    let mut rng = Rng::seed_from_u64(0x4e4e_0015);
    for (case, &(m, k, n)) in
        [(1, 1, 1), (1, 64, 33), (5, 1, 32), (1, 1, 40), (3, 200, 1), (1, 7, 8)]
            .iter()
            .enumerate()
    {
        let a = gen_sparse(&mut rng, m, k, 0.5);
        let b = gen_matrix(&mut rng, k, n);
        let mut out = Matrix::zeros(1, 1).unwrap();
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul(&a, &b), "matmul (degenerate)", case);
        let bt = gen_matrix(&mut rng, n, k);
        a.matmul_nt_into(&bt, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_nt(&a, &bt), "matmul_nt (degenerate)", case);
    }
}

/// Every kernel path the host supports — scalar, portable 8-wide, and
/// whatever vector ISAs are detected — must produce the oracle's bits
/// on the full shape distribution. Each path matching the same oracle
/// also pins scalar-vs-SIMD bit-identity directly.
#[test]
fn every_simd_path_is_bit_identical_to_the_oracle() {
    let paths = available_paths();
    for case in 0..PATH_CASES {
        // Same seed stream per case regardless of path count, so a
        // failure reproduces identically on any host.
        let mut rng = Rng::seed_from_u64(0x4e4e_0021 ^ case as u64);
        let (m, k, n) = gen_shape(&mut rng);
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, m, k)
        } else {
            gen_sparse(&mut rng, m, k, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        let bt = gen_matrix(&mut rng, n, k);
        let at = gen_sparse(&mut rng, k, m, 0.5);
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();

        let want_nn = naive_matmul(&a, &b);
        let mut want_bias = want_nn.clone();
        naive_bias_epilogue(&mut want_bias, &bias, false);
        let mut want_relu = want_nn.clone();
        naive_bias_epilogue(&mut want_relu, &bias, true);
        let want_tn = naive_matmul_tn(&at, &b);
        let want_nt = naive_matmul_nt(&a, &bt);

        let mut out = Matrix::zeros(1, 1).unwrap();
        for &path in &paths {
            let _guard = PathGuard::force(path);
            let what = |kernel: &str| format!("{kernel}[{}]", path.name());
            a.matmul_into(&b, &mut out).unwrap();
            assert_bits_eq(&out, &want_nn, &what("matmul"), case);
            a.matmul_bias_into(&b, &bias, &mut out).unwrap();
            assert_bits_eq(&out, &want_bias, &what("matmul_bias"), case);
            a.matmul_bias_relu_into(&b, &bias, &mut out).unwrap();
            assert_bits_eq(&out, &want_relu, &what("matmul_bias_relu"), case);
            at.matmul_tn_into(&b, &mut out).unwrap();
            assert_bits_eq(&out, &want_tn, &what("matmul_tn"), case);
            a.matmul_nt_into(&bt, &mut out).unwrap();
            assert_bits_eq(&out, &want_nt, &what("matmul_nt"), case);
        }
    }
}

/// The packed-transpose `matmul_nt` form must match both the oracle
/// and the direct kernel on every path — this is the equivalence the
/// cohort arena's shared weight panel rides on.
#[test]
fn packed_nt_is_bit_identical_to_direct_nt_on_every_path() {
    let paths = available_paths();
    for case in 0..PATH_CASES {
        let mut rng = Rng::seed_from_u64(0x4e4e_0022 ^ case as u64);
        let (m, k, n) = gen_shape(&mut rng);
        let a = gen_matrix(&mut rng, m, k);
        let bt = gen_matrix(&mut rng, n, k);
        let want = naive_matmul_nt(&a, &bt);
        let mut panel = NtPanel::new();
        panel.pack(&bt);
        let mut direct = Matrix::zeros(1, 1).unwrap();
        let mut packed = Matrix::zeros(1, 1).unwrap();
        for &path in &paths {
            let _guard = PathGuard::force(path);
            let what = format!("matmul_nt_packed[{}]", path.name());
            a.matmul_nt_into(&bt, &mut direct).unwrap();
            a.matmul_nt_packed_into(&panel, &mut packed).unwrap();
            assert_bits_eq(&packed, &want, &what, case);
            assert_bits_eq(&packed, &direct, &what, case);
        }
    }
}

/// The paper-shape laggards the SIMD work targets (narrow n=10 logit
/// shapes, the transposed-left gradient shapes, the NT backward shape)
/// pinned explicitly on every path with ReLU-sparse activations —
/// exactly the value profile `bench_kernels` measures.
#[test]
fn paper_laggard_shapes_are_exact_on_every_path() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0023);
    let x = gen_matrix(&mut rng, 200, 64);
    let act = gen_sparse(&mut rng, 200, 64, 0.5);
    let w2 = gen_matrix(&mut rng, 64, 10);
    let b2: Vec<f32> = (0..10).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
    let dz = gen_matrix(&mut rng, 200, 10);

    // matmul_bias 200x64x10 (logits), matmul_tn 64x200x64 and
    // 64x200x10 (weight grads), matmul_nt 200x10x64 (input grads).
    let mut want_logits = naive_matmul(&act, &w2);
    naive_bias_epilogue(&mut want_logits, &b2, false);
    let want_tn_wide = naive_matmul_tn(&act, &x);
    let want_tn_narrow = naive_matmul_tn(&act, &dz);
    let want_nt = naive_matmul_nt(&dz, &w2);

    let mut out = Matrix::zeros(1, 1).unwrap();
    for (case, &path) in available_paths().iter().enumerate() {
        let _guard = PathGuard::force(path);
        let what = |kernel: &str| format!("{kernel}[{}]", path.name());
        act.matmul_bias_into(&w2, &b2, &mut out).unwrap();
        assert_bits_eq(&out, &want_logits, &what("matmul_bias 200x64x10"), case);
        act.matmul_tn_into(&x, &mut out).unwrap();
        assert_bits_eq(&out, &want_tn_wide, &what("matmul_tn 64x200x64"), case);
        act.matmul_tn_into(&dz, &mut out).unwrap();
        assert_bits_eq(&out, &want_tn_narrow, &what("matmul_tn 64x200x10"), case);
        dz.matmul_nt_into(&w2, &mut out).unwrap();
        assert_bits_eq(&out, &want_nt, &what("matmul_nt 200x10x64"), case);
    }
}

/// Special values must survive every path identically: the ReLU
/// epilogue's `v < 0.0` passes NaN and `-0.0` through, and the
/// zero-skip only ever skips exact `+0.0`/`-0.0` multiplicands.
#[test]
fn special_values_behave_identically_on_every_path() {
    let a = Matrix::from_rows(&[
        &[1.0, -0.0, f32::NAN, 2.0],
        &[0.0, 0.5, -3.0, f32::INFINITY],
        &[-1.5, 0.0, 4.0, -0.25],
    ])
    .unwrap();
    let b = Matrix::from_rows(&[
        &[0.5, -2.0, 1.0],
        &[f32::NAN, 3.0, -0.0],
        &[1.25, 0.0, -1.0],
        &[-0.75, 2.5, 0.125],
    ])
    .unwrap();
    let bias = [f32::NAN, -0.5, 0.0];
    let mut scalar_plain = Matrix::zeros(1, 1).unwrap();
    let mut scalar_relu = Matrix::zeros(1, 1).unwrap();
    {
        let _guard = PathGuard::force(SimdPath::Scalar);
        a.matmul_into(&b, &mut scalar_plain).unwrap();
        a.matmul_bias_relu_into(&b, &bias, &mut scalar_relu).unwrap();
    }
    let mut out = Matrix::zeros(1, 1).unwrap();
    for (case, &path) in available_paths().iter().enumerate() {
        let _guard = PathGuard::force(path);
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &scalar_plain, &format!("special matmul[{}]", path.name()), case);
        a.matmul_bias_relu_into(&b, &bias, &mut out).unwrap();
        assert_bits_eq(&out, &scalar_relu, &format!("special relu[{}]", path.name()), case);
    }
}

#[test]
fn zero_dimension_constructors_are_rejected() {
    // "Empty" matrices cannot exist: every constructor refuses a zero
    // dimension, so the kernels never see a 0-extent loop.
    assert!(Matrix::zeros(0, 3).is_err());
    assert!(Matrix::zeros(3, 0).is_err());
    assert!(Matrix::from_vec(0, 0, Vec::new()).is_err());
    assert!(Matrix::from_rows(&[]).is_err());
}
