//! Bit-exactness properties of the register-blocked matmul kernels.
//!
//! The blocked kernels ([`Matrix::matmul_into`] and friends) promise a
//! specific accumulation contract: **one accumulator per output
//! element, summed over `k` in ascending order** — column blocking and
//! the `lhs == 0.0` skip change instruction scheduling, never the
//! arithmetic. That makes the reference implementation trivial: a
//! naive triple loop with a single `f32` accumulator must match the
//! optimized kernels *bit for bit* on every finite input, not merely
//! within a tolerance.
//!
//! Seeded deterministic case loops (no external property-test crate),
//! with the case index in every assertion message. Shapes deliberately
//! straddle the kernels' blocking boundaries (`WIDE = 32` column
//! blocks, the runtime-width tail, `matmul_nt`'s 8-column unroll) and
//! include degenerate 1×N / N×1 / k=1 forms; sparse inputs exercise
//! the zero-skip path, which must be a pure no-op on the result.

use detrand::Rng;
use tinynn::tensor::Matrix;

const CASES: usize = 200;

fn gen_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_f32(-4.0, 4.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// A matrix with roughly `sparsity` of its entries exactly `0.0` —
/// the shape of a post-ReLU activation, the input the zero-skip path
/// is built for.
fn gen_sparse(rng: &mut Rng, rows: usize, cols: usize, sparsity: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if rng.uniform_f32(0.0, 1.0) < sparsity {
                0.0
            } else {
                rng.uniform_f32(-4.0, 4.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Shape triple for one case: dimensions hug the blocking boundaries
/// (1, WIDE−1=31, WIDE=32, WIDE+1=33, NT_BLOCK=8 multiples, …) as well
/// as arbitrary sizes.
fn gen_shape(rng: &mut Rng) -> (usize, usize, usize) {
    const EDGES: [usize; 9] = [1, 2, 7, 8, 9, 31, 32, 33, 40];
    let dim = |rng: &mut Rng| {
        if rng.below(2) == 0 {
            EDGES[rng.below(EDGES.len())]
        } else {
            rng.range_usize(1, 70)
        }
    };
    (dim(rng), dim(rng), dim(rng))
}

/// `lhs · rhs` by the contract's definition: single accumulator,
/// ascending `k`.
fn naive_matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (m, kk) = lhs.shape();
    let n = rhs.cols();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(i, k) * rhs.at(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// `lhsᵀ · rhs`, same contract (ascending `k` = lhs/rhs row index).
fn naive_matmul_tn(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (kk, m) = lhs.shape();
    let n = rhs.cols();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(k, i) * rhs.at(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// `lhs · rhsᵀ`, same contract.
fn naive_matmul_nt(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    let (m, kk) = lhs.shape();
    let n = rhs.rows();
    let mut out = Matrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += lhs.at(i, k) * rhs.at(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// The fused epilogue: add bias after the full reduction, then clamp
/// negatives if `relu` — exactly one rounding step per operation.
fn naive_bias_epilogue(out: &mut Matrix, bias: &[f32], relu: bool) {
    for i in 0..out.rows() {
        for (j, &b) in bias.iter().enumerate() {
            let v = out.at(i, j) + b;
            out.set(i, j, if relu && v < 0.0 { 0.0 } else { v });
        }
    }
}

/// Asserts exact IEEE-754 bit equality, element by element.
fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str, case: usize) {
    assert_eq!(got.shape(), want.shape(), "case {case}: {what} shape");
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "case {case}: {what} differs at flat index {idx}: {g} vs {w}"
        );
    }
}

#[test]
fn matmul_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0011);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        // Alternate dense and ReLU-sparse lhs: the zero-skip path must
        // be invisible in the bits.
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, m, k)
        } else {
            gen_sparse(&mut rng, m, k, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul(&a, &b), "matmul", case);
    }
}

#[test]
fn matmul_tn_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0012);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, k, m)
        } else {
            gen_sparse(&mut rng, k, m, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        a.matmul_tn_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_tn(&a, &b), "matmul_tn", case);
    }
}

#[test]
fn matmul_nt_is_bit_identical_to_naive_triple_loop() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0013);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = gen_matrix(&mut rng, m, k);
        let b = gen_matrix(&mut rng, n, k);
        a.matmul_nt_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_nt(&a, &b), "matmul_nt", case);
    }
}

#[test]
fn fused_bias_and_relu_are_bit_identical_to_naive() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0014);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..CASES {
        let (m, k, n) = gen_shape(&mut rng);
        let a = if case % 2 == 0 {
            gen_matrix(&mut rng, m, k)
        } else {
            gen_sparse(&mut rng, m, k, 0.5)
        };
        let b = gen_matrix(&mut rng, k, n);
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();

        let mut want = naive_matmul(&a, &b);
        naive_bias_epilogue(&mut want, &bias, false);
        a.matmul_bias_into(&b, &bias, &mut out).unwrap();
        assert_bits_eq(&out, &want, "matmul_bias", case);

        let mut want_relu = naive_matmul(&a, &b);
        naive_bias_epilogue(&mut want_relu, &bias, true);
        a.matmul_bias_relu_into(&b, &bias, &mut out).unwrap();
        assert_bits_eq(&out, &want_relu, "matmul_bias_relu", case);
        // The ReLU epilogue never lets a negative through and agrees
        // with clamping the non-fused result.
        assert!(
            out.as_slice().iter().all(|&v| v >= 0.0),
            "case {case}: fused ReLU produced a negative"
        );
    }
}

#[test]
fn degenerate_shapes_are_exact_too() {
    // 1×N, N×1, and k=1 hit every remainder path with no full block.
    let mut rng = Rng::seed_from_u64(0x4e4e_0015);
    for (case, &(m, k, n)) in
        [(1, 1, 1), (1, 64, 33), (5, 1, 32), (1, 1, 40), (3, 200, 1), (1, 7, 8)]
            .iter()
            .enumerate()
    {
        let a = gen_sparse(&mut rng, m, k, 0.5);
        let b = gen_matrix(&mut rng, k, n);
        let mut out = Matrix::zeros(1, 1).unwrap();
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul(&a, &b), "matmul (degenerate)", case);
        let bt = gen_matrix(&mut rng, n, k);
        a.matmul_nt_into(&bt, &mut out).unwrap();
        assert_bits_eq(&out, &naive_matmul_nt(&a, &bt), "matmul_nt (degenerate)", case);
    }
}

#[test]
fn zero_dimension_constructors_are_rejected() {
    // "Empty" matrices cannot exist: every constructor refuses a zero
    // dimension, so the kernels never see a 0-extent loop.
    assert!(Matrix::zeros(0, 3).is_err());
    assert!(Matrix::zeros(3, 0).is_err());
    assert!(Matrix::from_vec(0, 0, Vec::new()).is_err());
    assert!(Matrix::from_rows(&[]).is_err());
}
