//! Property-style tests for the neural-network substrate.
//!
//! Formerly backed by the `proptest` crate; rewritten as deterministic
//! seeded case loops over [`detrand::Rng`] so `cargo test` runs fully
//! offline. The invariants are unchanged; each test draws a few
//! hundred cases from a fixed seed, and the case index appears in
//! every assertion message for reproducibility.

use detrand::Rng;
use tinynn::activation::softmax_rows;
use tinynn::loss::softmax_cross_entropy;
use tinynn::model::{Mlp, TrainScratch};
use tinynn::tensor::Matrix;

const CASES: usize = 200;

fn gen_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_f32(-5.0, 5.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn gen_labels(rng: &mut Rng, n: usize, classes: usize) -> Vec<usize> {
    (0..n).map(|_| rng.below(classes)).collect()
}

fn explicit_transpose(m: &Matrix) -> Matrix {
    let mut t = Matrix::zeros(m.cols(), m.rows()).unwrap();
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            t.set(c, r, m.at(r, c));
        }
    }
    t
}

/// (A·B)·I == A·B and identity is neutral on both sides.
#[test]
fn identity_is_two_sided_neutral() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0001);
    let i = Matrix::identity(4);
    for case in 0..CASES {
        let a = gen_matrix(&mut rng, 4, 4);
        assert_eq!(a.matmul(&i).unwrap(), a, "case {case}: right identity");
        assert_eq!(i.matmul(&a).unwrap(), a, "case {case}: left identity");
    }
}

/// matmul_tn agrees with explicit transposition expressed through
/// plain matmul.
#[test]
fn fused_transpose_products_agree_with_naive() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0002);
    for case in 0..CASES {
        let a = gen_matrix(&mut rng, 3, 5);
        let b = gen_matrix(&mut rng, 3, 2);
        let naive = explicit_transpose(&a).matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        for (x, y) in naive.as_slice().iter().zip(fused.as_slice()) {
            assert!((x - y).abs() < 1e-4, "case {case}: {x} vs {y}");
        }
    }
}

/// matmul_nt(a, b) equals a·bᵀ computed naively.
#[test]
fn matmul_nt_matches_naive() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0003);
    for case in 0..CASES {
        let a = gen_matrix(&mut rng, 4, 3);
        let b = gen_matrix(&mut rng, 2, 3);
        let naive = a.matmul(&explicit_transpose(&b)).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        for (x, y) in naive.as_slice().iter().zip(fused.as_slice()) {
            assert!((x - y).abs() < 1e-4, "case {case}: {x} vs {y}");
        }
    }
}

/// The blocked `_into` kernels are bit-identical to their allocating
/// wrappers even on shapes larger than one block, and buffer reuse
/// across mismatched shapes leaves no stale state behind.
#[test]
fn into_kernels_match_allocating_kernels_bitwise() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0008);
    let mut out = Matrix::zeros(1, 1).unwrap();
    for case in 0..24 {
        let m = rng.range_usize(1, 90);
        let k = rng.range_usize(1, 300);
        let n = rng.range_usize(1, 40);
        let a = gen_matrix(&mut rng, m, k);
        let b = gen_matrix(&mut rng, k, n);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap(), "case {case}: matmul");
        let c = gen_matrix(&mut rng, k, m);
        c.matmul_tn_into(&b, &mut out).unwrap();
        assert_eq!(out, c.matmul_tn(&b).unwrap(), "case {case}: matmul_tn");
        let d = gen_matrix(&mut rng, n, k);
        a.matmul_nt_into(&d, &mut out).unwrap();
        assert_eq!(out, a.matmul_nt(&d).unwrap(), "case {case}: matmul_nt");
    }
}

/// Softmax rows are probability distributions for any finite input.
#[test]
fn softmax_rows_are_distributions() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0004);
    for case in 0..CASES {
        let m = gen_matrix(&mut rng, 5, 7);
        let s = softmax_rows(&m);
        for r in 0..5 {
            let row = s.row(r);
            assert!(
                row.iter().all(|&v| (0.0..=1.0).contains(&v)),
                "case {case}: entry outside [0, 1]"
            );
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "case {case}: row sums to {sum}");
        }
    }
}

/// Cross-entropy loss is non-negative and its gradient rows sum to
/// ~0 (softmax-CE conservation).
#[test]
fn cross_entropy_invariants() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0005);
    for case in 0..CASES {
        let logits = gen_matrix(&mut rng, 6, 4);
        let labels = gen_labels(&mut rng, 6, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        assert!(loss >= 0.0, "case {case}: negative loss {loss}");
        for r in 0..6 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5, "case {case}: gradient row sums to {s}");
        }
    }
}

/// Flat-parameter round trip is the identity for arbitrary
/// architectures.
#[test]
fn parameter_roundtrip_identity() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0006);
    for case in 0..64 {
        let hidden = rng.range_usize(1, 16);
        let seed = rng.next_u64();
        let dims = [5, hidden, 3];
        let m = Mlp::new(&dims, seed).unwrap();
        let mut copy = Mlp::new(&dims, seed.wrapping_add(1)).unwrap();
        copy.set_parameters(&m.parameters()).unwrap();
        assert_eq!(m, copy, "case {case}");
    }
}

/// A small-enough GD step never increases full-batch loss on a smooth
/// model (sanity of the backward pass), and the scratch-based step is
/// bit-identical to the allocating one.
#[test]
fn tiny_gd_step_does_not_increase_loss() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0007);
    for case in 0..64 {
        let seed = rng.next_u64();
        let x = gen_matrix(&mut rng, 8, 3);
        let labels = gen_labels(&mut rng, 8, 3);
        let mut m = Mlp::new(&[3, 6, 3], seed).unwrap();
        let mut m_scratch = m.clone();
        let mut scratch = TrainScratch::for_model(&m_scratch).unwrap();
        let before = m.loss(&x, &labels).unwrap();
        let l1 = m.train_step(&x, &labels, 1e-3).unwrap();
        let l2 = m_scratch.train_step_with(&x, &labels, 1e-3, &mut scratch).unwrap();
        assert_eq!(l1, l2, "case {case}: scratch loss diverged");
        assert_eq!(m, m_scratch, "case {case}: scratch parameters diverged");
        let after = m.loss(&x, &labels).unwrap();
        assert!(after <= before + 1e-4, "case {case}: loss rose from {before} to {after}");
    }
}

/// FedAvg-style parameter averaging of two identical models is the
/// identity.
#[test]
fn averaging_identical_models_is_identity() {
    let mut rng = Rng::seed_from_u64(0x4e4e_0009);
    for case in 0..CASES {
        let m = Mlp::new(&[4, 5, 2], rng.next_u64()).unwrap();
        let p = m.parameters();
        let avg: Vec<f32> = p.iter().map(|&v| (v + v) / 2.0).collect();
        let mut copy = m.clone();
        copy.set_parameters(&avg).unwrap();
        assert_eq!(m, copy, "case {case}");
    }
}
