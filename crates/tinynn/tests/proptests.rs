//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use tinynn::activation::softmax_rows;
use tinynn::loss::softmax_cross_entropy;
use tinynn::model::Mlp;
use tinynn::tensor::Matrix;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    /// (A·B)·I == A·B and identity is neutral on both sides.
    #[test]
    fn identity_is_two_sided_neutral(a in matrix_strategy(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert_eq!(a.matmul(&i).unwrap(), a.clone());
        prop_assert_eq!(i.matmul(&a).unwrap(), a);
    }

    /// matmul_tn and matmul_nt agree with explicit transposition
    /// expressed through plain matmul.
    #[test]
    fn fused_transpose_products_agree_with_naive(
        a in matrix_strategy(3, 5),
        b in matrix_strategy(3, 2),
    ) {
        // Explicit transpose of `a`.
        let mut at = Matrix::zeros(5, 3).unwrap();
        for r in 0..3 {
            for c in 0..5 {
                at.set(c, r, a.at(r, c));
            }
        }
        let naive = at.matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        for (x, y) in naive.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul_nt(a, b) equals a·bᵀ computed naively.
    #[test]
    fn matmul_nt_matches_naive(
        a in matrix_strategy(4, 3),
        b in matrix_strategy(2, 3),
    ) {
        let mut bt = Matrix::zeros(3, 2).unwrap();
        for r in 0..2 {
            for c in 0..3 {
                bt.set(c, r, b.at(r, c));
            }
        }
        let naive = a.matmul(&bt).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        for (x, y) in naive.as_slice().iter().zip(fused.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions for any finite input.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(5, 7)) {
        let s = softmax_rows(&m);
        for r in 0..5 {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to
    /// ~0 (softmax-CE conservation).
    #[test]
    fn cross_entropy_invariants(
        logits in matrix_strategy(6, 4),
        labels in prop::collection::vec(0usize..4, 6),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for r in 0..6 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// Flat-parameter round trip is the identity for arbitrary
    /// architectures.
    #[test]
    fn parameter_roundtrip_identity(
        hidden in 1usize..16,
        seed in 0u64..1000,
    ) {
        let dims = [5, hidden, 3];
        let m = Mlp::new(&dims, seed).unwrap();
        let mut copy = Mlp::new(&dims, seed.wrapping_add(1)).unwrap();
        copy.set_parameters(&m.parameters()).unwrap();
        prop_assert_eq!(m, copy);
    }

    /// A small-enough GD step never increases full-batch loss on a
    /// smooth model (sanity of the backward pass).
    #[test]
    fn tiny_gd_step_does_not_increase_loss(
        seed in 0u64..200,
        x in matrix_strategy(8, 3),
        labels in prop::collection::vec(0usize..3, 8),
    ) {
        let mut m = Mlp::new(&[3, 6, 3], seed).unwrap();
        let before = m.loss(&x, &labels).unwrap();
        m.train_step(&x, &labels, 1e-3).unwrap();
        let after = m.loss(&x, &labels).unwrap();
        prop_assert!(after <= before + 1e-4, "loss rose from {before} to {after}");
    }

    /// FedAvg-style parameter averaging of two identical models is the
    /// identity.
    #[test]
    fn averaging_identical_models_is_identity(seed in 0u64..500) {
        let m = Mlp::new(&[4, 5, 2], seed).unwrap();
        let p = m.parameters();
        let avg: Vec<f32> = p.iter().map(|&v| (v + v) / 2.0).collect();
        let mut copy = m.clone();
        copy.set_parameters(&avg).unwrap();
        prop_assert_eq!(m, copy);
    }
}
