//! Explicit-SIMD kernel paths and their runtime dispatch.
//!
//! The scalar kernels in [`crate::tensor`] define the numeric contract:
//! one `f32` accumulator per output element, walked in ascending
//! reduction index, with separate multiply and add (no FMA
//! contraction). The vector kernels here widen that recipe across the
//! output-column dimension — each SIMD lane *is* one output element's
//! accumulator, fed the identical ascending-`k` addend sequence — so
//! every path produces bit-identical results. `kernel_proptests.rs`
//! pins that equivalence against the naive oracle for every path the
//! host supports.
//!
//! Three vector implementations exist behind one dispatch point:
//!
//! | path        | width | mechanism |
//! |-------------|-------|-----------|
//! | `Avx512`    | 16    | `std::arch` zmm intrinsics, masked tails |
//! | `Avx2`      | 8     | `std::arch` ymm intrinsics, `maskload` tails |
//! | `Portable8` | 8     | safe 8-wide chunked Rust (any arch) |
//!
//! The active path is chosen once per process (first kernel call) from
//! CPU feature detection, overridable via `HELCFL_SIMD=off|on|auto`:
//! `off` pins the scalar reference kernels, `on` insists on a vector
//! path (portable fallback if no vector ISA is detected), `auto` (or
//! unset) picks the best detected path. Unrecognized values warn once
//! on stderr and fall back to `auto`, mirroring `threads_from_env` in
//! `fl-sim`.
//!
//! Why no FMA anywhere: a fused multiply-add rounds once where the
//! scalar contract rounds twice, so `mul`+`add` stay separate in every
//! kernel — the cost is a ~1.5× lower ceiling than the hardware's FMA
//! peak, the payoff is that histories, golden CSVs, and checkpoint
//! fingerprints are identical no matter which path ran. See DESIGN.md
//! §17.

// Crate-wide `#![deny(unsafe_code)]` is lifted for this module only:
// the AVX2/AVX-512 kernels are raw std::arch intrinsics. The portable
// and scalar paths remain safe code.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

/// One kernel implementation selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// The register-blocked scalar kernels in `tensor.rs` — the
    /// reference oracle every other path must match bit-for-bit.
    Scalar,
    /// Safe 8-wide chunked Rust; the fallback when no vector ISA is
    /// detected (or on non-x86_64 hosts).
    Portable8,
    /// 8-lane `std::arch` AVX2 kernels with `maskload`/`maskstore`
    /// column tails.
    Avx2,
    /// 16-lane `std::arch` AVX-512F kernels with `__mmask16` column
    /// tails.
    Avx512,
}

impl SimdPath {
    /// Short lower-case name (`scalar`, `portable8`, `avx2`,
    /// `avx512`) for logs and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Portable8 => "portable8",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
        }
    }

    /// f32 lanes per vector register on this path (1 for scalar) —
    /// a numeric stand-in for the path in gauges.
    pub fn lanes(self) -> usize {
        match self {
            SimdPath::Scalar => 1,
            SimdPath::Portable8 | SimdPath::Avx2 => 8,
            SimdPath::Avx512 => 16,
        }
    }
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parsed intent of the `HELCFL_SIMD` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Pin the scalar reference kernels.
    Off,
    /// Insist on a vector path (portable fallback if none detected).
    On,
    /// Pick the best detected path (the default).
    Auto,
}

/// Parses a raw `HELCFL_SIMD` value. Pure so tests can cover the
/// table; the process-wide caller warns on stderr exactly once for an
/// unrecognized value (second tuple element), like `threads_from_env`.
pub fn simd_mode_from_env_value(raw: Option<&str>) -> (SimdMode, Option<String>) {
    let Some(raw) = raw else { return (SimdMode::Auto, None) };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => (SimdMode::Auto, None),
        "off" | "0" | "false" | "scalar" => (SimdMode::Off, None),
        "on" | "1" | "true" | "simd" => (SimdMode::On, None),
        _ => (
            SimdMode::Auto,
            Some(format!(
                "HELCFL_SIMD: unrecognized value {raw:?} (expected off|on|auto); using auto"
            )),
        ),
    }
}

/// The widest vector path this host supports (`Portable8` when no
/// vector ISA is detected, and on non-x86_64 architectures).
fn best_detected() -> SimdPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdPath::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdPath::Avx2;
        }
    }
    SimdPath::Portable8
}

/// Every path the host can execute, scalar first. Property tests
/// iterate this to pin cross-path bit-equality on one machine.
pub fn available_paths() -> Vec<SimdPath> {
    let mut paths = vec![SimdPath::Scalar, SimdPath::Portable8];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            paths.push(SimdPath::Avx2);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            paths.push(SimdPath::Avx512);
        }
    }
    paths
}

static ACTIVE: OnceLock<SimdPath> = OnceLock::new();

thread_local! {
    static FORCED: Cell<Option<SimdPath>> = const { Cell::new(None) };
}

/// Forces the calling thread's kernel path, bypassing the process-wide
/// choice. `None` restores normal dispatch. Test-only: one process can
/// otherwise never execute two paths, which is exactly what the
/// cross-path bit-equality suites need to compare.
#[doc(hidden)]
pub fn force_path_for_tests(path: Option<SimdPath>) {
    FORCED.with(|f| f.set(path));
}

/// The kernel path every `tensor.rs` `_into` kernel dispatches on.
///
/// Resolved once per process from `HELCFL_SIMD` + CPU detection (a
/// thread-local test override is consulted first). `off` → scalar,
/// `on`/`auto` → the best detected vector path.
pub fn active_path() -> SimdPath {
    if let Some(forced) = FORCED.with(|f| f.get()) {
        return forced;
    }
    *ACTIVE.get_or_init(|| {
        let raw = std::env::var("HELCFL_SIMD").ok();
        let (mode, warning) = simd_mode_from_env_value(raw.as_deref());
        if let Some(warning) = warning {
            eprintln!("{warning}");
        }
        match mode {
            SimdMode::Off => SimdPath::Scalar,
            SimdMode::On | SimdMode::Auto => best_detected(),
        }
    })
}

// ---------------------------------------------------------------------
// Dispatch entry points (crate-internal; `tensor.rs` calls these for
// every non-scalar path).
// ---------------------------------------------------------------------

/// `out(m×n) = lhs(m×k) · rhs(k×n)` with the scalar kernels' zero-skip
/// on `lhs` entries, plus optional fused bias/ReLU epilogue.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nn(
    path: SimdPath,
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(bias.is_none_or(|b| b.len() == n));
    match path {
        SimdPath::Scalar | SimdPath::Portable8 => {
            portable::nn::<true>(lhs, m, k, rhs, n, out, bias, relu);
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects these paths when the CPU
        // reports the feature (best_detected / available_paths).
        SimdPath::Avx2 => unsafe { avx2::nn::<true>(lhs, m, k, rhs, n, out, bias, relu) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdPath::Avx512 => unsafe { avx512::nn::<true>(lhs, m, k, rhs, n, out, bias, relu) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::nn::<true>(lhs, m, k, rhs, n, out, bias, relu),
    }
}

/// `out(m×n) = lhs(m×k) · panel(k×n)` with **no** zero-skip — the
/// packed-transpose form of `matmul_nt`, whose documented contract
/// computes every addend.
pub(crate) fn gemm_nn_noskip(
    path: SimdPath,
    lhs: &[f32],
    m: usize,
    k: usize,
    panel: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(panel.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match path {
        SimdPath::Scalar | SimdPath::Portable8 => {
            portable::nn::<false>(lhs, m, k, panel, n, out, None, false);
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature-gated by dispatch, as in `gemm_nn`.
        SimdPath::Avx2 => unsafe { avx2::nn::<false>(lhs, m, k, panel, n, out, None, false) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdPath::Avx512 => unsafe { avx512::nn::<false>(lhs, m, k, panel, n, out, None, false) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::nn::<false>(lhs, m, k, panel, n, out, None, false),
    }
}

/// `out(m×n) = lhs(k×m)ᵀ · rhs(k×n)` with the scalar kernel's
/// zero-skip on `lhs` entries (`lhs` is walked down its columns).
pub(crate) fn gemm_tn(
    path: SimdPath,
    lhs: &[f32],
    k: usize,
    m: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(lhs.len(), k * m);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match path {
        SimdPath::Scalar | SimdPath::Portable8 => portable::tn(lhs, k, m, rhs, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature-gated by dispatch, as in `gemm_nn`.
        SimdPath::Avx2 => unsafe { avx2::tn(lhs, k, m, rhs, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdPath::Avx512 => unsafe { avx512::tn(lhs, k, m, rhs, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => portable::tn(lhs, k, m, rhs, n, out),
    }
}

// ---------------------------------------------------------------------
// Portable 8-wide chunked fallback (safe Rust, any architecture).
// ---------------------------------------------------------------------

mod portable {
    /// Finishes one chunk: optional bias add, optional ReLU clamp
    /// (`v < 0.0` — NaN and `-0.0` pass through, like the scalar
    /// epilogue), then store.
    #[inline]
    fn store(orow: &mut [f32], acc: &[f32], bias: Option<&[f32]>, j: usize, relu: bool) {
        for (l, (o, &s)) in orow.iter_mut().zip(acc).enumerate() {
            let v = match bias {
                Some(bias) => s + bias[j + l],
                None => s,
            };
            *o = if relu && v < 0.0 { 0.0 } else { v };
        }
    }

    /// One output row in 8-wide column chunks plus one narrower tail
    /// chunk. The reduction operand is `lhs[base + kk*stride]`
    /// (`stride == 1` for NN, `stride == m` for TN), exactly like the
    /// scalar `gemm_row`.
    #[allow(clippy::too_many_arguments)]
    fn row<const SKIP: bool>(
        lhs: &[f32],
        base: usize,
        stride: usize,
        len: usize,
        rhs: &[f32],
        n: usize,
        orow: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = [0.0f32; 8];
            for kk in 0..len {
                let a = lhs[base + kk * stride];
                if SKIP && a == 0.0 {
                    continue;
                }
                let brow = &rhs[kk * n + j..kk * n + j + 8];
                for (s, &b) in acc.iter_mut().zip(brow) {
                    *s += a * b;
                }
            }
            store(&mut orow[j..j + 8], &acc, bias, j, relu);
            j += 8;
        }
        if j < n {
            let rem = n - j;
            let mut acc = [0.0f32; 8];
            for kk in 0..len {
                let a = lhs[base + kk * stride];
                if SKIP && a == 0.0 {
                    continue;
                }
                let brow = &rhs[kk * n + j..kk * n + j + rem];
                for (s, &b) in acc[..rem].iter_mut().zip(brow) {
                    *s += a * b;
                }
            }
            store(&mut orow[j..], &acc[..rem], bias, j, relu);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn nn<const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        for (i, orow) in out.chunks_exact_mut(n).take(m).enumerate() {
            row::<SKIP>(lhs, i * k, 1, k, rhs, n, orow, bias, relu);
        }
    }

    pub fn tn(lhs: &[f32], k: usize, m: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        for (i, orow) in out.chunks_exact_mut(n).take(m).enumerate() {
            row::<true>(lhs, i, m, k, rhs, n, orow, None, false);
        }
    }
}

// ---------------------------------------------------------------------
// AVX-512F kernels (16-lane zmm, masked column tails).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    #![allow(clippy::needless_range_loop)]

    use core::arch::x86_64::*;

    /// Bias/ReLU epilogue on one full vector. The ReLU uses an ordered
    /// `< 0.0` compare plus masked move — NOT `max(v, 0)` — so NaN and
    /// `-0.0` pass through exactly like the scalar `if v < 0.0`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn epilogue(mut v: __m512, bias: Option<&[f32]>, j: usize, relu: bool) -> __m512 {
        if let Some(bias) = bias {
            v = _mm512_add_ps(v, _mm512_loadu_ps(bias.as_ptr().add(j)));
        }
        if relu {
            let zero = _mm512_setzero_ps();
            let neg = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(v, zero);
            v = _mm512_mask_mov_ps(v, neg, zero);
        }
        v
    }

    /// [`epilogue`] for a masked tail vector (`mask` = active lanes).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn epilogue_masked(
        mut v: __m512,
        bias: Option<&[f32]>,
        j: usize,
        mask: __mmask16,
        relu: bool,
    ) -> __m512 {
        if let Some(bias) = bias {
            v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mask, bias.as_ptr().add(j)));
        }
        if relu {
            let zero = _mm512_setzero_ps();
            let neg = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(v, zero);
            v = _mm512_mask_mov_ps(v, neg, zero);
        }
        v
    }

    /// One strip of `NV` full vectors (16·NV columns at `j0`), all
    /// rows. Per row: NV zmm accumulators live across the whole
    /// ascending-`k` reduction; the zero test runs on the broadcast
    /// scalar before any load, like the scalar kernel.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    unsafe fn nn_strip<const NV: usize, const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        j0: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        for i in 0..m {
            let mut acc = [_mm512_setzero_ps(); NV];
            let arow = lhs.as_ptr().add(i * k);
            for kk in 0..k {
                let s = *arow.add(kk);
                if SKIP && s == 0.0 {
                    continue;
                }
                let av = _mm512_set1_ps(s);
                let brow = rhs.as_ptr().add(kk * n + j0);
                for v in 0..NV {
                    let bv = _mm512_loadu_ps(brow.add(v * 16));
                    acc[v] = _mm512_add_ps(acc[v], _mm512_mul_ps(av, bv));
                }
            }
            let orow = out.as_mut_ptr().add(i * n + j0);
            for v in 0..NV {
                let cv = epilogue(acc[v], bias, j0 + v * 16, relu);
                _mm512_storeu_ps(orow.add(v * 16), cv);
            }
        }
    }

    /// The sub-16-column tail (`rem = n - j0` lanes under `__mmask16`),
    /// four rows at a time so the masked `rhs` load is amortized across
    /// row accumulators — this is the whole kernel for the n=10 logit
    /// shapes, not a slow path.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    unsafe fn nn_tail<const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        j0: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        let rem = n - j0;
        debug_assert!((1..16).contains(&rem));
        let mask: __mmask16 = (1u16 << rem) - 1;
        let mut i = 0;
        while i + 4 <= m {
            let mut acc = [_mm512_setzero_ps(); 4];
            for kk in 0..k {
                let bv = _mm512_maskz_loadu_ps(mask, rhs.as_ptr().add(kk * n + j0));
                for r in 0..4 {
                    let s = *lhs.as_ptr().add((i + r) * k + kk);
                    if SKIP && s == 0.0 {
                        continue;
                    }
                    acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(_mm512_set1_ps(s), bv));
                }
            }
            for r in 0..4 {
                let cv = epilogue_masked(acc[r], bias, j0, mask, relu);
                _mm512_mask_storeu_ps(out.as_mut_ptr().add((i + r) * n + j0), mask, cv);
            }
            i += 4;
        }
        while i < m {
            let mut acc = _mm512_setzero_ps();
            for kk in 0..k {
                let s = *lhs.as_ptr().add(i * k + kk);
                if SKIP && s == 0.0 {
                    continue;
                }
                let bv = _mm512_maskz_loadu_ps(mask, rhs.as_ptr().add(kk * n + j0));
                acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(s), bv));
            }
            let cv = epilogue_masked(acc, bias, j0, mask, relu);
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i * n + j0), mask, cv);
            i += 1;
        }
    }

    /// NN driver: 64-column strips (4 zmm/row), then 16-column strips,
    /// then one masked tail.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn<const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        let mut j = 0;
        while j + 64 <= n {
            nn_strip::<4, SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
            j += 64;
        }
        while j + 16 <= n {
            nn_strip::<1, SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
            j += 16;
        }
        if j < n {
            nn_tail::<SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
        }
    }

    /// One `MI`-row × `NV`-vector block of the transposed-left product.
    /// Row `r` of `lhs` holds the `MI` reduction scalars for output
    /// rows `i0..i0+MI` *contiguously* (`lhs[r*m + i0 + t]`) — that
    /// contiguity is why TN blocks over output rows instead of walking
    /// one strided column per row like the scalar kernel. The `rhs`
    /// loads sit inside the skip branch: with ReLU-sparse left
    /// operands, a skipped scalar costs one test, no loads.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    unsafe fn tn_block<const MI: usize, const NV: usize>(
        lhs: &[f32],
        k: usize,
        m: usize,
        rhs: &[f32],
        n: usize,
        i0: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let mut acc = [[_mm512_setzero_ps(); NV]; MI];
        for r in 0..k {
            let arow = lhs.as_ptr().add(r * m + i0);
            let brow = rhs.as_ptr().add(r * n + j0);
            for t in 0..MI {
                let s = *arow.add(t);
                if s == 0.0 {
                    continue;
                }
                let av = _mm512_set1_ps(s);
                for v in 0..NV {
                    let bv = _mm512_loadu_ps(brow.add(v * 16));
                    acc[t][v] = _mm512_add_ps(acc[t][v], _mm512_mul_ps(av, bv));
                }
            }
        }
        for t in 0..MI {
            let orow = out.as_mut_ptr().add((i0 + t) * n + j0);
            for v in 0..NV {
                _mm512_storeu_ps(orow.add(v * 16), acc[t][v]);
            }
        }
    }

    /// Masked-tail TN columns: `rem` lanes, four output rows per pass
    /// with the masked `rhs` load hoisted across them.
    #[target_feature(enable = "avx512f")]
    unsafe fn tn_tail(lhs: &[f32], k: usize, m: usize, rhs: &[f32], n: usize, j0: usize, out: &mut [f32]) {
        let rem = n - j0;
        debug_assert!((1..16).contains(&rem));
        let mask: __mmask16 = (1u16 << rem) - 1;
        let mut i = 0;
        while i + 4 <= m {
            let mut acc = [_mm512_setzero_ps(); 4];
            for r in 0..k {
                let bv = _mm512_maskz_loadu_ps(mask, rhs.as_ptr().add(r * n + j0));
                let arow = lhs.as_ptr().add(r * m + i);
                for t in 0..4 {
                    let s = *arow.add(t);
                    if s == 0.0 {
                        continue;
                    }
                    acc[t] = _mm512_add_ps(acc[t], _mm512_mul_ps(_mm512_set1_ps(s), bv));
                }
            }
            for t in 0..4 {
                _mm512_mask_storeu_ps(out.as_mut_ptr().add((i + t) * n + j0), mask, acc[t]);
            }
            i += 4;
        }
        while i < m {
            let mut acc = _mm512_setzero_ps();
            for r in 0..k {
                let s = *lhs.as_ptr().add(r * m + i);
                if s == 0.0 {
                    continue;
                }
                let bv = _mm512_maskz_loadu_ps(mask, rhs.as_ptr().add(r * n + j0));
                acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(s), bv));
            }
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i * n + j0), mask, acc);
            i += 1;
        }
    }

    /// TN driver: 64-column strips in 8-row blocks (plus single-row
    /// remainder blocks), then 16-column strips, then one masked tail.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tn(lhs: &[f32], k: usize, m: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        let mut j = 0;
        while j + 64 <= n {
            let mut i = 0;
            while i + 8 <= m {
                tn_block::<8, 4>(lhs, k, m, rhs, n, i, j, out);
                i += 8;
            }
            while i < m {
                tn_block::<1, 4>(lhs, k, m, rhs, n, i, j, out);
                i += 1;
            }
            j += 64;
        }
        while j + 16 <= n {
            let mut i = 0;
            while i + 8 <= m {
                tn_block::<8, 1>(lhs, k, m, rhs, n, i, j, out);
                i += 8;
            }
            while i < m {
                tn_block::<1, 1>(lhs, k, m, rhs, n, i, j, out);
                i += 1;
            }
            j += 16;
        }
        if j < n {
            tn_tail(lhs, k, m, rhs, n, j, out);
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 kernels (8-lane ymm, maskload/maskstore column tails).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(clippy::needless_range_loop)]

    use core::arch::x86_64::*;

    /// Lane mask for an `rem`-lane tail (`-1` in active lanes): the
    /// sign-bit form `maskload`/`maskstore` consume.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_cmpgt_epi32(_mm256_set1_epi32(rem as i32), idx)
    }

    /// Bias/ReLU epilogue: ordered `< 0.0` compare + `andnot`, so NaN
    /// and `-0.0` pass through exactly like the scalar `if v < 0.0`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn epilogue(mut v: __m256, bias_v: Option<__m256>, relu: bool) -> __m256 {
        if let Some(b) = bias_v {
            v = _mm256_add_ps(v, b);
        }
        if relu {
            let neg = _mm256_cmp_ps::<_CMP_LT_OQ>(v, _mm256_setzero_ps());
            v = _mm256_andnot_ps(neg, v);
        }
        v
    }

    /// One strip of `NV` full vectors (8·NV columns at `j0`), all rows.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn nn_strip<const NV: usize, const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        j0: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        for i in 0..m {
            let mut acc = [_mm256_setzero_ps(); NV];
            let arow = lhs.as_ptr().add(i * k);
            for kk in 0..k {
                let s = *arow.add(kk);
                if SKIP && s == 0.0 {
                    continue;
                }
                let av = _mm256_set1_ps(s);
                let brow = rhs.as_ptr().add(kk * n + j0);
                for v in 0..NV {
                    let bv = _mm256_loadu_ps(brow.add(v * 8));
                    acc[v] = _mm256_add_ps(acc[v], _mm256_mul_ps(av, bv));
                }
            }
            let orow = out.as_mut_ptr().add(i * n + j0);
            for v in 0..NV {
                let bv = bias.map(|b| _mm256_loadu_ps(b.as_ptr().add(j0 + v * 8)));
                _mm256_storeu_ps(orow.add(v * 8), epilogue(acc[v], bv, relu));
            }
        }
    }

    /// Masked sub-8-column tail, four rows per pass with the masked
    /// `rhs` load hoisted across row accumulators.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn nn_tail<const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        j0: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        let rem = n - j0;
        debug_assert!((1..8).contains(&rem));
        let mask = tail_mask(rem);
        let bias_v = bias.map(|b| _mm256_maskload_ps(b.as_ptr().add(j0), mask));
        let mut i = 0;
        while i + 4 <= m {
            let mut acc = [_mm256_setzero_ps(); 4];
            for kk in 0..k {
                let bv = _mm256_maskload_ps(rhs.as_ptr().add(kk * n + j0), mask);
                for r in 0..4 {
                    let s = *lhs.as_ptr().add((i + r) * k + kk);
                    if SKIP && s == 0.0 {
                        continue;
                    }
                    acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_set1_ps(s), bv));
                }
            }
            for r in 0..4 {
                let cv = epilogue(acc[r], bias_v, relu);
                _mm256_maskstore_ps(out.as_mut_ptr().add((i + r) * n + j0), mask, cv);
            }
            i += 4;
        }
        while i < m {
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let s = *lhs.as_ptr().add(i * k + kk);
                if SKIP && s == 0.0 {
                    continue;
                }
                let bv = _mm256_maskload_ps(rhs.as_ptr().add(kk * n + j0), mask);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(s), bv));
            }
            let cv = epilogue(acc, bias_v, relu);
            _mm256_maskstore_ps(out.as_mut_ptr().add(i * n + j0), mask, cv);
            i += 1;
        }
    }

    /// NN driver: 32-column strips (4 ymm/row), then 8-column strips,
    /// then one masked tail.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn nn<const SKIP: bool>(
        lhs: &[f32],
        m: usize,
        k: usize,
        rhs: &[f32],
        n: usize,
        out: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) {
        let mut j = 0;
        while j + 32 <= n {
            nn_strip::<4, SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
            j += 32;
        }
        while j + 8 <= n {
            nn_strip::<1, SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
            j += 8;
        }
        if j < n {
            nn_tail::<SKIP>(lhs, m, k, rhs, n, j, out, bias, relu);
        }
    }

    /// One `MI`-row × 8-column TN block; the `rhs` vector is loaded
    /// once per `k` and shared across the `MI` contiguous left scalars.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn tn_block<const MI: usize>(
        lhs: &[f32],
        k: usize,
        m: usize,
        rhs: &[f32],
        n: usize,
        i0: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let mut acc = [_mm256_setzero_ps(); MI];
        for r in 0..k {
            let bv = _mm256_loadu_ps(rhs.as_ptr().add(r * n + j0));
            let arow = lhs.as_ptr().add(r * m + i0);
            for t in 0..MI {
                let s = *arow.add(t);
                if s == 0.0 {
                    continue;
                }
                acc[t] = _mm256_add_ps(acc[t], _mm256_mul_ps(_mm256_set1_ps(s), bv));
            }
        }
        for t in 0..MI {
            _mm256_storeu_ps(out.as_mut_ptr().add((i0 + t) * n + j0), acc[t]);
        }
    }

    /// Masked-tail TN columns, four rows per pass.
    #[target_feature(enable = "avx2")]
    unsafe fn tn_tail(lhs: &[f32], k: usize, m: usize, rhs: &[f32], n: usize, j0: usize, out: &mut [f32]) {
        let rem = n - j0;
        debug_assert!((1..8).contains(&rem));
        let mask = tail_mask(rem);
        let mut i = 0;
        while i + 4 <= m {
            let mut acc = [_mm256_setzero_ps(); 4];
            for r in 0..k {
                let bv = _mm256_maskload_ps(rhs.as_ptr().add(r * n + j0), mask);
                let arow = lhs.as_ptr().add(r * m + i);
                for t in 0..4 {
                    let s = *arow.add(t);
                    if s == 0.0 {
                        continue;
                    }
                    acc[t] = _mm256_add_ps(acc[t], _mm256_mul_ps(_mm256_set1_ps(s), bv));
                }
            }
            for t in 0..4 {
                _mm256_maskstore_ps(out.as_mut_ptr().add((i + t) * n + j0), mask, acc[t]);
            }
            i += 4;
        }
        while i < m {
            let mut acc = _mm256_setzero_ps();
            for r in 0..k {
                let s = *lhs.as_ptr().add(r * m + i);
                if s == 0.0 {
                    continue;
                }
                let bv = _mm256_maskload_ps(rhs.as_ptr().add(r * n + j0), mask);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(s), bv));
            }
            _mm256_maskstore_ps(out.as_mut_ptr().add(i * n + j0), mask, acc);
            i += 1;
        }
    }

    /// TN driver: 8-column strips in 8-row blocks (plus single-row
    /// remainder), then one masked tail.
    #[target_feature(enable = "avx2")]
    pub unsafe fn tn(lhs: &[f32], k: usize, m: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        let mut j = 0;
        while j + 8 <= n {
            let mut i = 0;
            while i + 8 <= m {
                tn_block::<8>(lhs, k, m, rhs, n, i, j, out);
                i += 8;
            }
            while i < m {
                tn_block::<1>(lhs, k, m, rhs, n, i, j, out);
                i += 1;
            }
            j += 8;
        }
        if j < n {
            tn_tail(lhs, k, m, rhs, n, j, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parse_table() {
        assert_eq!(simd_mode_from_env_value(None), (SimdMode::Auto, None));
        for v in ["", "auto", " AUTO ", "Auto"] {
            assert_eq!(simd_mode_from_env_value(Some(v)), (SimdMode::Auto, None), "{v:?}");
        }
        for v in ["off", "OFF", "0", "false", "scalar", " Scalar "] {
            assert_eq!(simd_mode_from_env_value(Some(v)), (SimdMode::Off, None), "{v:?}");
        }
        for v in ["on", "ON", "1", "true", "simd", " SIMD "] {
            assert_eq!(simd_mode_from_env_value(Some(v)), (SimdMode::On, None), "{v:?}");
        }
        let (mode, warning) = simd_mode_from_env_value(Some("avx9000"));
        assert_eq!(mode, SimdMode::Auto);
        let warning = warning.expect("unknown value must warn");
        assert!(warning.contains("avx9000"), "{warning}");
    }

    #[test]
    fn available_paths_start_with_scalar_and_portable() {
        let paths = available_paths();
        assert_eq!(paths[0], SimdPath::Scalar);
        assert_eq!(paths[1], SimdPath::Portable8);
        // Whatever else the host offers must be a vector path.
        for p in &paths[2..] {
            assert!(matches!(p, SimdPath::Avx2 | SimdPath::Avx512));
        }
    }

    #[test]
    fn force_path_overrides_and_restores() {
        force_path_for_tests(Some(SimdPath::Portable8));
        assert_eq!(active_path(), SimdPath::Portable8);
        force_path_for_tests(None);
        // Back to the process-wide choice, whatever it is.
        let p = active_path();
        assert!(available_paths().contains(&p));
    }

    #[test]
    fn path_names_are_stable() {
        assert_eq!(SimdPath::Scalar.name(), "scalar");
        assert_eq!(SimdPath::Portable8.name(), "portable8");
        assert_eq!(SimdPath::Avx2.name(), "avx2");
        assert_eq!(SimdPath::Avx512.to_string(), "avx512");
    }
}
