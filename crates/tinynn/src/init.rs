//! Seeded weight initialization.

use detrand::Rng;

use crate::error::Result;
use crate::tensor::Matrix;

/// Weight-initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// He/Kaiming uniform — suited to ReLU networks (the default).
    #[default]
    HeUniform,
    /// Xavier/Glorot uniform — suited to linear/softmax layers.
    XavierUniform,
    /// All zeros (used for biases and in tests).
    Zeros,
}

impl Init {
    /// Samples a `fan_in × fan_out` weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ZeroDimension`] for empty shapes.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut Rng) -> Result<Matrix> {
        let mut m = Matrix::zeros(fan_in, fan_out)?;
        let bound = match self {
            Self::HeUniform => (6.0 / fan_in as f32).sqrt(),
            Self::XavierUniform => (6.0 / (fan_in + fan_out) as f32).sqrt(),
            Self::Zeros => return Ok(m),
        };
        for v in m.as_mut_slice() {
            *v = rng.uniform_f32(-bound, bound);
        }
        Ok(m)
    }

    /// Samples with a fresh RNG seeded from `seed` — convenience for
    /// reproducible single-layer setups.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Init::sample`].
    pub fn sample_seeded(self, fan_in: usize, fan_out: usize, seed: u64) -> Result<Matrix> {
        self.sample(fan_in, fan_out, &mut Rng::seed_from_u64(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_bound_scales_with_fan_in() {
        let m = Init::HeUniform.sample_seeded(100, 10, 0).unwrap();
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        // Not degenerate: at least half the entries are non-zero.
        let nonzero = m.as_slice().iter().filter(|v| **v != 0.0).count();
        assert!(nonzero > 500);
    }

    #[test]
    fn xavier_bound_uses_both_fans() {
        let m = Init::XavierUniform.sample_seeded(50, 50, 1).unwrap();
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_is_all_zero() {
        let m = Init::Zeros.sample_seeded(4, 4, 2).unwrap();
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = Init::HeUniform.sample_seeded(8, 8, 42).unwrap();
        let b = Init::HeUniform.sample_seeded(8, 8, 42).unwrap();
        assert_eq!(a, b);
        let c = Init::HeUniform.sample_seeded(8, 8, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_shape_is_rejected() {
        assert!(Init::HeUniform.sample_seeded(0, 4, 0).is_err());
    }
}
