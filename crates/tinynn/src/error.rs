//! Error types for the neural-network substrate.

use core::fmt;

/// Errors produced by tensor and model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
        /// The operation that failed.
        op: &'static str,
    },
    /// A dimension that must be non-zero was zero.
    ZeroDimension {
        /// Where the zero dimension appeared.
        context: &'static str,
    },
    /// A flattened parameter vector had the wrong length.
    ParameterCountMismatch {
        /// Number of parameters the model holds.
        expected: usize,
        /// Number of parameters supplied.
        actual: usize,
    },
    /// A label was outside the model's class range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
    /// An operation requiring at least one sample received none.
    EmptyBatch,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Self::ZeroDimension { context } => {
                write!(f, "zero dimension in {context}")
            }
            Self::ParameterCountMismatch { expected, actual } => {
                write!(f, "expected {expected} parameters, got {actual}")
            }
            Self::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} outside class range 0..{classes}")
            }
            Self::EmptyBatch => write!(f, "operation requires a non-empty batch"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience alias for results carrying an [`NnError`].
pub type Result<T> = core::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_operation() {
        let e = NnError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "matmul" };
        assert_eq!(e.to_string(), "shape mismatch in matmul: 2x3 vs 4x5");
        assert!(NnError::EmptyBatch.to_string().contains("non-empty"));
        assert!(NnError::ZeroDimension { context: "layer width" }
            .to_string()
            .contains("layer width"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NnError>();
    }
}
