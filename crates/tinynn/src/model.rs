//! Multi-layer perceptron with ReLU hidden activations and a softmax
//! cross-entropy head — the local model `M_q` of every simulated user.
//!
//! The model exposes the two operations federated averaging needs:
//! a *flat parameter vector* view ([`Mlp::parameters`] /
//! [`Mlp::set_parameters`]) and a *single full-batch gradient-descent
//! step* ([`Mlp::train_step`], paper Eq. 3).

use detrand::Rng;

use crate::activation::{relu, relu_backward_inplace};
use crate::error::{NnError, Result};
use crate::init::Init;
use crate::layer::{Dense, DenseGrad};
use crate::loss::{
    softmax_cross_entropy, softmax_cross_entropy_into, softmax_cross_entropy_loss,
};
use crate::tensor::Matrix;

/// Gradients of all layers of an [`Mlp`], ordered input → output.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    pub(crate) layers: Vec<DenseGrad>,
}

impl Gradients {
    /// Per-layer gradients, input-most first.
    pub fn layers(&self) -> &[DenseGrad] {
        &self.layers
    }

    /// L2 norm of the full gradient (diagnostics / tests).
    pub fn norm(&self) -> f32 {
        let mut acc = 0.0f32;
        for g in &self.layers {
            acc += g.weights.as_slice().iter().map(|v| v * v).sum::<f32>();
            acc += g.bias.iter().map(|v| v * v).sum::<f32>();
        }
        acc.sqrt()
    }
}

/// Reusable forward/backward workspace for one [`Mlp`] shape.
///
/// Holds every intermediate buffer a training step needs — hidden
/// activations, the logits, the two alternating upstream-gradient
/// buffers, and the parameter-gradient storage — so
/// [`Mlp::train_step_with`] performs **zero heap allocation at steady
/// state**: buffers grow to the largest batch seen, then are reused.
/// In the parallel round engine each worker thread owns one scratch
/// and reuses it across all clients it trains.
///
/// Pre-activations are not stored: the fused forward kernel produces
/// `relu(x·W + b)` directly, and the backward ReLU mask reads the
/// activation instead — `act <= 0.0` holds exactly where `pre <= 0.0`
/// did (ReLU maps negatives to `+0.0` and preserves `0.0`, `-0.0`,
/// and NaN), so the mask is bitwise identical.
#[derive(Debug, Clone)]
pub struct TrainScratch {
    /// Post-ReLU activation of each hidden layer
    /// (`relu(x·W + b)`, produced by the fused forward kernel).
    pub(crate) acts: Vec<Matrix>,
    /// The last layer's affine output (`n × classes` logits).
    pub(crate) logits: Matrix,
    /// Upstream gradient buffers, swapped while walking backward.
    pub(crate) dz: Matrix,
    pub(crate) dx: Matrix,
    /// Parameter-gradient storage.
    pub(crate) grads: Gradients,
}

impl TrainScratch {
    /// Creates a scratch sized for `model` (buffers start minimal and
    /// grow to the steady-state batch size on first use).
    ///
    /// # Errors
    ///
    /// Propagates buffer-construction errors (unreachable for a valid
    /// model).
    pub fn for_model(model: &Mlp) -> Result<Self> {
        let num_layers = model.layers.len();
        let placeholder = Matrix::zeros(1, 1)?;
        let mut grads = Vec::with_capacity(num_layers);
        for layer in &model.layers {
            grads.push(DenseGrad::zeros(layer.fan_in(), layer.fan_out())?);
        }
        Ok(Self {
            acts: vec![placeholder.clone(); num_layers.saturating_sub(1)],
            logits: placeholder.clone(),
            dz: placeholder.clone(),
            dx: placeholder,
            grads: Gradients { layers: grads },
        })
    }

    /// The gradients computed by the most recent
    /// [`Mlp::gradients_into`] call.
    pub fn gradients(&self) -> &Gradients {
        &self.grads
    }
}

/// A ReLU MLP classifier.
///
/// # Examples
///
/// ```
/// use tinynn::model::Mlp;
/// use tinynn::tensor::Matrix;
///
/// // Tiny 4-feature, 3-class model.
/// let mut model = Mlp::new(&[4, 8, 3], 0)?;
/// let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4]])?;
/// let before = model.loss(&x, &[2])?;
/// for _ in 0..20 {
///     model.train_step(&x, &[2], 0.5)?;
/// }
/// assert!(model.loss(&x, &[2])? < before);
/// # Ok::<(), tinynn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    dims: Vec<usize>,
    pub(crate) layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths
    /// (`[input, hidden…, classes]`), He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if fewer than two widths are
    /// given or any width is zero.
    pub fn new(dims: &[usize], seed: u64) -> Result<Self> {
        if dims.len() < 2 || dims.contains(&0) {
            return Err(NnError::ZeroDimension { context: "Mlp::new dims" });
        }
        let mut rng = Rng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            let init =
                if layers.len() + 2 == dims.len() { Init::XavierUniform } else { Init::HeUniform };
            layers.push(Dense::new(w[0], w[1], init, &mut rng)?);
        }
        Ok(Self { dims: dims.to_vec(), layers })
    }

    /// Layer widths `[input, hidden…, classes]`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of output classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        *self.dims.last().expect("dims validated non-empty")
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Dense::num_parameters).sum()
    }

    /// In-memory model size in bits at `f32` precision — a lower bound
    /// for the upload payload `C_model` (Eq. 7). The evaluation keeps
    /// `C_model` configurable because the paper uploads SqueezeNet.
    pub fn size_bits(&self) -> u64 {
        self.num_parameters() as u64 * 32
    }

    /// Estimated floating-point operations for one sample's forward
    /// pass: 2·in·out multiply-accumulates plus the bias add and ReLU
    /// per layer. A backward pass costs roughly 2× this. Used by the
    /// telemetry report to contextualize throughput numbers; it is an
    /// estimate, not a measured count.
    pub fn flops_per_sample(&self) -> u64 {
        self.dims
            .windows(2)
            .map(|w| 2 * (w[0] as u64) * (w[1] as u64) + 2 * w[1] as u64)
            .sum()
    }

    /// Forward pass producing logits (`n × classes`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols()` differs from
    /// the input width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut a = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&a)?;
            a = if i + 1 < self.layers.len() { relu(&z) } else { z };
        }
        Ok(a)
    }

    /// Predicted class per row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward`].
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        Ok(self.forward(x)?.argmax_rows())
    }

    /// Mean cross-entropy loss on a batch (Eq. 1).
    ///
    /// # Errors
    ///
    /// Propagates forward/loss validation errors.
    pub fn loss(&self, x: &Matrix, labels: &[usize]) -> Result<f32> {
        softmax_cross_entropy_loss(&self.forward(x)?, labels)
    }

    /// Classification accuracy on a batch, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyBatch`] for an empty batch and
    /// propagates forward errors.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> Result<f64> {
        if labels.is_empty() || x.rows() != labels.len() {
            return Err(NnError::EmptyBatch);
        }
        let preds = self.predict(x)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// Full forward + backward pass: mean loss and parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape/label validation errors.
    pub fn gradients(&self, x: &Matrix, labels: &[usize]) -> Result<(f32, Gradients)> {
        // Forward, caching pre-activations and activations.
        let mut activations: Vec<Matrix> = Vec::with_capacity(self.layers.len() + 1);
        let mut pre_activations: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        activations.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(activations.last().expect("non-empty"))?;
            if i + 1 < self.layers.len() {
                activations.push(relu(&z));
                pre_activations.push(z);
            } else {
                pre_activations.push(z);
            }
        }
        let logits = pre_activations.last().expect("at least one layer");
        let (loss, mut dz) = softmax_cross_entropy(logits, labels)?;

        // Backward through layers.
        let mut grads: Vec<DenseGrad> = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &activations[i];
            let (grad, mut dx) = layer.backward(input, &dz)?;
            grads.push(grad);
            if i > 0 {
                relu_backward_inplace(&mut dx, &pre_activations[i - 1]);
                dz = dx;
            }
        }
        grads.reverse();
        Ok((loss, Gradients { layers: grads }))
    }

    /// Fused forward pass into `scratch`: each hidden activation via
    /// [`Dense::forward_relu_into`], the logits via
    /// [`Dense::forward_into`] — one output sweep per layer, no
    /// pre-activation buffers.
    fn forward_scratch(&self, x: &Matrix, scratch: &mut TrainScratch) -> Result<()> {
        let n = self.layers.len();
        for i in 0..n - 1 {
            if i == 0 {
                self.layers[0].forward_relu_into(x, &mut scratch.acts[0])?;
            } else {
                let (done, rest) = scratch.acts.split_at_mut(i);
                self.layers[i].forward_relu_into(&done[i - 1], &mut rest[0])?;
            }
        }
        let last_input = if n == 1 { x } else { &scratch.acts[n - 2] };
        self.layers[n - 1].forward_into(last_input, &mut scratch.logits)
    }

    /// [`Mlp::gradients`] without allocation: the loss is returned and
    /// the gradients land in `scratch` ([`TrainScratch::gradients`]).
    ///
    /// Bit-identical to [`Mlp::gradients`] — the fused forward kernels
    /// preserve the per-element accumulation order, and the
    /// activation-based ReLU mask matches the pre-activation mask bit
    /// for bit (see [`TrainScratch`]) — which a unit test pins.
    ///
    /// # Errors
    ///
    /// Propagates shape/label validation errors, and
    /// [`NnError::ParameterCountMismatch`] if `scratch` was built for a
    /// differently-shaped model.
    pub fn gradients_into(
        &self,
        x: &Matrix,
        labels: &[usize],
        scratch: &mut TrainScratch,
    ) -> Result<f32> {
        if scratch.grads.layers.len() != self.layers.len() {
            return Err(NnError::ParameterCountMismatch {
                expected: self.layers.len(),
                actual: scratch.grads.layers.len(),
            });
        }
        self.forward_scratch(x, scratch)?;
        let loss = softmax_cross_entropy_into(&scratch.logits, labels, &mut scratch.dz)?;

        // Backward through layers, alternating the dz/dx buffers and
        // masking with the saved activations. The input-most layer
        // takes the grads-only path: its `dx` has no earlier layer to
        // reach, so the `dz·Wᵀ` product is never formed.
        for i in (0..self.layers.len()).rev() {
            let input = if i == 0 { x } else { &scratch.acts[i - 1] };
            if i == 0 {
                self.layers[0].backward_grads_into(
                    input,
                    &scratch.dz,
                    &mut scratch.grads.layers[0],
                )?;
            } else {
                self.layers[i].backward_into(
                    input,
                    &scratch.dz,
                    &mut scratch.grads.layers[i],
                    &mut scratch.dx,
                )?;
                relu_backward_inplace(&mut scratch.dx, &scratch.acts[i - 1]);
                core::mem::swap(&mut scratch.dz, &mut scratch.dx);
            }
        }
        Ok(loss)
    }

    /// One full-batch gradient-descent step at learning rate `lr`
    /// (paper Eq. 3), returning the pre-step loss.
    ///
    /// # Errors
    ///
    /// Propagates shape/label validation errors.
    pub fn train_step(&mut self, x: &Matrix, labels: &[usize], lr: f32) -> Result<f32> {
        let (loss, grads) = self.gradients(x, labels)?;
        self.apply_gradients(&grads, lr)?;
        Ok(loss)
    }

    /// [`Mlp::train_step`] without allocation: gradients are computed
    /// into `scratch` and applied in place. This is the step the
    /// parallel round engine's per-worker trainers run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::gradients_into`].
    pub fn train_step_with(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        lr: f32,
        scratch: &mut TrainScratch,
    ) -> Result<f32> {
        let loss = self.gradients_into(x, labels, scratch)?;
        // Split the borrow: gradients live in scratch, weights in self.
        for (layer, grad) in self.layers.iter_mut().zip(&scratch.grads.layers) {
            layer.apply_step(grad, lr)?;
        }
        Ok(loss)
    }

    /// Forward pass into `scratch`'s buffers, returning the logits by
    /// reference — the allocation-free evaluation path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward`].
    pub fn forward_with<'s>(
        &self,
        x: &Matrix,
        scratch: &'s mut TrainScratch,
    ) -> Result<&'s Matrix> {
        if scratch.acts.len() + 1 != self.layers.len() {
            return Err(NnError::ParameterCountMismatch {
                expected: self.layers.len(),
                actual: scratch.acts.len() + 1,
            });
        }
        self.forward_scratch(x, scratch)?;
        Ok(&scratch.logits)
    }

    /// Applies precomputed gradients with learning rate `lr`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `grads` came from a
    /// differently-shaped model.
    pub fn apply_gradients(&mut self, grads: &Gradients, lr: f32) -> Result<()> {
        if grads.layers.len() != self.layers.len() {
            return Err(NnError::ParameterCountMismatch {
                expected: self.layers.len(),
                actual: grads.layers.len(),
            });
        }
        for (layer, grad) in self.layers.iter_mut().zip(&grads.layers) {
            layer.apply_step(grad, lr)?;
        }
        Ok(())
    }

    /// All parameters as one flat vector (layer order, weights then
    /// bias) — the object FedAvg averages.
    pub fn parameters(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            layer.write_parameters(&mut out);
        }
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Mlp::parameters`] on an identically-shaped model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCountMismatch`] on length
    /// disagreement.
    pub fn set_parameters(&mut self, params: &[f32]) -> Result<()> {
        if params.len() != self.num_parameters() {
            return Err(NnError::ParameterCountMismatch {
                expected: self.num_parameters(),
                actual: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_parameters(&params[offset..])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch() -> (Matrix, Vec<usize>) {
        // Two linearly separable clusters in 2-D.
        let x = Matrix::from_rows(&[
            &[1.0, 1.0],
            &[0.9, 1.2],
            &[1.1, 0.8],
            &[-1.0, -1.0],
            &[-0.8, -1.1],
            &[-1.2, -0.9],
        ])
        .unwrap();
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn constructor_validates_dims() {
        assert!(Mlp::new(&[4], 0).is_err());
        assert!(Mlp::new(&[4, 0, 2], 0).is_err());
        assert!(Mlp::new(&[], 0).is_err());
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let m = Mlp::new(&[64, 96, 48, 10], 0).unwrap();
        let expected = 64 * 96 + 96 + 96 * 48 + 48 + 48 * 10 + 10;
        assert_eq!(m.num_parameters(), expected);
        assert_eq!(m.size_bits(), expected as u64 * 32);
        let flops = 2 * 64 * 96 + 2 * 96 + 2 * 96 * 48 + 2 * 48 + 2 * 48 * 10 + 2 * 10;
        assert_eq!(m.flops_per_sample(), flops);
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let m = Mlp::new(&[4, 8, 3], 0).unwrap();
        let x = Matrix::zeros(5, 4).unwrap();
        assert_eq!(m.forward(&x).unwrap().shape(), (5, 3));
        let bad = Matrix::zeros(5, 3).unwrap();
        assert!(m.forward(&bad).is_err());
    }

    #[test]
    fn training_reduces_loss_and_reaches_full_accuracy() {
        let (x, y) = toy_batch();
        let mut m = Mlp::new(&[2, 8, 2], 1).unwrap();
        let initial = m.loss(&x, &y).unwrap();
        for _ in 0..200 {
            m.train_step(&x, &y, 0.5).unwrap();
        }
        assert!(m.loss(&x, &y).unwrap() < initial * 0.1);
        assert_eq!(m.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (x, y) = toy_batch();
        let m = Mlp::new(&[2, 4, 2], 7).unwrap();
        let (_, grads) = m.gradients(&x, &y).unwrap();
        // Check a handful of coordinates through the flat view.
        let params = m.parameters();
        let flat_grad: Vec<f32> = {
            let mut v = Vec::new();
            for g in grads.layers() {
                v.extend_from_slice(g.weights.as_slice());
                v.extend_from_slice(&g.bias);
            }
            v
        };
        let eps = 1e-2f32;
        for &idx in &[0usize, 3, 7, params.len() - 1] {
            let mut plus = m.clone();
            let mut p = params.clone();
            p[idx] += eps;
            plus.set_parameters(&p).unwrap();
            let mut minus = m.clone();
            p[idx] -= 2.0 * eps;
            minus.set_parameters(&p).unwrap();
            let numeric =
                (plus.loss(&x, &y).unwrap() - minus.loss(&x, &y).unwrap()) / (2.0 * eps);
            assert!(
                (numeric - flat_grad[idx]).abs() < 2e-2,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat_grad[idx]
            );
        }
    }

    #[test]
    fn parameter_roundtrip_is_identity() {
        let m = Mlp::new(&[3, 5, 4, 2], 9).unwrap();
        let mut copy = Mlp::new(&[3, 5, 4, 2], 100).unwrap();
        assert_ne!(m, copy);
        copy.set_parameters(&m.parameters()).unwrap();
        assert_eq!(m, copy);
    }

    #[test]
    fn set_parameters_rejects_wrong_length() {
        let mut m = Mlp::new(&[3, 2], 0).unwrap();
        assert!(matches!(
            m.set_parameters(&[0.0; 3]),
            Err(NnError::ParameterCountMismatch { .. })
        ));
    }

    #[test]
    fn apply_gradients_rejects_mismatched_model() {
        let (x, y) = toy_batch();
        let small = Mlp::new(&[2, 2], 0).unwrap();
        let (_, grads) = small.gradients(&x, &y).unwrap();
        let mut big = Mlp::new(&[2, 4, 4, 2], 0).unwrap();
        assert!(big.apply_gradients(&grads, 0.1).is_err());
    }

    #[test]
    fn same_seed_same_model() {
        assert_eq!(Mlp::new(&[4, 8, 3], 5).unwrap(), Mlp::new(&[4, 8, 3], 5).unwrap());
        assert_ne!(Mlp::new(&[4, 8, 3], 5).unwrap(), Mlp::new(&[4, 8, 3], 6).unwrap());
    }

    #[test]
    fn accuracy_requires_consistent_batch() {
        let m = Mlp::new(&[2, 2], 0).unwrap();
        let x = Matrix::zeros(2, 2).unwrap();
        assert!(m.accuracy(&x, &[]).is_err());
        assert!(m.accuracy(&x, &[0]).is_err());
    }

    #[test]
    fn gradients_into_is_bit_identical_to_gradients() {
        let (x, y) = toy_batch();
        let m = Mlp::new(&[2, 4, 3, 2], 11).unwrap();
        let (loss, grads) = m.gradients(&x, &y).unwrap();
        let mut scratch = TrainScratch::for_model(&m).unwrap();
        // Run twice so the second pass exercises fully-reused buffers.
        for _ in 0..2 {
            let loss2 = m.gradients_into(&x, &y, &mut scratch).unwrap();
            assert_eq!(loss, loss2);
            assert_eq!(&grads, scratch.gradients());
        }
    }

    #[test]
    fn forward_with_matches_forward() {
        let (x, _) = toy_batch();
        let m = Mlp::new(&[2, 5, 2], 4).unwrap();
        let want = m.forward(&x).unwrap();
        let mut scratch = TrainScratch::for_model(&m).unwrap();
        let got = m.forward_with(&x, &mut scratch).unwrap();
        assert_eq!(&want, got);
    }

    #[test]
    fn train_step_with_matches_train_step() {
        let (x, y) = toy_batch();
        let mut a = Mlp::new(&[2, 6, 2], 2).unwrap();
        let mut b = a.clone();
        let mut scratch = TrainScratch::for_model(&b).unwrap();
        for _ in 0..5 {
            let la = a.train_step(&x, &y, 0.3).unwrap();
            let lb = b.train_step_with(&x, &y, 0.3, &mut scratch).unwrap();
            assert_eq!(la, lb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_rejects_mismatched_model() {
        let (x, y) = toy_batch();
        let m = Mlp::new(&[2, 4, 2], 0).unwrap();
        let other = Mlp::new(&[2, 4, 4, 2], 0).unwrap();
        let mut scratch = TrainScratch::for_model(&other).unwrap();
        assert!(m.gradients_into(&x, &y, &mut scratch).is_err());
    }

    #[test]
    fn gradient_norm_is_positive_for_unfit_model() {
        let (x, y) = toy_batch();
        let m = Mlp::new(&[2, 4, 2], 3).unwrap();
        let (_, g) = m.gradients(&x, &y).unwrap();
        assert!(g.norm() > 0.0);
    }
}
