//! Fully-connected layer.


use crate::error::{NnError, Result};
use crate::init::Init;
use crate::tensor::{Matrix, NtPanel};
use detrand::Rng;

/// A dense (fully-connected) layer `y = x·W + b`.
///
/// Weights are `fan_in × fan_out`; bias is a length-`fan_out` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
}

/// Parameter gradients of one [`Dense`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrad {
    /// Gradient w.r.t. the weights.
    pub weights: Matrix,
    /// Gradient w.r.t. the bias.
    pub bias: Vec<f32>,
}

impl DenseGrad {
    /// Zero-valued gradients shaped for a `fan_in × fan_out` layer —
    /// the reusable storage behind [`Dense::backward_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for empty shapes.
    pub fn zeros(fan_in: usize, fan_out: usize) -> Result<Self> {
        Ok(Self { weights: Matrix::zeros(fan_in, fan_out)?, bias: vec![0.0; fan_out] })
    }
}

impl Dense {
    /// Creates a layer with `init`-sampled weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for empty shapes.
    pub fn new(fan_in: usize, fan_out: usize, init: Init, rng: &mut Rng) -> Result<Self> {
        Ok(Self { weights: init.sample(fan_in, fan_out, rng)?, bias: vec![0.0; fan_out] })
    }

    /// Creates a layer from explicit parameters (tests / golden setups).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len()` differs from
    /// the weights' column count.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>) -> Result<Self> {
        if bias.len() != weights.cols() {
            return Err(NnError::ShapeMismatch {
                left: weights.shape(),
                right: (1, bias.len()),
                op: "Dense::from_parts",
            });
        }
        Ok(Self { weights, bias })
    }

    /// Input width.
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    #[inline]
    pub fn fan_out(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix.
    #[inline]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    #[inline]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of scalar parameters (`fan_in·fan_out + fan_out`).
    #[inline]
    pub fn num_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Forward pass `x·W + b`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != fan_in`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = x.matmul(&self.weights)?;
        out.add_row_broadcast(&self.bias)?;
        Ok(out)
    }

    /// Forward pass `x·W + b` into a caller-owned buffer (resized as
    /// needed; zero allocation at steady state).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != fan_in`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        x.matmul_bias_into(&self.weights, &self.bias, out)
    }

    /// Fused forward + ReLU `relu(x·W + b)` into a caller-owned buffer
    /// — the hidden-layer fast path: one sweep over the output instead
    /// of a matmul, a bias broadcast, and a ReLU copy. Bit-identical
    /// to [`Dense::forward_into`] followed by
    /// [`crate::activation::relu_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != fan_in`.
    pub fn forward_relu_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        x.matmul_bias_relu_into(&self.weights, &self.bias, out)
    }

    /// Backward pass: given the input `x` and the upstream gradient
    /// `dz` (w.r.t. this layer's output), returns this layer's
    /// parameter gradients and the gradient w.r.t. `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on inconsistent shapes.
    pub fn backward(&self, x: &Matrix, dz: &Matrix) -> Result<(DenseGrad, Matrix)> {
        let mut grad = DenseGrad::zeros(self.fan_in(), self.fan_out())?;
        let mut dx = Matrix::zeros(dz.rows(), self.fan_in())?;
        self.backward_into(x, dz, &mut grad, &mut dx)?;
        Ok((grad, dx))
    }

    /// Backward pass writing the parameter gradients and the input
    /// gradient into caller-owned buffers (resized as needed; zero
    /// allocation at steady state).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on inconsistent shapes.
    pub fn backward_into(
        &self,
        x: &Matrix,
        dz: &Matrix,
        grad: &mut DenseGrad,
        dx: &mut Matrix,
    ) -> Result<()> {
        x.matmul_tn_into(dz, &mut grad.weights)?;
        dz.col_sums_into(&mut grad.bias);
        dz.matmul_nt_into(&self.weights, dx)
    }

    /// [`Dense::backward_into`] with the `dz·Wᵀ` product taken against
    /// a pre-packed copy of this layer's weights — the cohort-batching
    /// form, where one packed panel of the round's shared global
    /// weights serves every client in a dispatch instead of being
    /// re-staged per client per layer. Bit-identical to
    /// [`Dense::backward_into`] (see
    /// [`Matrix::matmul_nt_packed_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `panel` was not packed
    /// from a matrix of this layer's weight shape, or on inconsistent
    /// input shapes.
    pub fn backward_into_packed(
        &self,
        x: &Matrix,
        dz: &Matrix,
        grad: &mut DenseGrad,
        dx: &mut Matrix,
        panel: &NtPanel,
    ) -> Result<()> {
        if panel.src_shape() != self.weights.shape() {
            return Err(NnError::ShapeMismatch {
                left: self.weights.shape(),
                right: panel.src_shape(),
                op: "Dense::backward_into_packed",
            });
        }
        x.matmul_tn_into(dz, &mut grad.weights)?;
        dz.col_sums_into(&mut grad.bias);
        dz.matmul_nt_packed_into(panel, dx)
    }

    /// [`Dense::backward_into`] without the input gradient `dz·Wᵀ` —
    /// for the input-most layer, whose `dx` has nothing left to flow
    /// into. Skipping it drops the largest backward matmul of the
    /// paper's MLP (`batch × fan_in × fan_out`) and cannot affect any
    /// result: the parameter gradients are computed by the identical
    /// kernels, and `dx` was previously discarded.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on inconsistent shapes.
    pub fn backward_grads_into(
        &self,
        x: &Matrix,
        dz: &Matrix,
        grad: &mut DenseGrad,
    ) -> Result<()> {
        x.matmul_tn_into(dz, &mut grad.weights)?;
        dz.col_sums_into(&mut grad.bias);
        Ok(())
    }

    /// In-place gradient-descent step `θ ← θ - lr·∇θ` (paper Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the gradient shapes do not
    /// match this layer.
    pub fn apply_step(&mut self, grad: &DenseGrad, lr: f32) -> Result<()> {
        self.weights.add_scaled(&grad.weights, -lr)?;
        if grad.bias.len() != self.bias.len() {
            return Err(NnError::ShapeMismatch {
                left: (1, self.bias.len()),
                right: (1, grad.bias.len()),
                op: "Dense::apply_step",
            });
        }
        for (b, &g) in self.bias.iter_mut().zip(&grad.bias) {
            *b -= lr * g;
        }
        Ok(())
    }

    /// Appends all parameters (weights row-major, then bias) to `out`.
    pub fn write_parameters(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Reads parameters back from a flat slice, returning how many
    /// values were consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCountMismatch`] if `src` is too
    /// short.
    pub fn read_parameters(&mut self, src: &[f32]) -> Result<usize> {
        let need = self.num_parameters();
        if src.len() < need {
            return Err(NnError::ParameterCountMismatch { expected: need, actual: src.len() });
        }
        let w_len = self.weights.rows() * self.weights.cols();
        self.weights.as_mut_slice().copy_from_slice(&src[..w_len]);
        self.bias.copy_from_slice(&src[w_len..need]);
        Ok(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        Dense::from_parts(w, vec![0.5, -0.5]).unwrap()
    }

    #[test]
    fn forward_is_affine() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 2.5]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let l = layer();
        let x = Matrix::zeros(1, 2).unwrap();
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn backward_shapes_are_consistent() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]).unwrap();
        let dz = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let (grad, dx) = l.backward(&x, &dz).unwrap();
        assert_eq!(grad.weights.shape(), (3, 2));
        assert_eq!(grad.bias.len(), 2);
        assert_eq!(dx.shape(), (2, 3));
        // dW = xᵀ·dz → dW[0][0] = 1·1 + 0·0 = 1.
        assert_eq!(grad.weights.at(0, 0), 1.0);
        // db = column sums of dz.
        assert_eq!(grad.bias, vec![1.0, 1.0]);
    }

    #[test]
    fn apply_step_moves_against_gradient() {
        let mut l = layer();
        let grad = DenseGrad {
            weights: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0], &[0.0, 0.0]]).unwrap(),
            bias: vec![0.0, 1.0],
        };
        l.apply_step(&grad, 0.1).unwrap();
        assert!((l.weights().at(0, 0) - 0.9).abs() < 1e-6);
        assert!((l.bias()[1] - (-0.6)).abs() < 1e-6);
    }

    #[test]
    fn apply_step_rejects_mismatched_bias() {
        let mut l = layer();
        let grad =
            DenseGrad { weights: Matrix::zeros(3, 2).unwrap(), bias: vec![0.0; 3] };
        assert!(l.apply_step(&grad, 0.1).is_err());
    }

    #[test]
    fn parameter_roundtrip_preserves_layer() {
        let mut rng = Rng::seed_from_u64(3);
        let l = Dense::new(4, 3, Init::HeUniform, &mut rng).unwrap();
        let mut flat = Vec::new();
        l.write_parameters(&mut flat);
        assert_eq!(flat.len(), l.num_parameters());
        let mut l2 = Dense::new(4, 3, Init::Zeros, &mut rng).unwrap();
        let consumed = l2.read_parameters(&flat).unwrap();
        assert_eq!(consumed, flat.len());
        assert_eq!(&l2, &l);
        assert!(l2.read_parameters(&flat[..5]).is_err());
    }

    #[test]
    fn from_parts_validates_bias_length() {
        let w = Matrix::zeros(2, 2).unwrap();
        assert!(Dense::from_parts(w, vec![0.0; 3]).is_err());
    }
}
