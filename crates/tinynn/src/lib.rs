//! # tinynn — minimal neural-network substrate
//!
//! The learning machinery the HELCFL reproduction trains with: a
//! row-major `f32` matrix, dense ReLU MLPs with a softmax
//! cross-entropy head, full-batch gradient descent (paper Eq. 3), and
//! the flat-parameter view federated averaging (Eq. 18) requires.
//!
//! Everything is deterministic given a seed and entirely
//! dependency-free (randomness comes from the workspace's own
//! `detrand` crate) — see DESIGN.md §3/§4 for why the reproduction
//! substitutes an MLP for SqueezeNet.
//!
//! ## Quick tour
//!
//! ```
//! use tinynn::model::Mlp;
//! use tinynn::tensor::Matrix;
//!
//! let mut model = Mlp::new(&[2, 8, 2], 42)?;
//! let x = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]])?;
//! let y = [0usize, 1];
//! for _ in 0..100 {
//!     model.train_step(&x, &y, 0.5)?;
//! }
//! assert_eq!(model.accuracy(&x, &y)?, 1.0);
//! # Ok::<(), tinynn::NnError>(())
//! ```

// `deny`, not `forbid`: the `simd` module opts back in (module-local
// `#![allow]`) for the std::arch intrinsic kernels. Everything else in
// the crate stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod batch;
pub mod error;
pub mod init;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod simd;
pub mod tensor;

pub use error::{NnError, Result};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::tensor::Matrix>();
        assert_send_sync::<crate::model::Mlp>();
        assert_send_sync::<crate::NnError>();
    }
}
