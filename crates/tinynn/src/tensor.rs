//! A minimal row-major `f32` matrix — the only tensor the FL
//! simulation needs.
//!
//! The design goals are *determinism* and *allocation discipline*: the
//! hot kernels (`matmul`, `matmul_tn`, `matmul_nt`) come in `_into`
//! variants that write into caller-owned buffers, register-blocked
//! over the output columns, so steady-state training performs zero
//! heap allocation per step. Summation order per output element is
//! fixed (ascending reduction index, one accumulator per element)
//! regardless of blocking, which keeps results bit-identical across
//! buffer reuse, blocking width, and thread counts.

use crate::error::{NnError, Result};
use crate::simd::{self, SimdPath};

/// Output columns per wide register block: each block keeps this many
/// `f32` accumulators live in vector registers across the whole
/// reduction, amortizing the per-`k` operand broadcast and zero test
/// over many independent SIMD lanes. Remaining columns (`< WIDE`) are
/// handled by a single runtime-width tail pass — never by repeated
/// narrower blocks, which would re-run the reduction (and re-pay every
/// data-dependent zero-test branch miss) once per block with too few
/// lanes to amortize it.
const WIDE: usize = 32;

/// Output elements per [`Matrix::matmul_nt_into`] block: that kernel
/// has no zero skip, so its block width is chosen for dependency-chain
/// parallelism (independent scalar accumulators), not branch
/// amortization.
const NT_BLOCK: usize = 8;

/// Accumulates one register block of an output row.
///
/// Element `k` of the reduction operand lives at `lhs[k * stride]`
/// (`stride == 1` for a contiguous row, `stride == cols` for a
/// transposed-left walk). For each `k` with a nonzero operand —
/// the zero test sits here, hoisted out of the unrolled column loop —
/// the block adds `a * rhs[k][j..j + W]` into `W` register
/// accumulators. Every accumulator sees the ascending-`k` addition
/// sequence of the naive kernel starting from `0.0`, so the stored
/// block is bit-identical to the unblocked result while the per-`k`
/// read-modify-write of the output row is gone.
///
/// `SKIP` selects the zero-skip contract: `true` for the NN/TN family
/// (ReLU-sparse left operands), `false` for the packed-transpose
/// `matmul_nt` form, whose documented contract computes every addend.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_block<const W: usize, const SKIP: bool>(
    lhs: &[f32],
    stride: usize,
    len: usize,
    rhs: &[f32],
    cols: usize,
    j: usize,
    out: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    let mut acc = [0.0f32; W];
    for k in 0..len {
        let a = lhs[k * stride];
        if SKIP && a == 0.0 {
            continue;
        }
        let row = &rhs[k * cols + j..k * cols + j + W];
        for (s, &b) in acc.iter_mut().zip(row) {
            *s += a * b;
        }
    }
    match bias {
        // The fused bias is one post-sum addition per element — the
        // same arithmetic the separate broadcast pass performed — and
        // the ReLU clamp (`v < 0.0`) passes NaN and `-0.0` through
        // unchanged, matching `relu_into`.
        Some(bias) => {
            for ((o, &s), &b) in out.iter_mut().zip(&acc).zip(&bias[j..j + W]) {
                let v = s + b;
                *o = if relu && v < 0.0 { 0.0 } else { v };
            }
        }
        None => {
            for (o, &s) in out.iter_mut().zip(&acc) {
                *o = if relu && s < 0.0 { 0.0 } else { s };
            }
        }
    }
}

/// Remainder block of an output row: like [`gemm_block`] but for a
/// runtime width `out.len() < WIDE`, so the final sub-`WIDE` columns of
/// a row cost exactly one pass over the reduction operand. Same
/// ascending-`k`, one-accumulator-per-element arithmetic; the `WIDE`
/// accumulator array is simply used partially.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_tail<const SKIP: bool>(
    lhs: &[f32],
    stride: usize,
    len: usize,
    rhs: &[f32],
    cols: usize,
    j: usize,
    out: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    debug_assert!(out.len() < WIDE);
    let width = out.len();
    let mut acc = [0.0f32; WIDE];
    let acc = &mut acc[..width];
    for k in 0..len {
        let a = lhs[k * stride];
        if SKIP && a == 0.0 {
            continue;
        }
        let row = &rhs[k * cols + j..k * cols + j + width];
        for (s, &b) in acc.iter_mut().zip(row) {
            *s += a * b;
        }
    }
    match bias {
        Some(bias) => {
            for ((o, &s), &b) in out.iter_mut().zip(acc.iter()).zip(&bias[j..j + width]) {
                let v = s + b;
                *o = if relu && v < 0.0 { 0.0 } else { v };
            }
        }
        None => {
            for (o, &s) in out.iter_mut().zip(acc.iter()) {
                *o = if relu && s < 0.0 { 0.0 } else { s };
            }
        }
    }
}

/// One full output row via [`gemm_block`]: wide blocks, then a single
/// runtime-width [`gemm_tail`] for whatever is left, all sharing the
/// one reduction operand described by `(lhs, stride, len)`.
#[allow(clippy::too_many_arguments)]
fn gemm_row<const SKIP: bool>(
    lhs: &[f32],
    stride: usize,
    len: usize,
    rhs: &[f32],
    cols: usize,
    out_row: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    let mut j = 0;
    let mut wide = out_row.chunks_exact_mut(WIDE);
    for chunk in wide.by_ref() {
        gemm_block::<WIDE, SKIP>(lhs, stride, len, rhs, cols, j, chunk, bias, relu);
        j += WIDE;
    }
    let rem = wide.into_remainder();
    if !rem.is_empty() {
        gemm_tail::<SKIP>(lhs, stride, len, rhs, cols, j, rem, bias, relu);
    }
}

thread_local! {
    /// Per-thread packing scratch for the SIMD `matmul_nt_into` path:
    /// the transposed right operand is staged here so the product can
    /// run through the contiguous no-skip NN kernel. Reused across
    /// calls, so steady-state training stays allocation-free.
    static NT_PANEL: std::cell::RefCell<NtPanel> = std::cell::RefCell::new(NtPanel::new());
}

/// A right operand packed in transposed (`k × n`) layout for
/// [`Matrix::matmul_nt_packed_into`].
///
/// `matmul_nt` computes `self · rhsᵀ` with `rhs` stored `n × k`;
/// packing stages `panel[kk·n + j] = rhs[j][kk]` once so every product
/// against the same `rhs` walks contiguous rows — the form the SIMD
/// lanes want, and the piece cohort batching shares across a round's
/// clients (all of whom multiply by the same just-loaded global
/// weights). The packed product is bit-identical to the direct kernel:
/// element `(i, j)` still sums `self[i][kk] · rhs[j][kk]` in ascending
/// `kk` into one accumulator, with no zero-skip on either side.
#[derive(Debug, Clone, Default)]
pub struct NtPanel {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl NtPanel {
    /// An empty panel; [`NtPanel::pack`] gives it a shape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `rhs` (stored `n × k`) in transposed `k × n` layout,
    /// reusing the existing allocation when capacity allows.
    pub fn pack(&mut self, rhs: &Matrix) {
        self.n = rhs.rows;
        self.k = rhs.cols;
        self.data.clear();
        self.data.resize(self.k * self.n, 0.0);
        for (j, row) in rhs.data.chunks_exact(self.k).enumerate() {
            for (kk, &v) in row.iter().enumerate() {
                self.data[kk * self.n + j] = v;
            }
        }
    }

    /// Shape of the packed operand as `(n, k)` — the shape of the
    /// `rhs` matrix it was packed from.
    pub fn src_shape(&self) -> (usize, usize) {
        (self.n, self.k)
    }
}

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tinynn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok::<(), tinynn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::zeros" });
        }
        Ok(Self { rows, cols, data: vec![0.0; rows * cols] })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows*cols`
    /// and [`NnError::ZeroDimension`] for empty shapes.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::from_vec" });
        }
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for no rows or empty rows and
    /// [`NnError::ShapeMismatch`] for ragged rows.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let r = rows.len();
        if r == 0 || rows[0].is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::from_rows" });
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(NnError::ShapeMismatch {
                    left: (1, c),
                    right: (1, row.len()),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: r, cols: c, data })
    }

    /// The `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "identity size must be non-zero");
        let mut m = Self::zeros(n, n).expect("n > 0");
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix holding the given subset of rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for an empty index set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::select_rows" });
        }
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self::from_vec(indices.len(), self.cols, data)
    }

    /// Reshapes this matrix to `rows × cols`, reusing the existing
    /// allocation when capacity allows. Contents become all zeros.
    ///
    /// This is the buffer-reuse primitive behind every `_into` kernel:
    /// once a scratch matrix has grown to its steady-state size,
    /// resizing is a `memset`, not an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if either dimension is zero.
    pub fn resize(&mut self, rows: usize, cols: usize) -> Result<()> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::resize" });
        }
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        Ok(())
    }

    /// [`Matrix::resize`] minus the zeroing, for kernels that are about
    /// to overwrite every element anyway: shrinking or reusing the
    /// steady-state buffer touches no data at all (the public `resize`
    /// memsets ~51 KB per 200×64 activation, ~10% of a fused-kernel
    /// call), and growth zero-fills only the new tail.
    fn resize_for_kernel(&mut self, rows: usize, cols: usize) -> Result<()> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::resize" });
        }
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
        Ok(())
    }

    /// Copies `src` into `self`, resizing as needed (no allocation once
    /// capacity suffices).
    pub fn copy_from(&mut self, src: &Self) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.rows, rhs.cols)?;
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Register-blocked matrix product `self · rhs` written into `out`
    /// (resized as needed; zero allocation at steady state).
    ///
    /// Each output row is produced in blocks of [`WIDE`] columns (plus
    /// one runtime-width tail block) whose accumulators live in
    /// registers for the whole reduction; the ascending-`k` accumulation
    /// order of the naive `ikj` loop is preserved, so the result is
    /// bit-identical to the unblocked kernel. Zero entries of `self`
    /// are skipped — the test runs once per `k`, outside the unrolled
    /// column loop — which ReLU activations make frequent.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        out.resize_for_kernel(self.rows, rhs.cols)?;
        match simd::active_path() {
            SimdPath::Scalar => {
                for i in 0..self.rows {
                    let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    gemm_row::<true>(lhs_row, 1, self.cols, &rhs.data, rhs.cols, out_row, None, false);
                }
            }
            path => simd::gemm_nn(
                path,
                &self.data,
                self.rows,
                self.cols,
                &rhs.data,
                rhs.cols,
                &mut out.data,
                None,
                false,
            ),
        }
        Ok(())
    }

    /// Fused `self · rhs + bias` (row broadcast) written into `out`.
    ///
    /// Exactly [`Matrix::matmul_into`] followed by
    /// [`Matrix::add_row_broadcast`] — the bias lands on each finished
    /// register accumulator as a single post-sum addition, the same
    /// operation the separate pass performed per element — but in one
    /// sweep over the output, eliminating a full read-modify-write.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless `self.cols == rhs.rows`
    /// and `bias.len() == rhs.cols`.
    pub fn matmul_bias_into(&self, rhs: &Self, bias: &[f32], out: &mut Self) -> Result<()> {
        self.matmul_bias_fused(rhs, bias, false, out)
    }

    /// [`Matrix::matmul_bias_into`] with a fused ReLU epilogue:
    /// `relu(self · rhs + bias)` in one output sweep. Negative sums
    /// clamp to zero before the store (`v < 0.0` — NaN and `-0.0` pass
    /// through unchanged, exactly like `relu_into` applied afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless `self.cols == rhs.rows`
    /// and `bias.len() == rhs.cols`.
    pub fn matmul_bias_relu_into(
        &self,
        rhs: &Self,
        bias: &[f32],
        out: &mut Self,
    ) -> Result<()> {
        self.matmul_bias_fused(rhs, bias, true, out)
    }

    fn matmul_bias_fused(
        &self,
        rhs: &Self,
        bias: &[f32],
        relu: bool,
        out: &mut Self,
    ) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_bias",
            });
        }
        if bias.len() != rhs.cols {
            return Err(NnError::ShapeMismatch {
                left: (1, bias.len()),
                right: (1, rhs.cols),
                op: "matmul_bias",
            });
        }
        out.resize_for_kernel(self.rows, rhs.cols)?;
        match simd::active_path() {
            SimdPath::Scalar => {
                for i in 0..self.rows {
                    let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    gemm_row::<true>(
                        lhs_row,
                        1,
                        self.cols,
                        &rhs.data,
                        rhs.cols,
                        out_row,
                        Some(bias),
                        relu,
                    );
                }
            }
            path => simd::gemm_nn(
                path,
                &self.data,
                self.rows,
                self.cols,
                &rhs.data,
                rhs.cols,
                &mut out.data,
                Some(bias),
                relu,
            ),
        }
        Ok(())
    }

    /// Transposed-left product `selfᵀ · rhs` without materializing the
    /// transpose (used for weight gradients `aᵀ·δ`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.cols, rhs.cols)?;
        self.matmul_tn_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Register-blocked `selfᵀ · rhs` written into `out` (resized as
    /// needed).
    ///
    /// The reduction runs over the shared row index `r`, walking the
    /// left operand with a column stride; `r` ascends with one register
    /// accumulator per output element, so accumulation order — and
    /// therefore the float result — matches the naive loop, including
    /// its skip of zero left entries (ReLU activations upstream).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn matmul_tn_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_tn",
            });
        }
        out.resize_for_kernel(self.cols, rhs.cols)?;
        match simd::active_path() {
            SimdPath::Scalar => {
                for i in 0..self.cols {
                    // Element `r` of this output row's reduction operand is
                    // column `i` of left row `r`: `self.data[i + r * cols]`.
                    let lhs_col = &self.data[i..];
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    gemm_row::<true>(
                        lhs_col,
                        self.cols,
                        self.rows,
                        &rhs.data,
                        rhs.cols,
                        out_row,
                        None,
                        false,
                    );
                }
            }
            path => simd::gemm_tn(
                path,
                &self.data,
                self.rows,
                self.cols,
                &rhs.data,
                rhs.cols,
                &mut out.data,
            ),
        }
        Ok(())
    }

    /// Transposed-right product `self · rhsᵀ` without materializing the
    /// transpose (used for input gradients `δ·Wᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.rows, rhs.rows)?;
        self.matmul_nt_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Register-blocked `self · rhsᵀ` written into `out` (resized as
    /// needed).
    ///
    /// Each output element is an independent ascending-`k` dot product
    /// over the shared column index (no zero skip — this kernel's
    /// documented contract, since its left operand is a gradient, not
    /// a ReLU activation). Blocks of [`NT_BLOCK`] `rhs` rows share one
    /// streamed pass over the left row, with one register accumulator
    /// per output element — eight independent dependency chains keep
    /// the FPU busy even when the reduction is as short as the
    /// 10-class head gradient — so results match the naive loop bit
    /// for bit.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_nt_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_nt",
            });
        }
        out.resize_for_kernel(self.rows, rhs.rows)?;
        match simd::active_path() {
            SimdPath::Scalar => self.matmul_nt_scalar(rhs, out),
            path => {
                // Stage `rhsᵀ` in a per-thread panel, then run the
                // contiguous no-skip NN kernel over it — the identical
                // ascending-`k` addend sequence per output element, so
                // the result is bit-for-bit the direct kernel's.
                NT_PANEL.with(|panel| {
                    let mut panel = panel.borrow_mut();
                    panel.pack(rhs);
                    simd::gemm_nn_noskip(
                        path,
                        &self.data,
                        self.rows,
                        self.cols,
                        &panel.data,
                        rhs.rows,
                        &mut out.data,
                    );
                });
            }
        }
        Ok(())
    }

    /// The direct (unpacked) scalar `self · rhsᵀ` kernel — the
    /// reference the packed SIMD form must match bit-for-bit.
    fn matmul_nt_scalar(&self, rhs: &Self, out: &mut Self) {
        let cols = self.cols;
        for i in 0..self.rows {
            let left_row = &self.data[i * cols..(i + 1) * cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            let mut j = 0;
            let mut blocks = out_row.chunks_exact_mut(NT_BLOCK);
            for chunk in blocks.by_ref() {
                let r0 = &rhs.data[j * cols..(j + 1) * cols];
                let r1 = &rhs.data[(j + 1) * cols..(j + 2) * cols];
                let r2 = &rhs.data[(j + 2) * cols..(j + 3) * cols];
                let r3 = &rhs.data[(j + 3) * cols..(j + 4) * cols];
                let r4 = &rhs.data[(j + 4) * cols..(j + 5) * cols];
                let r5 = &rhs.data[(j + 5) * cols..(j + 6) * cols];
                let r6 = &rhs.data[(j + 6) * cols..(j + 7) * cols];
                let r7 = &rhs.data[(j + 7) * cols..(j + 8) * cols];
                let mut acc = [0.0f32; NT_BLOCK];
                for (k, &a) in left_row.iter().enumerate() {
                    acc[0] += a * r0[k];
                    acc[1] += a * r1[k];
                    acc[2] += a * r2[k];
                    acc[3] += a * r3[k];
                    acc[4] += a * r4[k];
                    acc[5] += a * r5[k];
                    acc[6] += a * r6[k];
                    acc[7] += a * r7[k];
                }
                chunk.copy_from_slice(&acc);
                j += NT_BLOCK;
            }
            for o in blocks.into_remainder().iter_mut() {
                let right_row = &rhs.data[j * cols..(j + 1) * cols];
                let mut acc = 0.0;
                for (&a, &b) in left_row.iter().zip(right_row) {
                    acc += a * b;
                }
                *o = acc;
                j += 1;
            }
        }
    }

    /// `self · rhsᵀ` against a pre-packed right operand — the form
    /// cohort batching uses to pack a round's shared global weights
    /// once and reuse the panel across every client in the dispatch.
    ///
    /// Bit-identical to [`Matrix::matmul_nt_into`] on the matrix the
    /// panel was packed from: each output element is the same
    /// ascending-`k`, one-accumulator, no-skip dot product; packing
    /// only changes the memory layout the addends are read from.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless `self.cols` matches
    /// the packed operand's `k`.
    pub fn matmul_nt_packed_into(&self, panel: &NtPanel, out: &mut Self) -> Result<()> {
        if self.cols != panel.k {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: (panel.n, panel.k),
                op: "matmul_nt_packed",
            });
        }
        out.resize_for_kernel(self.rows, panel.n)?;
        match simd::active_path() {
            SimdPath::Scalar => {
                for i in 0..self.rows {
                    let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    let out_row = &mut out.data[i * panel.n..(i + 1) * panel.n];
                    gemm_row::<false>(
                        lhs_row,
                        1,
                        self.cols,
                        &panel.data,
                        panel.n,
                        out_row,
                        None,
                        false,
                    );
                }
            }
            path => simd::gemm_nn_noskip(
                path,
                &self.data,
                self.rows,
                self.cols,
                &panel.data,
                panel.n,
                &mut out.data,
            ),
        }
        Ok(())
    }

    /// Adds `row` to every row of `self` in place (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `row.len() == self.cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: (1, row.len()),
                op: "add_row_broadcast",
            });
        }
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
        Ok(())
    }

    /// Column sums as a vector of length `cols` (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_into(&mut sums);
        sums
    }

    /// Column sums written into a caller-owned vector (cleared and
    /// resized as needed; zero allocation at steady state).
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (s, &v) in out.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
    }

    /// Copies the given rows of `self`, in order, into a caller-owned
    /// matrix (resized as needed; zero allocation at steady state).
    /// The gather primitive behind minibatch sampling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for an empty index set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Self) -> Result<()> {
        if indices.is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::gather_rows_into" });
        }
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        Ok(())
    }

    /// Copies the contiguous row range `start..start + len` into a
    /// caller-owned matrix (resized as needed; zero allocation at
    /// steady state). The block-extraction primitive behind chunked
    /// parallel evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if `len == 0`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn copy_rows_into(&self, start: usize, len: usize, out: &mut Self) -> Result<()> {
        if len == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::copy_rows_into" });
        }
        assert!(start + len <= self.rows, "row range out of bounds");
        out.rows = len;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend_from_slice(&self.data[start * self.cols..(start + len) * self.cols]);
        Ok(())
    }

    /// Element-wise in-place addition of `rhs * scale`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on shape disagreement.
    pub fn add_scaled(&mut self, rhs: &Self, scale: f32) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add_scaled",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiplies every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Index of the maximum element in each row (ties → first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn constructors_validate_shapes() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let (a, b) = abc();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let (a, _) = abc();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let (a, b) = abc();
        // aᵀ is 3x2, b is 3x2 → matmul_tn(a→3 rows? no: a is 2x3.
        // matmul_tn computes aᵀ·rhs where rhs has a.rows rows.
        let rhs = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]).unwrap();
        let got = a.matmul_tn(&rhs).unwrap();
        // aᵀ = [[1,4],[2,5],[3,6]]; aᵀ·rhs:
        let want = Matrix::from_rows(&[
            &[1.0 + 8.0, 0.5 - 4.0],
            &[2.0 + 10.0, 1.0 - 5.0],
            &[3.0 + 12.0, 1.5 - 6.0],
        ])
        .unwrap();
        assert_eq!(got, want);
        let _ = b; // silence unused
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let (a, _) = abc();
        let got = a.matmul_nt(&a).unwrap();
        // a·aᵀ for a = [[1,2,3],[4,5,6]]:
        let want = Matrix::from_rows(&[&[14.0, 32.0], &[32.0, 77.0]]).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn fused_bias_matches_separate_passes() {
        let (a, b) = abc();
        let bias = [0.5, -0.25];
        let mut want = a.matmul(&b).unwrap();
        want.add_row_broadcast(&bias).unwrap();
        let mut got = Matrix::zeros(1, 1).unwrap();
        a.matmul_bias_into(&b, &bias, &mut got).unwrap();
        assert_eq!(got, want);
        assert!(a.matmul_bias_into(&b, &[1.0], &mut got).is_err());
        assert!(a.matmul_bias_into(&a, &bias, &mut got).is_err());
    }

    #[test]
    fn fused_bias_relu_clamps_negatives_only() {
        let a = Matrix::from_rows(&[&[1.0, -1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, -2.0]]).unwrap();
        // a·b = [-1, 3]; bias [0.5, -0.5] → [-0.5, 2.5] → relu [0, 2.5].
        let mut out = Matrix::zeros(1, 1).unwrap();
        a.matmul_bias_relu_into(&b, &[0.5, -0.5], &mut out).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.5]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let (a, _) = abc();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn broadcast_and_col_sums_roundtrip() {
        let mut m = Matrix::zeros(3, 2).unwrap();
        m.add_row_broadcast(&[1.0, 2.0]).unwrap();
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
        assert!(m.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let (a, _) = abc();
        let mut acc = Matrix::zeros(2, 3).unwrap();
        acc.add_scaled(&a, 2.0).unwrap();
        acc.add_scaled(&a, -1.0).unwrap();
        assert_eq!(acc, a);
        let wrong = Matrix::zeros(3, 3).unwrap();
        assert!(acc.add_scaled(&wrong, 1.0).is_err());
    }

    #[test]
    fn scale_multiplies_all_elements() {
        let (a, _) = abc();
        let mut m = a.clone();
        m.scale(0.5);
        for (x, y) in m.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(*x, y * 0.5);
        }
    }

    #[test]
    fn argmax_rows_picks_first_maximum() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 2.0], &[5.0, 5.0, 4.0]]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let (a, _) = abc();
        let s = a.select_rows(&[1, 0]).unwrap();
        assert_eq!(s.row(0), a.row(1));
        assert_eq!(s.row(1), a.row(0));
        assert!(a.select_rows(&[]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_definition() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn at_panics_out_of_bounds() {
        let (a, _) = abc();
        let _ = a.at(2, 0);
    }
}
