//! A minimal row-major `f32` matrix — the only tensor the FL
//! simulation needs.
//!
//! The design goals are *determinism* and *allocation discipline*: the
//! hot kernels (`matmul`, `matmul_tn`, `matmul_nt`) come in `_into`
//! variants that write into caller-owned buffers, blocked over the
//! reduction dimension for cache locality, so steady-state training
//! performs zero heap allocation per step. Summation order per output
//! element is fixed (ascending `k`) regardless of blocking, which
//! keeps results bit-identical across buffer reuse and thread counts.

use crate::error::{NnError, Result};

/// Row-block size for the blocked kernels: output rows processed per
/// tile so their accumulators stay resident in L1.
const BLOCK_ROWS: usize = 64;

/// Reduction-block size: `k` values consumed per tile, sized so a
/// `BLOCK_K × cols` panel of the right-hand side stays cache-warm.
const BLOCK_K: usize = 256;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use tinynn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok::<(), tinynn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::zeros" });
        }
        Ok(Self { rows, cols, data: vec![0.0; rows * cols] })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows*cols`
    /// and [`NnError::ZeroDimension`] for empty shapes.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::from_vec" });
        }
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for no rows or empty rows and
    /// [`NnError::ShapeMismatch`] for ragged rows.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let r = rows.len();
        if r == 0 || rows[0].is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::from_rows" });
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(NnError::ShapeMismatch {
                    left: (1, c),
                    right: (1, row.len()),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: r, cols: c, data })
    }

    /// The `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "identity size must be non-zero");
        let mut m = Self::zeros(n, n).expect("n > 0");
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix holding the given subset of rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for an empty index set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::select_rows" });
        }
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self::from_vec(indices.len(), self.cols, data)
    }

    /// Reshapes this matrix to `rows × cols`, reusing the existing
    /// allocation when capacity allows. Contents become all zeros.
    ///
    /// This is the buffer-reuse primitive behind every `_into` kernel:
    /// once a scratch matrix has grown to its steady-state size,
    /// resizing is a `memset`, not an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if either dimension is zero.
    pub fn resize(&mut self, rows: usize, cols: usize) -> Result<()> {
        if rows == 0 || cols == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::resize" });
        }
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        Ok(())
    }

    /// Copies `src` into `self`, resizing as needed (no allocation once
    /// capacity suffices).
    pub fn copy_from(&mut self, src: &Self) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.rows, rhs.cols)?;
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Blocked matrix product `self · rhs` written into `out`
    /// (resized as needed; zero allocation at steady state).
    ///
    /// Tiles `BLOCK_ROWS × BLOCK_K` panels so the output rows and the
    /// active slice of `rhs` stay cache-resident, while preserving the
    /// ascending-`k` accumulation order of the naive `ikj` loop — the
    /// result is bit-identical to the unblocked kernel. Zero entries of
    /// `self` are skipped, which ReLU activations make frequent.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        out.resize(self.rows, rhs.cols)?;
        for i0 in (0..self.rows).step_by(BLOCK_ROWS) {
            let i1 = (i0 + BLOCK_ROWS).min(self.rows);
            for k0 in (0..self.cols).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(self.cols);
                for i in i0..i1 {
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (k, &a) in lhs_row.iter().enumerate().take(k1).skip(k0) {
                        if a == 0.0 {
                            continue;
                        }
                        let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Transposed-left product `selfᵀ · rhs` without materializing the
    /// transpose (used for weight gradients `aᵀ·δ`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.cols, rhs.cols)?;
        self.matmul_tn_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Blocked `selfᵀ · rhs` written into `out` (resized as needed).
    ///
    /// The reduction runs over the shared row index `r`; blocking tiles
    /// `r` so the active panels of both operands stay cache-resident.
    /// `r` ascends within and across tiles, so accumulation order —
    /// and therefore the float result — matches the naive loop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.rows == rhs.rows`.
    pub fn matmul_tn_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_tn",
            });
        }
        out.resize(self.cols, rhs.cols)?;
        for r0 in (0..self.rows).step_by(BLOCK_K) {
            let r1 = (r0 + BLOCK_K).min(self.rows);
            for r in r0..r1 {
                let left_row = &self.data[r * self.cols..(r + 1) * self.cols];
                let right_row = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (i, &a) in left_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(right_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Transposed-right product `self · rhsᵀ` without materializing the
    /// transpose (used for input gradients `δ·Wᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.rows, rhs.rows)?;
        self.matmul_nt_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Blocked `self · rhsᵀ` written into `out` (resized as needed).
    ///
    /// Each output element is an independent dot product over the
    /// shared column index; blocking tiles the `rhs` rows (`j`) so a
    /// panel of them is reused across every `self` row while resident.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `self.cols == rhs.cols`.
    pub fn matmul_nt_into(&self, rhs: &Self, out: &mut Self) -> Result<()> {
        if self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_nt",
            });
        }
        out.resize(self.rows, rhs.rows)?;
        for j0 in (0..rhs.rows).step_by(BLOCK_ROWS) {
            let j1 = (j0 + BLOCK_ROWS).min(rhs.rows);
            for i in 0..self.rows {
                let left_row = &self.data[i * self.cols..(i + 1) * self.cols];
                for j in j0..j1 {
                    let right_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                    let mut acc = 0.0;
                    for (&a, &b) in left_row.iter().zip(right_row) {
                        acc += a * b;
                    }
                    out.data[i * rhs.rows + j] = acc;
                }
            }
        }
        Ok(())
    }

    /// Adds `row` to every row of `self` in place (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless
    /// `row.len() == self.cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: (1, row.len()),
                op: "add_row_broadcast",
            });
        }
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
        Ok(())
    }

    /// Column sums as a vector of length `cols` (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_into(&mut sums);
        sums
    }

    /// Column sums written into a caller-owned vector (cleared and
    /// resized as needed; zero allocation at steady state).
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (s, &v) in out.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
    }

    /// Copies the given rows of `self`, in order, into a caller-owned
    /// matrix (resized as needed; zero allocation at steady state).
    /// The gather primitive behind minibatch sampling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] for an empty index set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Self) -> Result<()> {
        if indices.is_empty() {
            return Err(NnError::ZeroDimension { context: "Matrix::gather_rows_into" });
        }
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        Ok(())
    }

    /// Copies the contiguous row range `start..start + len` into a
    /// caller-owned matrix (resized as needed; zero allocation at
    /// steady state). The block-extraction primitive behind chunked
    /// parallel evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if `len == 0`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn copy_rows_into(&self, start: usize, len: usize, out: &mut Self) -> Result<()> {
        if len == 0 {
            return Err(NnError::ZeroDimension { context: "Matrix::copy_rows_into" });
        }
        assert!(start + len <= self.rows, "row range out of bounds");
        out.rows = len;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend_from_slice(&self.data[start * self.cols..(start + len) * self.cols]);
        Ok(())
    }

    /// Element-wise in-place addition of `rhs * scale`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on shape disagreement.
    pub fn add_scaled(&mut self, rhs: &Self, scale: f32) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(NnError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add_scaled",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiplies every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Index of the maximum element in each row (ties → first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn constructors_validate_shapes() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let (a, b) = abc();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let (a, _) = abc();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let (a, b) = abc();
        // aᵀ is 3x2, b is 3x2 → matmul_tn(a→3 rows? no: a is 2x3.
        // matmul_tn computes aᵀ·rhs where rhs has a.rows rows.
        let rhs = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]).unwrap();
        let got = a.matmul_tn(&rhs).unwrap();
        // aᵀ = [[1,4],[2,5],[3,6]]; aᵀ·rhs:
        let want = Matrix::from_rows(&[
            &[1.0 + 8.0, 0.5 - 4.0],
            &[2.0 + 10.0, 1.0 - 5.0],
            &[3.0 + 12.0, 1.5 - 6.0],
        ])
        .unwrap();
        assert_eq!(got, want);
        let _ = b; // silence unused
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let (a, _) = abc();
        let got = a.matmul_nt(&a).unwrap();
        // a·aᵀ for a = [[1,2,3],[4,5,6]]:
        let want = Matrix::from_rows(&[&[14.0, 32.0], &[32.0, 77.0]]).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let (a, _) = abc();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn broadcast_and_col_sums_roundtrip() {
        let mut m = Matrix::zeros(3, 2).unwrap();
        m.add_row_broadcast(&[1.0, 2.0]).unwrap();
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
        assert!(m.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let (a, _) = abc();
        let mut acc = Matrix::zeros(2, 3).unwrap();
        acc.add_scaled(&a, 2.0).unwrap();
        acc.add_scaled(&a, -1.0).unwrap();
        assert_eq!(acc, a);
        let wrong = Matrix::zeros(3, 3).unwrap();
        assert!(acc.add_scaled(&wrong, 1.0).is_err());
    }

    #[test]
    fn scale_multiplies_all_elements() {
        let (a, _) = abc();
        let mut m = a.clone();
        m.scale(0.5);
        for (x, y) in m.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(*x, y * 0.5);
        }
    }

    #[test]
    fn argmax_rows_picks_first_maximum() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 2.0], &[5.0, 5.0, 4.0]]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let (a, _) = abc();
        let s = a.select_rows(&[1, 0]).unwrap();
        assert_eq!(s.row(0), a.row(1));
        assert_eq!(s.row(1), a.row(0));
        assert!(a.select_rows(&[]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_definition() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn at_panics_out_of_bounds() {
        let (a, _) = abc();
        let _ = a.at(2, 0);
    }
}
