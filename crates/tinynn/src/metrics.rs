//! Classification metrics.

use crate::error::{NnError, Result};

/// Fraction of positions where `predictions == labels`, in `[0, 1]`.
///
/// # Errors
///
/// Returns [`NnError::EmptyBatch`] if either slice is empty or the
/// lengths disagree.
///
/// # Examples
///
/// ```
/// let acc = tinynn::metrics::accuracy(&[0, 1, 2, 2], &[0, 1, 1, 2])?;
/// assert_eq!(acc, 0.75);
/// # Ok::<(), tinynn::NnError>(())
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return Err(NnError::EmptyBatch);
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / labels.len() as f64)
}

/// Number of rows of `logits` whose argmax (ties → first, matching
/// [`crate::tensor::Matrix::argmax_rows`]) equals the label —
/// allocation-free, exact, and order-independent, which is what lets
/// the chunked parallel evaluator produce bit-identical accuracy at
/// any worker count.
///
/// # Errors
///
/// Returns [`NnError::EmptyBatch`] for empty or mismatched inputs.
pub fn count_correct(logits: &crate::tensor::Matrix, labels: &[usize]) -> Result<usize> {
    if labels.is_empty() || logits.rows() != labels.len() {
        return Err(NnError::EmptyBatch);
    }
    let mut correct = 0;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct)
}

/// A `k × k` confusion matrix; `counts[t][p]` counts samples of true
/// class `t` predicted as `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix for `num_classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyBatch`] for empty/mismatched inputs and
    /// [`NnError::LabelOutOfRange`] for entries `≥ num_classes`.
    pub fn new(predictions: &[usize], labels: &[usize], num_classes: usize) -> Result<Self> {
        if predictions.is_empty() || predictions.len() != labels.len() {
            return Err(NnError::EmptyBatch);
        }
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&p, &t) in predictions.iter().zip(labels) {
            if p >= num_classes {
                return Err(NnError::LabelOutOfRange { label: p, classes: num_classes });
            }
            if t >= num_classes {
                return Err(NnError::LabelOutOfRange { label: t, classes: num_classes });
            }
            counts[t][p] += 1;
        }
        Ok(Self { counts })
    }

    /// Count of true class `t` predicted as `p`.
    pub fn count(&self, true_class: usize, predicted: usize) -> usize {
        self.counts[true_class][predicted]
    }

    /// Per-class recall (`None` when a class has no samples).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row = &self.counts[class];
        let total: usize = row.iter().sum();
        (total > 0).then(|| row[class] as f64 / total as f64)
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let trace: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        trace as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 1], &[1, 0]).unwrap(), 0.5);
        assert_eq!(accuracy(&[2], &[2]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_inputs() {
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn confusion_matrix_tabulates_and_summarizes() {
        let preds = [0, 1, 1, 2, 0];
        let labels = [0, 1, 2, 2, 1];
        let cm = ConfusionMatrix::new(&preds, &labels, 3).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(2, 1), 1);
        assert_eq!(cm.count(2, 2), 1);
        assert_eq!(cm.recall(2), Some(0.5));
        assert_eq!(cm.accuracy(), 3.0 / 5.0);
        assert_eq!(
            cm.accuracy(),
            accuracy(&preds, &labels).unwrap()
        );
    }

    #[test]
    fn confusion_matrix_flags_out_of_range_labels() {
        assert!(matches!(
            ConfusionMatrix::new(&[3], &[0], 3),
            Err(NnError::LabelOutOfRange { label: 3, .. })
        ));
        assert!(matches!(
            ConfusionMatrix::new(&[0], &[9], 3),
            Err(NnError::LabelOutOfRange { label: 9, .. })
        ));
    }

    #[test]
    fn recall_is_none_for_absent_class() {
        let cm = ConfusionMatrix::new(&[0], &[0], 2).unwrap();
        assert_eq!(cm.recall(1), None);
    }
}
