//! Optimizers beyond the paper's plain gradient descent.
//!
//! HELCFL's local update (Eq. 3) is one full-batch GD step; this
//! module provides the standard extensions a practitioner would reach
//! for next — momentum and learning-rate schedules — as a drop-in
//! wrapper around [`Mlp::gradients`]/[`Mlp::apply_gradients`]. The
//! reproduction's experiments use plain GD to stay faithful; the
//! `custom_selector` example and several tests exercise this path.


use crate::error::{NnError, Result};
use crate::model::{Gradients, Mlp};
use crate::tensor::Matrix;

/// Learning-rate schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant rate (the paper's τ).
    Constant,
    /// `lr / (1 + decay·step)` — classic inverse-time decay.
    InverseTime {
        /// Decay strength per step.
        decay: f32,
    },
    /// `lr · gamma^(step / period)` with integer division — staircase
    /// exponential decay.
    Step {
        /// Multiplier applied once per period.
        gamma: f32,
        /// Steps between decays.
        period: u32,
    },
}

impl LrSchedule {
    /// The effective learning rate at `step` (0-based) given base rate
    /// `base`.
    pub fn at(&self, base: f32, step: u32) -> f32 {
        match *self {
            Self::Constant => base,
            Self::InverseTime { decay } => base / (1.0 + decay * step as f32),
            Self::Step { gamma, period } => {
                base * gamma.powi((step / period.max(1)) as i32)
            }
        }
    }
}

/// Full-batch SGD with optional momentum and a learning-rate schedule.
///
/// With `momentum = 0` and [`LrSchedule::Constant`] this reproduces
/// [`Mlp::train_step`] exactly (a unit test pins that equivalence).
///
/// # Examples
///
/// ```
/// use tinynn::model::Mlp;
/// use tinynn::optim::{LrSchedule, Sgd};
/// use tinynn::tensor::Matrix;
///
/// let mut model = Mlp::new(&[2, 8, 2], 0)?;
/// let mut opt = Sgd::new(0.3)?.with_momentum(0.9)?;
/// let x = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]])?;
/// let y = [0usize, 1];
/// for _ in 0..50 {
///     opt.step(&mut model, &x, &y)?;
/// }
/// assert_eq!(model.accuracy(&x, &y)?, 1.0);
/// # Ok::<(), tinynn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    base_lr: f32,
    momentum: f32,
    schedule: LrSchedule,
    step_count: u32,
    velocity: Option<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD at the given base learning rate.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if `base_lr` is not strictly
    /// positive and finite (reusing the config-violation variant).
    pub fn new(base_lr: f32) -> Result<Self> {
        if !(base_lr > 0.0 && base_lr.is_finite()) {
            return Err(NnError::ZeroDimension { context: "Sgd::new base_lr" });
        }
        Ok(Self {
            base_lr,
            momentum: 0.0,
            schedule: LrSchedule::Constant,
            step_count: 0,
            velocity: None,
        })
    }

    /// Enables classical momentum `v ← μ·v + g; θ ← θ − lr·v`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] unless `0 ≤ μ < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Result<Self> {
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::ZeroDimension { context: "Sgd momentum" });
        }
        self.momentum = momentum;
        Ok(self)
    }

    /// Installs a learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Steps taken so far.
    #[inline]
    pub fn step_count(&self) -> u32 {
        self.step_count
    }

    /// The learning rate the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.at(self.base_lr, self.step_count)
    }

    /// One optimization step on a full batch; returns the pre-step
    /// loss.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors from the forward/backward pass.
    pub fn step(&mut self, model: &mut Mlp, x: &Matrix, labels: &[usize]) -> Result<f32> {
        let (loss, grads) = model.gradients(x, labels)?;
        let lr = self.current_lr();
        self.step_count += 1;
        if self.momentum == 0.0 {
            model.apply_gradients(&grads, lr)?;
            return Ok(loss);
        }
        // Flatten gradients to run momentum over one buffer.
        let flat = flatten(&grads);
        let velocity = self.velocity.get_or_insert_with(|| vec![0.0; flat.len()]);
        if velocity.len() != flat.len() {
            return Err(NnError::ParameterCountMismatch {
                expected: velocity.len(),
                actual: flat.len(),
            });
        }
        for (v, g) in velocity.iter_mut().zip(&flat) {
            *v = self.momentum * *v + *g;
        }
        let mut params = model.parameters();
        for (p, v) in params.iter_mut().zip(velocity.iter()) {
            *p -= lr * *v;
        }
        model.set_parameters(&params)?;
        Ok(loss)
    }
}

fn flatten(grads: &Gradients) -> Vec<f32> {
    let mut out = Vec::new();
    for layer in grads.layers() {
        out.extend_from_slice(layer.weights.as_slice());
        out.extend_from_slice(&layer.bias);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            &[1.0, 1.0],
            &[0.8, 1.1],
            &[-1.0, -1.0],
            &[-0.9, -1.2],
        ])
        .unwrap();
        (x, vec![0, 0, 1, 1])
    }

    #[test]
    fn constructor_validates_hyperparameters() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::new(-0.1).is_err());
        assert!(Sgd::new(f32::NAN).is_err());
        assert!(Sgd::new(0.1).unwrap().with_momentum(1.0).is_err());
        assert!(Sgd::new(0.1).unwrap().with_momentum(-0.1).is_err());
        assert!(Sgd::new(0.1).unwrap().with_momentum(0.9).is_ok());
    }

    #[test]
    fn plain_sgd_matches_train_step_exactly() {
        let (x, y) = batch();
        let mut a = Mlp::new(&[2, 4, 2], 3).unwrap();
        let mut b = a.clone();
        let mut opt = Sgd::new(0.2).unwrap();
        for _ in 0..5 {
            a.train_step(&x, &y, 0.2).unwrap();
            opt.step(&mut b, &x, &y).unwrap();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn momentum_accelerates_early_progress() {
        let (x, y) = batch();
        let mut plain_model = Mlp::new(&[2, 4, 2], 3).unwrap();
        let mut momentum_model = plain_model.clone();
        let mut plain = Sgd::new(0.05).unwrap();
        let mut with_mu = Sgd::new(0.05).unwrap().with_momentum(0.9).unwrap();
        for _ in 0..30 {
            plain.step(&mut plain_model, &x, &y).unwrap();
            with_mu.step(&mut momentum_model, &x, &y).unwrap();
        }
        let plain_loss = plain_model.loss(&x, &y).unwrap();
        let momentum_loss = momentum_model.loss(&x, &y).unwrap();
        assert!(
            momentum_loss < plain_loss,
            "momentum {momentum_loss} should beat plain {plain_loss} at a small lr"
        );
    }

    #[test]
    fn schedules_evaluate_correctly() {
        assert_eq!(LrSchedule::Constant.at(0.5, 100), 0.5);
        let inv = LrSchedule::InverseTime { decay: 0.1 };
        assert_eq!(inv.at(1.0, 0), 1.0);
        assert!((inv.at(1.0, 10) - 0.5).abs() < 1e-6);
        let step = LrSchedule::Step { gamma: 0.5, period: 10 };
        assert_eq!(step.at(1.0, 9), 1.0);
        assert_eq!(step.at(1.0, 10), 0.5);
        assert_eq!(step.at(1.0, 25), 0.25);
        // Degenerate period is clamped rather than dividing by zero.
        let degenerate = LrSchedule::Step { gamma: 0.5, period: 0 };
        assert_eq!(degenerate.at(1.0, 3), 0.125);
    }

    #[test]
    fn scheduled_lr_decays_across_steps() {
        let (x, y) = batch();
        let mut model = Mlp::new(&[2, 4, 2], 3).unwrap();
        let mut opt = Sgd::new(1.0)
            .unwrap()
            .with_schedule(LrSchedule::InverseTime { decay: 1.0 });
        assert_eq!(opt.current_lr(), 1.0);
        opt.step(&mut model, &x, &y).unwrap();
        assert_eq!(opt.current_lr(), 0.5);
        opt.step(&mut model, &x, &y).unwrap();
        assert!((opt.current_lr() - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(opt.step_count(), 2);
    }

    #[test]
    fn momentum_state_rejects_model_swap() {
        let (x, y) = batch();
        let mut small = Mlp::new(&[2, 3, 2], 0).unwrap();
        let mut big = Mlp::new(&[2, 16, 2], 0).unwrap();
        let mut opt = Sgd::new(0.1).unwrap().with_momentum(0.5).unwrap();
        opt.step(&mut small, &x, &y).unwrap();
        assert!(matches!(
            opt.step(&mut big, &x, &y),
            Err(NnError::ParameterCountMismatch { .. })
        ));
    }
}
