//! Activation functions and their derivatives.

use crate::tensor::Matrix;

/// Applies ReLU element-wise, returning a new matrix.
pub fn relu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Applies ReLU element-wise into a caller-owned buffer (resized as
/// needed; zero allocation at steady state).
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    out.copy_from(x);
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Masks `grad` by the ReLU derivative evaluated at pre-activation
/// `z` in place: `grad[i] = 0` wherever `z[i] <= 0`.
///
/// # Panics
///
/// Panics if the shapes disagree (programming error in the backward
/// pass, not recoverable input).
pub fn relu_backward_inplace(grad: &mut Matrix, z: &Matrix) {
    assert_eq!(grad.shape(), z.shape(), "relu backward shape mismatch");
    for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
        if zv <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Row-wise numerically-stable softmax, returning a new matrix whose
/// rows sum to 1.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = out.cols();
    for r in 0..out.rows() {
        let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_only() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_nonpositive_preactivations() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
        let mut g = Matrix::from_rows(&[&[5.0, 5.0, 5.0]]).unwrap();
        relu_backward_inplace(&mut g, &z);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.at(r, 2) > s.at(r, 1) && s.at(r, 1) > s.at(r, 0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable_for_large_logits() {
        let x = Matrix::from_rows(&[&[1000.0, 1001.0]]).unwrap();
        let s = softmax_rows(&x);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        let y = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let t = softmax_rows(&y);
        for (a, b) in s.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "relu backward shape mismatch")]
    fn relu_backward_panics_on_shape_mismatch() {
        let z = Matrix::zeros(1, 2).unwrap();
        let mut g = Matrix::zeros(2, 1).unwrap();
        relu_backward_inplace(&mut g, &z);
    }
}
