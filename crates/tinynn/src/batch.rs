//! Cohort-batched training: one grouped dispatch for a round's `K`
//! identical-architecture client jobs.
//!
//! The solo per-client loop re-stages the same just-loaded global
//! weights `K` times: in particular, every client's backward pass
//! re-packs each hidden layer's transposed weight panel (`dz · Wᵀ`)
//! from byte-identical weights. A [`CohortArena`] runs the members
//! **member-major** — each client's full training step completes
//! before the next starts, so its activations and gradients stay hot
//! in cache exactly as in the solo path — while amortizing the shared
//! staging work:
//!
//! - on the first local epoch every member starts from the identical
//!   global parameters, so each hidden layer's backward panel is
//!   packed **once per cohort** and shared by all `K` members (later
//!   epochs, where weights have diverged, pack-and-use a scratch
//!   panel per member);
//! - one model replica, one scratch set, and the panels serve the
//!   whole cohort — per-member results leave as flat parameter
//!   vectors, so steady-state cohort training allocates nothing
//!   beyond the one inherent upload vector per member.
//!
//! An earlier phase-major layout (all members' layer-1 forwards, then
//! all layer-2 forwards, …) with one model replica *per member*
//! measured *slower* than solo at the paper's shapes: `K` 200-row
//! activation sets walked per phase evict each other from L2, costing
//! more than the packing it amortized.
//!
//! **Determinism.** Grouping changes *when* shared staging happens,
//! never *what* each member computes: every member executes exactly
//! the op sequence of [`Mlp::train_step_with`] on its own buffers, and
//! the packed `dz · Wᵀ` form is bit-identical to the direct kernel
//! ([`Matrix::matmul_nt_packed_into`]). Cohort-trained histories are
//! therefore bit-identical to solo-trained ones at every worker count
//! and on every SIMD path — this module's tests and fl-sim's pin it.

use crate::activation::relu_backward_inplace;
use crate::error::{NnError, Result};
use crate::loss::softmax_cross_entropy_into;
use crate::model::{Mlp, TrainScratch};
use crate::tensor::{Matrix, NtPanel};

/// One client's training inputs for a cohort dispatch: borrowed
/// views of its local shard.
#[derive(Debug, Clone, Copy)]
pub struct CohortJob<'a> {
    /// The client's full local batch (`samples × features`).
    pub features: &'a Matrix,
    /// One class label per batch row.
    pub labels: &'a [usize],
}

/// The arena's single working set: one model replica plus its
/// forward/backward scratch, reused member-to-member (and across
/// rounds) so cohort training's cache footprint equals the solo
/// path's.
#[derive(Debug, Clone)]
struct Member {
    model: Mlp,
    scratch: TrainScratch,
}

/// Reusable grouped-GEMM arena for one model architecture.
///
/// Create once per worker ([`CohortArena::new`] is cheap — buffers are
/// grown lazily on first use), then call [`CohortArena::train`] once
/// per round with that worker's client jobs.
#[derive(Debug, Clone)]
pub struct CohortArena {
    dims: Vec<usize>,
    member: Option<Member>,
    /// One backward weight panel per layer index, packed from the
    /// shared global parameters once per cohort (slot 0 unused: the
    /// input layer computes no `dx`). All hidden-layer panels stay
    /// alive together so the epoch-0 packs serve every member.
    global_panels: Vec<NtPanel>,
    /// Pack-and-use-immediately panel for epochs past the first,
    /// where each member's weights have diverged from the globals.
    scratch_panel: NtPanel,
}

impl CohortArena {
    /// An empty arena for models of the given layer widths
    /// (`[input, hidden…, classes]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroDimension`] if fewer than two widths are
    /// given or any width is zero (the [`Mlp::new`] contract).
    pub fn new(dims: &[usize]) -> Result<Self> {
        if dims.len() < 2 || dims.contains(&0) {
            return Err(NnError::ZeroDimension { context: "CohortArena::new dims" });
        }
        Ok(Self {
            dims: dims.to_vec(),
            member: None,
            global_panels: Vec::new(),
            scratch_panel: NtPanel::new(),
        })
    }

    /// The model architecture this arena trains.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Trains every job's model for `epochs` full-batch steps (at
    /// least one, like the solo path) from the shared `global`
    /// parameters, returning each member's updated flat parameters and
    /// first-epoch loss, in job order.
    ///
    /// Bit-identical to running [`Mlp::set_parameters`] +
    /// `epochs` × [`Mlp::train_step_with`] per job in isolation — see
    /// the module docs for why.
    ///
    /// # Errors
    ///
    /// Propagates shape/label/parameter-count validation errors from
    /// the first offending job (in phase order). On error the arena
    /// stays reusable, but no per-job attribution is made — callers
    /// that need it (the round engine's fallback) re-run jobs solo.
    pub fn train(
        &mut self,
        jobs: &[CohortJob<'_>],
        global: &[f32],
        learning_rate: f32,
        epochs: usize,
    ) -> Result<Vec<(Vec<f32>, f32)>> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let Self { dims, member, global_panels, scratch_panel } = self;
        if member.is_none() {
            // Seed 0 is arbitrary: the init is immediately overwritten
            // by `set_parameters` below on every use.
            let model = Mlp::new(dims, 0)?;
            let scratch = TrainScratch::for_model(&model)?;
            *member = Some(Member { model, scratch });
        }
        let Member { model, scratch } = member.as_mut().expect("member grown above");
        let num_layers = dims.len() - 1;
        while global_panels.len() < num_layers {
            global_panels.push(NtPanel::new());
        }

        // The cohort-shared staging: every member starts its first
        // epoch from the identical global parameters, so each hidden
        // layer's backward panel is packed once here and reused by all
        // `K` members instead of `K` times.
        model.set_parameters(global)?;
        for (panel, layer) in global_panels.iter_mut().zip(&model.layers).skip(1) {
            panel.pack(layer.weights());
        }

        // Member-major: each member's whole local update runs
        // start-to-finish on the single shared working set, in exactly
        // the op order of `Mlp::train_step_with`.
        let mut results = Vec::with_capacity(jobs.len());
        for job in jobs {
            model.set_parameters(global)?;
            let mut first_loss = 0.0f32;
            for epoch in 0..epochs.max(1) {
                let shared_weights = epoch == 0;
                for l in 0..num_layers - 1 {
                    if l == 0 {
                        model.layers[0].forward_relu_into(job.features, &mut scratch.acts[0])?;
                    } else {
                        let (done, rest) = scratch.acts.split_at_mut(l);
                        model.layers[l].forward_relu_into(&done[l - 1], &mut rest[0])?;
                    }
                }
                let last_input =
                    if num_layers == 1 { job.features } else { &scratch.acts[num_layers - 2] };
                model.layers[num_layers - 1].forward_into(last_input, &mut scratch.logits)?;

                let loss =
                    softmax_cross_entropy_into(&scratch.logits, job.labels, &mut scratch.dz)?;
                if epoch == 0 {
                    first_loss = loss;
                }

                // Backward, descending. Non-input layers take the
                // packed `dz·Wᵀ` form: against the cohort-shared
                // panels on the first epoch, and a pack-and-use
                // scratch panel once this member's weights diverge.
                for l in (1..num_layers).rev() {
                    let panel = if shared_weights {
                        &global_panels[l]
                    } else {
                        scratch_panel.pack(model.layers[l].weights());
                        &*scratch_panel
                    };
                    let TrainScratch { acts, dz, dx, grads, .. } = scratch;
                    model.layers[l].backward_into_packed(
                        &acts[l - 1],
                        dz,
                        &mut grads.layers[l],
                        dx,
                        panel,
                    )?;
                    relu_backward_inplace(dx, &acts[l - 1]);
                    core::mem::swap(dz, dx);
                }
                model.layers[0].backward_grads_into(
                    job.features,
                    &scratch.dz,
                    &mut scratch.grads.layers[0],
                )?;

                for (layer, grad) in model.layers.iter_mut().zip(&scratch.grads.layers) {
                    layer.apply_step(grad, learning_rate)?;
                }
            }
            results.push((model.parameters(), first_loss));
        }

        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_data(seed: u64, samples: usize, features: usize, classes: usize) -> (Matrix, Vec<usize>) {
        let mut rng = detrand::Rng::seed_from_u64(seed);
        let data: Vec<f32> =
            (0..samples * features).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let labels: Vec<usize> = (0..samples).map(|_| rng.below(classes)).collect();
        (Matrix::from_vec(samples, features, data).unwrap(), labels)
    }

    /// The load-bearing pin: a cohort dispatch must be bit-identical
    /// to training each member solo, for single- and multi-epoch runs.
    #[test]
    fn cohort_training_is_bit_identical_to_solo() {
        let dims = [6usize, 8, 4];
        let global = Mlp::new(&dims, 99).unwrap().parameters();
        let shards: Vec<(Matrix, Vec<usize>)> =
            (0..5).map(|i| job_data(1000 + i, 9 + i as usize, 6, 4)).collect();

        for epochs in [1usize, 3] {
            let mut arena = CohortArena::new(&dims).unwrap();
            let jobs: Vec<CohortJob<'_>> = shards
                .iter()
                .map(|(x, y)| CohortJob { features: x, labels: y })
                .collect();
            let cohort = arena.train(&jobs, &global, 0.3, epochs).unwrap();

            let mut solo_model = Mlp::new(&dims, 0).unwrap();
            let mut scratch = TrainScratch::for_model(&solo_model).unwrap();
            for ((x, y), (params, loss)) in shards.iter().zip(&cohort) {
                solo_model.set_parameters(&global).unwrap();
                let mut first = 0.0;
                for e in 0..epochs {
                    let l = solo_model.train_step_with(x, y, 0.3, &mut scratch).unwrap();
                    if e == 0 {
                        first = l;
                    }
                }
                assert_eq!(first.to_bits(), loss.to_bits());
                let want = solo_model.parameters();
                assert_eq!(want.len(), params.len());
                for (a, b) in want.iter().zip(params) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// A single-layer model (no hidden layers) exercises the
    /// backward loop's empty packed segment.
    #[test]
    fn single_layer_cohort_matches_solo() {
        let dims = [5usize, 3];
        let global = Mlp::new(&dims, 7).unwrap().parameters();
        let (x, y) = job_data(42, 11, 5, 3);
        let mut arena = CohortArena::new(&dims).unwrap();
        let got = arena
            .train(&[CohortJob { features: &x, labels: &y }], &global, 0.1, 2)
            .unwrap();

        let mut solo = Mlp::new(&dims, 0).unwrap();
        solo.set_parameters(&global).unwrap();
        let mut scratch = TrainScratch::for_model(&solo).unwrap();
        let first = solo.train_step_with(&x, &y, 0.1, &mut scratch).unwrap();
        solo.train_step_with(&x, &y, 0.1, &mut scratch).unwrap();
        assert_eq!(got[0].1.to_bits(), first.to_bits());
        for (a, b) in solo.parameters().iter().zip(&got[0].0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Arena reuse across rounds (members and panel recycled, cohort
    /// size shrinking and growing) must not leak state between calls.
    #[test]
    fn arena_reuse_is_stateless_across_calls() {
        let dims = [4usize, 6, 3];
        let global = Mlp::new(&dims, 5).unwrap().parameters();
        let (xa, ya) = job_data(1, 8, 4, 3);
        let (xb, yb) = job_data(2, 12, 4, 3);

        let mut arena = CohortArena::new(&dims).unwrap();
        let jobs2 = [
            CohortJob { features: &xa, labels: &ya },
            CohortJob { features: &xb, labels: &yb },
        ];
        let first = arena.train(&jobs2, &global, 0.2, 1).unwrap();
        // Shrink to one job, then grow back: results must match the
        // first call exactly.
        let only = arena
            .train(&[CohortJob { features: &xb, labels: &yb }], &global, 0.2, 1)
            .unwrap();
        let again = arena.train(&jobs2, &global, 0.2, 1).unwrap();
        assert_eq!(first, again);
        assert_eq!(first[1], only[0]);
    }

    #[test]
    fn empty_cohort_is_a_no_op() {
        let mut arena = CohortArena::new(&[4, 2]).unwrap();
        assert!(arena.train(&[], &[0.0; 10], 0.1, 1).unwrap().is_empty());
    }

    #[test]
    fn constructor_validates_dims() {
        assert!(CohortArena::new(&[4]).is_err());
        assert!(CohortArena::new(&[4, 0, 2]).is_err());
        assert!(CohortArena::new(&[]).is_err());
    }

    #[test]
    fn bad_global_parameters_are_rejected() {
        let (x, y) = job_data(3, 4, 4, 2);
        let mut arena = CohortArena::new(&[4, 2]).unwrap();
        let err = arena.train(&[CohortJob { features: &x, labels: &y }], &[0.0; 3], 0.1, 1);
        assert!(matches!(err, Err(NnError::ParameterCountMismatch { .. })));
    }
}
