//! Loss functions (paper Eq. 1: mean per-sample loss over a local
//! dataset).

use crate::activation::softmax_rows;
use crate::error::{NnError, Result};
use crate::tensor::Matrix;

/// Mean softmax cross-entropy over a batch, plus the gradient with
/// respect to the logits.
///
/// Given logits `z` (`n × k`) and integer labels `y`, returns
/// `(L, dL/dz)` where `L = -(1/n) Σ log softmax(z)_y` and
/// `dL/dz = (softmax(z) - onehot(y)) / n` — the classic fused
/// softmax-CE backward pass.
///
/// # Errors
///
/// Returns [`NnError::EmptyBatch`] for zero rows,
/// [`NnError::ShapeMismatch`] if `labels.len() != logits.rows()`, and
/// [`NnError::LabelOutOfRange`] for labels `≥ logits.cols()`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> Result<(f32, Matrix)> {
    let n = logits.rows();
    let k = logits.cols();
    if n == 0 {
        return Err(NnError::EmptyBatch);
    }
    if labels.len() != n {
        return Err(NnError::ShapeMismatch {
            left: (n, k),
            right: (labels.len(), 1),
            op: "softmax_cross_entropy",
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::LabelOutOfRange { label: bad, classes: k });
    }
    let mut probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (r, &label) in labels.iter().enumerate() {
        let p = probs.at(r, label).max(1e-12);
        loss -= f64::from(p.ln());
        // Fused gradient: (p - onehot)/n.
        let row = &mut probs.as_mut_slice()[r * k..(r + 1) * k];
        for v in row.iter_mut() {
            *v *= inv_n;
        }
        row[label] -= inv_n;
    }
    Ok(((loss / n as f64) as f32, probs))
}

/// Mean softmax cross-entropy without the gradient (evaluation path).
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_loss(logits: &Matrix, labels: &[usize]) -> Result<f32> {
    let n = logits.rows();
    let k = logits.cols();
    if n == 0 {
        return Err(NnError::EmptyBatch);
    }
    if labels.len() != n {
        return Err(NnError::ShapeMismatch {
            left: (n, k),
            right: (labels.len(), 1),
            op: "softmax_cross_entropy_loss",
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::LabelOutOfRange { label: bad, classes: k });
    }
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        loss -= f64::from(probs.at(r, label).max(1e-12).ln());
    }
    Ok((loss / n as f64) as f32)
}


/// [`softmax_cross_entropy`] writing the logits gradient into a
/// caller-owned buffer (resized as needed; zero allocation at steady
/// state). Identical arithmetic to the allocating variant, so the
/// results are bit-identical.
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    labels: &[usize],
    dz: &mut Matrix,
) -> Result<f32> {
    let n = logits.rows();
    let k = logits.cols();
    if n == 0 {
        return Err(NnError::EmptyBatch);
    }
    if labels.len() != n {
        return Err(NnError::ShapeMismatch {
            left: (n, k),
            right: (labels.len(), 1),
            op: "softmax_cross_entropy",
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::LabelOutOfRange { label: bad, classes: k });
    }
    dz.copy_from(logits);
    // Row-wise softmax in place (same stabilized form as softmax_rows).
    for r in 0..n {
        let row = &mut dz.as_mut_slice()[r * k..(r + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = &mut dz.as_mut_slice()[r * k..(r + 1) * k];
        let p = row[label].max(1e-12);
        loss -= f64::from(p.ln());
        for v in row.iter_mut() {
            *v *= inv_n;
        }
        row[label] -= inv_n;
    }
    Ok((loss / n as f64) as f32)
}

/// Summed (not mean) cross-entropy over a batch, computed streaming
/// with no intermediate matrix.
///
/// Returned as `f64` so callers can combine per-chunk sums exactly:
/// the chunked parallel evaluator accumulates these in fixed chunk
/// order, making the total independent of the worker count. Divide by
/// the total row count for the mean.
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy_loss`].
pub fn softmax_cross_entropy_loss_sum(logits: &Matrix, labels: &[usize]) -> Result<f64> {
    let n = logits.rows();
    let k = logits.cols();
    if n == 0 {
        return Err(NnError::EmptyBatch);
    }
    if labels.len() != n {
        return Err(NnError::ShapeMismatch {
            left: (n, k),
            right: (labels.len(), 1),
            op: "softmax_cross_entropy_loss_sum",
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::LabelOutOfRange { label: bad, classes: k });
    }
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let p = ((row[label] - max).exp() / sum_exp).max(1e-12);
        loss -= f64::from(p.ln());
    }
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let logits = Matrix::zeros(4, 10).unwrap();
        let labels = vec![0, 3, 7, 9];
        let (loss, _) = softmax_cross_entropy(&logits, &labels).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_near_zero_loss() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0]]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 0.0, 3.0]]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[-0.2, 0.4, 0.0]]).unwrap();
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.at(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.at(r, c) - eps);
                let lp = softmax_cross_entropy_loss(&plus, &labels).unwrap();
                let lm = softmax_cross_entropy_loss(&minus, &labels).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.at(r, c)).abs() < 1e-3,
                    "({r},{c}): numeric {numeric} vs analytic {}",
                    grad.at(r, c)
                );
            }
        }
    }

    #[test]
    fn loss_only_path_agrees_with_fused_path() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]).unwrap();
        let labels = [0usize, 1];
        let (fused, _) = softmax_cross_entropy(&logits, &labels).unwrap();
        let only = softmax_cross_entropy_loss(&logits, &labels).unwrap();
        assert!((fused - only).abs() < 1e-6);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let logits = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0]),
            Err(NnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { label: 3, classes: 3 })
        ));
        assert!(matches!(
            softmax_cross_entropy_loss(&logits, &[0, 5]),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(softmax_cross_entropy_loss(&logits, &[0]).is_err());
    }
}
