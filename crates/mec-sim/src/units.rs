//! Strongly-typed physical quantities used throughout the simulator.
//!
//! Every model equation in the HELCFL paper mixes frequencies, delays,
//! energies and data sizes; newtypes keep them statically distinct
//! (API guideline C-NEWTYPE) while remaining zero-cost `f64` wrappers.
//!
//! Cross-type arithmetic is provided only where physically meaningful:
//!
//! - [`Cycles`] / [`Hertz`] → [`Seconds`] (compute delay, Eq. 4)
//! - [`Bits`] / [`BitsPerSecond`] → [`Seconds`] (upload delay, Eq. 7)
//! - [`Watts`] * [`Seconds`] → [`Joules`] (upload energy, Eq. 8)
//!
//! # Examples
//!
//! ```
//! use mec_sim::units::{Cycles, Hertz, Seconds};
//!
//! let work = Cycles::new(5.0e9);
//! let clock = Hertz::from_ghz(2.0);
//! assert_eq!(work / clock, Seconds::new(2.5));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines an `f64`-backed quantity newtype with the shared trait surface.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value expressed in the base unit ($unit).
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit ($unit).
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "invalid clamp range");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// A frequency in hertz; CPU clocks are expressed with this type.
    Hertz,
    "Hz"
);
quantity!(
    /// A time duration in seconds.
    Seconds,
    "s"
);
quantity!(
    /// An energy in joules.
    Joules,
    "J"
);
quantity!(
    /// A power in watts.
    Watts,
    "W"
);
quantity!(
    /// A data size in bits (fractional bits are allowed for modelling).
    Bits,
    "bit"
);
quantity!(
    /// A data rate in bits per second.
    BitsPerSecond,
    "bit/s"
);
quantity!(
    /// A CPU work amount in clock cycles.
    Cycles,
    "cycles"
);

impl Hertz {
    /// Constructs a frequency from gigahertz.
    ///
    /// ```
    /// use mec_sim::units::Hertz;
    /// assert_eq!(Hertz::from_ghz(2.0), Hertz::new(2.0e9));
    /// ```
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// Constructs a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1.0e6)
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.get() / 1.0e9
    }
}

impl Seconds {
    /// Constructs a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Returns the value in minutes.
    ///
    /// ```
    /// use mec_sim::units::Seconds;
    /// assert_eq!(Seconds::new(90.0).minutes(), 1.5);
    /// ```
    #[inline]
    pub fn minutes(self) -> f64 {
        self.get() / 60.0
    }
}

impl Bits {
    /// Constructs a size from megabits (10^6 bits).
    #[inline]
    pub fn from_megabits(mbit: f64) -> Self {
        Self::new(mbit * 1.0e6)
    }

    /// Returns the value in megabits.
    #[inline]
    pub fn megabits(self) -> f64 {
        self.get() / 1.0e6
    }
}

impl BitsPerSecond {
    /// Constructs a rate from megabits per second.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::new(mbps * 1.0e6)
    }

    /// Returns the value in megabits per second.
    #[inline]
    pub fn mbps(self) -> f64 {
        self.get() / 1.0e6
    }
}

impl Div<Hertz> for Cycles {
    type Output = Seconds;

    /// Compute delay: `cycles / frequency` (paper Eq. 4).
    #[inline]
    fn div(self, rhs: Hertz) -> Seconds {
        Seconds::new(self.get() / rhs.get())
    }
}

impl Div<Seconds> for Cycles {
    type Output = Hertz;

    /// The frequency required to finish `cycles` of work in a given time
    /// (used by Alg. 3's slack-filling step).
    #[inline]
    fn div(self, rhs: Seconds) -> Hertz {
        Hertz::new(self.get() / rhs.get())
    }
}

impl Div<BitsPerSecond> for Bits {
    type Output = Seconds;

    /// Upload delay: `size / rate` (paper Eq. 7).
    #[inline]
    fn div(self, rhs: BitsPerSecond) -> Seconds {
        Seconds::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;

    /// Energy: `power * time` (paper Eq. 8).
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;

    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;

    /// Average power over a duration.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for BitsPerSecond {
    type Output = Bits;

    /// Data transferred at a constant rate over a duration.
    #[inline]
    fn mul(self, rhs: Seconds) -> Bits {
        Bits::new(self.get() * rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_delay_divides_cycles_by_frequency() {
        let t = Cycles::new(4.0e9) / Hertz::from_ghz(2.0);
        assert_eq!(t, Seconds::new(2.0));
    }

    #[test]
    fn frequency_for_deadline_inverts_compute_delay() {
        let f = Cycles::new(4.0e9) / Seconds::new(2.0);
        assert_eq!(f, Hertz::from_ghz(2.0));
    }

    #[test]
    fn upload_delay_divides_bits_by_rate() {
        let t = Bits::from_megabits(40.0) / BitsPerSecond::from_mbps(8.0);
        assert_eq!(t, Seconds::new(5.0));
    }

    #[test]
    fn energy_is_power_times_time_commutative() {
        let e1 = Watts::new(0.2) * Seconds::new(10.0);
        let e2 = Seconds::new(10.0) * Watts::new(0.2);
        assert_eq!(e1, Joules::new(2.0));
        assert_eq!(e1, e2);
    }

    #[test]
    fn unit_constructors_scale_correctly() {
        assert_eq!(Hertz::from_ghz(1.5).get(), 1.5e9);
        assert_eq!(Hertz::from_mhz(2.0).get(), 2.0e6);
        assert_eq!(Hertz::from_ghz(0.3).ghz(), 0.3);
        assert_eq!(Seconds::from_minutes(2.0).get(), 120.0);
        assert_eq!(Bits::from_megabits(40.0).get(), 40.0e6);
        assert_eq!(BitsPerSecond::from_mbps(2.0).get(), 2.0e6);
        assert_eq!(BitsPerSecond::from_mbps(2.0).mbps(), 2.0);
        assert_eq!(Bits::from_megabits(3.0).megabits(), 3.0);
    }

    #[test]
    fn ordering_and_min_max_follow_f64() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.clamp(Seconds::ZERO, a), a);
    }

    #[test]
    fn sum_adds_all_elements() {
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn arithmetic_ops_behave_like_f64() {
        let mut x = Seconds::new(3.0);
        x += Seconds::new(1.0);
        assert_eq!(x, Seconds::new(4.0));
        x -= Seconds::new(2.0);
        assert_eq!(x, Seconds::new(2.0));
        assert_eq!(-x, Seconds::new(-2.0));
        assert_eq!(x * 2.0, Seconds::new(4.0));
        assert_eq!(2.0 * x, Seconds::new(4.0));
        assert_eq!(x / 2.0, Seconds::new(1.0));
        assert_eq!(x / Seconds::new(0.5), 4.0);
        assert_eq!(x.abs(), x);
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Hertz::new(5.0).to_string(), "5 Hz");
        assert_eq!(Joules::new(1.25).to_string(), "1.25 J");
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_panics_on_inverted_range() {
        let _ = Seconds::new(1.0).clamp(Seconds::new(2.0), Seconds::new(0.0));
    }
}
