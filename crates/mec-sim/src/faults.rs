//! Fault-afflicted round timelines: the MEC half of the fault layer.
//!
//! [`FaultedRound`] is [`crate::timeline::RoundTimeline`]'s sibling
//! for rounds where devices misbehave. It resolves per-device
//! [`DeviceFault`]s — crashes mid-compute or mid-upload, straggler
//! slow-down below the DVFS-assigned frequency, transient upload
//! failures with bounded retry-and-backoff, and channel-gain
//! degradation — into the same TDMA discipline the healthy timeline
//! uses, then applies an optional round deadline `T_max` after which
//! stragglers are dropped. Every joule a device spends is accounted,
//! including the *wasted* energy of failed work, so the energy story
//! (Eq. 10/11) stays closed under faults.
//!
//! With an all-`None` fault vector and no deadline, the resolved
//! schedule is bit-identical to [`RoundTimeline::simulate`]: the same
//! `compute_delay`/`upload_delay` calls feed the same
//! [`TdmaSchedule`] arithmetic in the same order.
//!
//! [`RoundTimeline::simulate`]: crate::timeline::RoundTimeline::simulate

use helcfl_telemetry::{Class, Histogram, MetricsRegistry, Span};

use crate::device::{Device, DeviceId};
use crate::error::{MecError, Result};
use crate::tdma::{TdmaSchedule, UploadRequest};
use crate::timeline::{sample_exemplars, DigestConfig};
use crate::units::{Bits, Hertz, Joules, Seconds};

/// One fault event afflicting one device for one round.
///
/// At most one fault fires per device per round; the sampling layer
/// (`fl_sim::faults::FaultPlan`) enforces the exclusivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFault {
    /// The device vanishes `at ∈ (0, 1]` of the way through its local
    /// update. It never reaches the channel; the partial compute
    /// energy is wasted.
    CrashCompute {
        /// Fraction of the compute span completed before the crash.
        at: f64,
    },
    /// The device vanishes `at ∈ (0, 1)` of the way through its upload
    /// transmission. The channel frees early; everything it spent is
    /// wasted.
    CrashUpload {
        /// Fraction of the upload transmitted before the crash.
        at: f64,
    },
    /// Thermal throttling / background load: the effective frequency
    /// is `slowdown ∈ (0, 1)` times the assigned one, stretching the
    /// compute span and violating any slack schedule built on the
    /// assignment.
    Straggler {
        /// Effective-frequency factor.
        slowdown: f64,
    },
    /// Transient upload failures: `failed_attempts` transmissions fail
    /// (each costing a full payload's energy), with `backoff` idle
    /// after every failure. If `exhausted`, the device gives up after
    /// the last failure (the retry budget ran out); otherwise one
    /// final attempt succeeds.
    UploadRetry {
        /// Number of failed transmission attempts (≥ 1).
        failed_attempts: u32,
        /// Idle back-off after each failed attempt.
        backoff: Seconds,
        /// Whether the retry budget ran out (no successful attempt).
        exhausted: bool,
    },
    /// Channel-gain degradation: the effective uplink rate is
    /// `gain ∈ (0, 1)` times nominal, so the one successful upload
    /// takes — and costs — `1 / gain` times more.
    ChannelDegradation {
        /// Rate factor.
        gain: f64,
    },
}

impl DeviceFault {
    /// Stable kind label used in spans and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::CrashCompute { .. } => "crash-compute",
            Self::CrashUpload { .. } => "crash-upload",
            Self::Straggler { .. } => "straggler",
            Self::UploadRetry { exhausted: false, .. } => "upload-retry",
            Self::UploadRetry { exhausted: true, .. } => "retry-exhausted",
            Self::ChannelDegradation { .. } => "channel-degradation",
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |name: &'static str, value: f64| {
            Err(MecError::NonPositiveParameter { name, value })
        };
        match *self {
            Self::CrashCompute { at } => {
                if !(at > 0.0 && at <= 1.0) {
                    return bad("fault.crash_compute.at", at);
                }
            }
            Self::CrashUpload { at } => {
                if !(at > 0.0 && at < 1.0) {
                    return bad("fault.crash_upload.at", at);
                }
            }
            Self::Straggler { slowdown } => {
                if !(slowdown > 0.0 && slowdown < 1.0) {
                    return bad("fault.straggler.slowdown", slowdown);
                }
            }
            Self::UploadRetry { failed_attempts, backoff, .. } => {
                if failed_attempts == 0 {
                    return bad("fault.upload_retry.failed_attempts", 0.0);
                }
                if !(backoff.get() >= 0.0 && backoff.is_finite()) {
                    return bad("fault.upload_retry.backoff", backoff.get());
                }
            }
            Self::ChannelDegradation { gain } => {
                if !(gain > 0.0 && gain < 1.0) {
                    return bad("fault.channel_degradation.gain", gain);
                }
            }
        }
        Ok(())
    }
}

/// Why a device's update never reached the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Crashed during its local update.
    CrashCompute,
    /// Crashed during its upload.
    CrashUpload,
    /// Exhausted its retry budget.
    RetriesExhausted,
    /// Its upload landed after the round deadline `T_max`.
    DeadlineExceeded,
}

impl AbortReason {
    /// Stable label used in `abort` spans.
    pub fn label(self) -> &'static str {
        match self {
            Self::CrashCompute => "crash-compute",
            Self::CrashUpload => "crash-upload",
            Self::RetriesExhausted => "retries-exhausted",
            Self::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// One device's fully-resolved, fault-aware activity within a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceOutcome {
    /// The device.
    pub device: DeviceId,
    /// The fault that fired, if any.
    pub fault: Option<DeviceFault>,
    /// Why delivery failed, when it did.
    pub abort: Option<AbortReason>,
    /// Whether its update reached the aggregator.
    pub delivered: bool,
    /// Whether it occupied the TDMA channel at all (crashed-in-compute
    /// devices never do).
    pub uploaded: bool,
    /// Effective operating frequency (equals the plan unless a
    /// straggler fault fired).
    pub frequency: Hertz,
    /// The DVFS-assigned frequency the policy planned.
    pub planned_frequency: Hertz,
    /// The device's maximum frequency.
    pub f_max: Hertz,
    /// Compute finish the plan promised (at `planned_frequency`).
    pub planned_compute_finish: Seconds,
    /// Nominal upload duration the plan assumed.
    pub planned_upload: Seconds,
    /// When compute actually ended — the finish time, or the crash
    /// instant for `CrashCompute`.
    pub compute_finish: Seconds,
    /// When its channel occupation started (= `compute_finish` for
    /// non-uploading devices).
    pub upload_start: Seconds,
    /// When its channel occupation ended (crash, give-up, or success).
    pub upload_end: Seconds,
    /// Compute energy actually spent (partial for crashes, inflated
    /// `∝ f²`-style deflated for stragglers, truncated at `T_max`).
    pub compute_energy: Joules,
    /// Reference compute energy at `f_max` (the `E ∝ f²` anchor).
    pub compute_energy_at_max: Joules,
    /// Upload energy actually spent, including every failed attempt.
    pub upload_energy: Joules,
    /// The share of the spent energy that bought nothing: all of it
    /// for non-delivered devices, the failed attempts for devices that
    /// delivered after retries.
    pub wasted_energy: Joules,
    /// Failed upload attempts.
    pub retries: u32,
}

impl DeviceOutcome {
    /// Total energy this device drained this round.
    #[inline]
    pub fn total_energy(&self) -> Joules {
        self.compute_energy + self.upload_energy
    }

    /// Idle wait between compute completion and channel acquisition
    /// (zero for devices that never uploaded).
    #[inline]
    pub fn slack(&self) -> Seconds {
        if self.uploaded {
            self.upload_start - self.compute_finish
        } else {
            Seconds::ZERO
        }
    }

    /// When the FLCC learns this device is done with the round: the
    /// upload end for channel users, the crash instant otherwise.
    #[inline]
    pub fn release_time(&self) -> Seconds {
        if self.uploaded {
            self.upload_end
        } else {
            self.compute_finish
        }
    }
}

/// Per-device channel-occupation profile before TDMA placement.
struct UploadProfile {
    /// Total channel occupation (transmissions + back-off idles).
    occupation: Seconds,
    /// Active transmission segments as `(offset, duration)` relative
    /// to the occupation start.
    segments: Vec<(f64, f64)>,
    delivered: bool,
    retries: u32,
    abort: Option<AbortReason>,
}

/// The resolved timeline of one fault-afflicted synchronous round.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRound {
    outcomes: Vec<DeviceOutcome>,
    payload: Bits,
    round_time: Seconds,
    deadline: Option<Seconds>,
    deadline_fired: bool,
}

impl FaultedRound {
    /// Simulates one round for `devices` at planned `frequencies`,
    /// each uploading `payload` bits, with `faults[i]` afflicting
    /// `devices[i]` and an optional round deadline.
    ///
    /// Devices that reach the channel serialize exactly like
    /// [`TdmaSchedule`] (FIFO by actual compute finish, device-id
    /// tie-break); retry sequences and degraded uploads occupy one
    /// contiguous window. When `deadline` is set and any device's
    /// release time exceeds it, the round is cut at `T_max`: updates
    /// landing later are dropped and their energy is pro-rated to the
    /// work actually performed before the cut.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::EmptyDeviceSet`] for no devices,
    /// [`MecError::NonPositiveParameter`] on length mismatches or
    /// invalid fault parameters, and
    /// [`MecError::FrequencyOutOfRange`] if a *planned* frequency is
    /// unsupported (effective straggler frequencies may legitimately
    /// fall below `f_min`).
    pub fn simulate(
        devices: &[Device],
        frequencies: &[Hertz],
        payload: Bits,
        faults: &[Option<DeviceFault>],
        deadline: Option<Seconds>,
    ) -> Result<Self> {
        if devices.is_empty() {
            return Err(MecError::EmptyDeviceSet);
        }
        if devices.len() != frequencies.len() {
            return Err(MecError::NonPositiveParameter {
                name: "frequencies.len",
                value: frequencies.len() as f64,
            });
        }
        if devices.len() != faults.len() {
            return Err(MecError::NonPositiveParameter {
                name: "faults.len",
                value: faults.len() as f64,
            });
        }
        if let Some(t) = deadline {
            if !(t.get() > 0.0 && t.is_finite()) {
                return Err(MecError::NonPositiveParameter {
                    name: "deadline",
                    value: t.get(),
                });
            }
        }
        for fault in faults.iter().flatten() {
            fault.validate()?;
        }

        // Phase 1: resolve each device's effective compute span and
        // channel-occupation profile.
        let mut requests = Vec::with_capacity(devices.len());
        let mut profiles: Vec<Option<UploadProfile>> = Vec::with_capacity(devices.len());
        let mut resolved = Vec::with_capacity(devices.len());
        for ((dev, &f), fault) in devices.iter().zip(frequencies).zip(faults) {
            let planned_compute_finish = dev.compute_delay(f)?;
            let planned_upload = dev.upload_delay(payload);
            let d = planned_upload.get();
            let (frequency, compute_finish) = match fault {
                Some(DeviceFault::Straggler { slowdown }) => {
                    let eff = f * *slowdown;
                    (eff, dev.work() / eff)
                }
                Some(DeviceFault::CrashCompute { at }) => {
                    (f, planned_compute_finish * *at)
                }
                _ => (f, planned_compute_finish),
            };
            let compute_energy = if frequency == f {
                match fault {
                    Some(DeviceFault::CrashCompute { at }) => dev.compute_energy(f)? * *at,
                    _ => dev.compute_energy(f)?,
                }
            } else {
                // Straggler: Eq. 5 priced at the (possibly
                // out-of-range) effective frequency.
                dev.cpu().compute_energy_unchecked(dev.work(), frequency)
            };
            let profile = match fault {
                Some(DeviceFault::CrashCompute { .. }) => None,
                Some(DeviceFault::CrashUpload { at }) => Some(UploadProfile {
                    occupation: planned_upload * *at,
                    segments: vec![(0.0, at * d)],
                    delivered: false,
                    retries: 0,
                    abort: Some(AbortReason::CrashUpload),
                }),
                Some(DeviceFault::UploadRetry { failed_attempts, backoff, exhausted }) => {
                    let n = *failed_attempts as f64;
                    let b = backoff.get();
                    let (occupation, attempts) = if *exhausted {
                        // n failures with back-off between them; the
                        // device gives up after the last failure.
                        (n * d + (n - 1.0) * b, *failed_attempts)
                    } else {
                        // n failures, each followed by back-off, then
                        // one successful transmission.
                        (n * (d + b) + d, *failed_attempts + 1)
                    };
                    let segments = (0..attempts)
                        .map(|k| (k as f64 * (d + b), d))
                        .collect();
                    Some(UploadProfile {
                        occupation: Seconds::new(occupation),
                        segments,
                        delivered: !*exhausted,
                        retries: *failed_attempts,
                        abort: exhausted.then_some(AbortReason::RetriesExhausted),
                    })
                }
                Some(DeviceFault::ChannelDegradation { gain }) => Some(UploadProfile {
                    occupation: planned_upload / *gain,
                    segments: vec![(0.0, d / gain)],
                    delivered: true,
                    retries: 0,
                    abort: None,
                }),
                Some(DeviceFault::Straggler { .. }) | None => Some(UploadProfile {
                    occupation: planned_upload,
                    segments: vec![(0.0, d)],
                    delivered: true,
                    retries: 0,
                    abort: None,
                }),
            };
            if let Some(p) = &profile {
                requests.push(UploadRequest {
                    device: dev.id(),
                    compute_finish,
                    upload_duration: p.occupation,
                });
            }
            profiles.push(profile);
            resolved.push((
                dev,
                f,
                frequency,
                planned_compute_finish,
                planned_upload,
                compute_finish,
                compute_energy,
            ));
        }

        // Phase 2: serialize channel users with the standard TDMA
        // discipline (retry windows occupy one contiguous slot).
        let schedule = TdmaSchedule::new(requests);

        // Phase 3: assemble outcomes — channel order first (exactly
        // like the healthy timeline), crashed-in-compute devices after,
        // by id.
        let mut outcomes = Vec::with_capacity(devices.len());
        let index_of = |id: DeviceId| {
            devices.iter().position(|d| d.id() == id).expect("scheduled ids come from input")
        };
        for slot in schedule.slots() {
            let i = index_of(slot.device);
            let (dev, f, frequency, planned_compute_finish, planned_upload, compute_finish, compute_energy) =
                resolved[i];
            let profile = profiles[i].as_ref().expect("scheduled devices have profiles");
            let power = dev.uplink().power();
            let transmit: f64 = profile.segments.iter().map(|&(_, len)| len).sum();
            outcomes.push(DeviceOutcome {
                device: dev.id(),
                fault: faults[i],
                abort: profile.abort,
                delivered: profile.delivered,
                uploaded: true,
                frequency,
                planned_frequency: f,
                f_max: dev.cpu().range().max(),
                planned_compute_finish,
                planned_upload,
                compute_finish,
                upload_start: slot.upload_start,
                upload_end: slot.upload_end,
                compute_energy,
                compute_energy_at_max: dev.compute_energy(dev.cpu().range().max())?,
                upload_energy: power * Seconds::new(transmit),
                wasted_energy: Joules::ZERO, // finalized below
                retries: profile.retries,
            });
        }
        let mut crashed: Vec<usize> = (0..devices.len()).filter(|&i| profiles[i].is_none()).collect();
        crashed.sort_by_key(|&i| devices[i].id());
        for i in crashed {
            let (dev, f, frequency, planned_compute_finish, planned_upload, compute_finish, compute_energy) =
                resolved[i];
            outcomes.push(DeviceOutcome {
                device: dev.id(),
                fault: faults[i],
                abort: Some(AbortReason::CrashCompute),
                delivered: false,
                uploaded: false,
                frequency,
                planned_frequency: f,
                f_max: dev.cpu().range().max(),
                planned_compute_finish,
                planned_upload,
                compute_finish,
                upload_start: compute_finish,
                upload_end: compute_finish,
                compute_energy,
                compute_energy_at_max: dev.compute_energy(dev.cpu().range().max())?,
                upload_energy: Joules::ZERO,
                wasted_energy: Joules::ZERO, // finalized below
                retries: 0,
            });
        }

        // Phase 4: apply the round deadline, then finalize waste.
        let natural = outcomes
            .iter()
            .map(DeviceOutcome::release_time)
            .fold(Seconds::ZERO, Seconds::max);
        let deadline_fired = deadline.is_some_and(|t| natural > t);
        let round_time = if deadline_fired { deadline.expect("fired") } else { natural };
        if deadline_fired {
            let t = round_time.get();
            for o in &mut outcomes {
                let i = devices
                    .iter()
                    .position(|d| d.id() == o.device)
                    .expect("outcome ids come from the input set");
                if o.delivered && o.upload_end.get() > t {
                    o.delivered = false;
                    o.abort = Some(AbortReason::DeadlineExceeded);
                }
                // Energy accrues only for work performed before the
                // cut: compute pro-rated over its span, upload over
                // the transmit segments that overlap [0, T_max].
                if o.compute_finish.get() > t {
                    let scale = t / o.compute_finish.get();
                    o.compute_energy = o.compute_energy * scale;
                }
                if o.uploaded && o.upload_end.get() > t {
                    let segments =
                        profiles[i].as_ref().map_or(&[][..], |p| p.segments.as_slice());
                    let start = o.upload_start.get();
                    let transmit_before: f64 = segments
                        .iter()
                        .map(|&(off, len)| (t.min(start + off + len) - (start + off)).max(0.0))
                        .sum();
                    o.upload_energy = devices[i].uplink().power() * Seconds::new(transmit_before);
                }
            }
        }
        for o in &mut outcomes {
            o.wasted_energy = if !o.delivered {
                o.total_energy()
            } else if o.retries > 0 {
                // Failed attempts bought nothing; the final successful
                // transmission did.
                let dev = devices.iter().find(|d| d.id() == o.device).expect("from input");
                o.upload_energy - dev.upload_energy(payload)
            } else {
                Joules::ZERO
            };
        }

        Ok(Self { outcomes, payload, round_time, deadline, deadline_fired })
    }

    /// Per-device outcomes: channel users in upload order, then
    /// crashed-in-compute devices by id.
    #[inline]
    pub fn outcomes(&self) -> &[DeviceOutcome] {
        &self.outcomes
    }

    /// The outcome of a specific device, if it participated.
    pub fn outcome(&self, device: DeviceId) -> Option<&DeviceOutcome> {
        self.outcomes.iter().find(|o| o.device == device)
    }

    /// The model payload size used for uploads.
    #[inline]
    pub fn payload(&self) -> Bits {
        self.payload
    }

    /// Round delay: the last release time, cut at `T_max` when the
    /// deadline fired.
    #[inline]
    pub fn round_time(&self) -> Seconds {
        self.round_time
    }

    /// The configured round deadline, if any.
    #[inline]
    pub fn deadline(&self) -> Option<Seconds> {
        self.deadline
    }

    /// Whether the deadline actually cut this round short.
    #[inline]
    pub fn deadline_fired(&self) -> bool {
        self.deadline_fired
    }

    /// Number of updates that reached the aggregator.
    pub fn delivered_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.delivered).count()
    }

    /// Number of devices that occupied the channel.
    pub fn uploaded_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.uploaded).count()
    }

    /// Number of fault events that fired this round.
    pub fn faults_fired(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fault.is_some()).count()
    }

    /// The Eq. 10 bound analogue over effective spans.
    pub fn eq10_bound(&self) -> Seconds {
        self.outcomes
            .iter()
            .map(|o| {
                if o.uploaded {
                    o.compute_finish + (o.upload_end - o.upload_start)
                } else {
                    o.compute_finish
                }
            })
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total energy actually drained this round, wasted joules
    /// included (Eq. 11 under faults).
    pub fn total_energy(&self) -> Joules {
        self.outcomes.iter().map(DeviceOutcome::total_energy).sum()
    }

    /// Compute-only share of the round energy.
    pub fn compute_energy(&self) -> Joules {
        self.outcomes.iter().map(|o| o.compute_energy).sum()
    }

    /// Total slack across channel users.
    pub fn total_slack(&self) -> Seconds {
        self.outcomes.iter().map(DeviceOutcome::slack).sum()
    }

    /// Total energy spent on work that never reached the aggregator.
    pub fn wasted_energy(&self) -> Joules {
        self.outcomes.iter().map(|o| o.wasted_energy).sum()
    }

    /// Records this round's profile into a metrics registry: the same
    /// base series as the healthy timeline (`tdma.uploads`,
    /// `tdma.queue_wait_s`, `device.energy_j`,
    /// `device.compute_energy_j`, `round.makespan_s`,
    /// `round.slack_total_s`) plus the fault series `faults.fired`
    /// (counter), `faults.wasted_energy_j` (histogram, one sample per
    /// round), and `round.delivered` (counter).
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_add(Class::Sim, "tdma.uploads", self.uploaded_count() as u64);
        for o in &self.outcomes {
            if o.uploaded {
                registry.record(Class::Sim, "tdma.queue_wait_s", o.slack().get());
            }
            registry.record(Class::Sim, "device.energy_j", o.total_energy().get());
            registry.record(Class::Sim, "device.compute_energy_j", o.compute_energy.get());
        }
        registry.record(Class::Sim, "round.makespan_s", self.round_time.get());
        registry.record(Class::Sim, "round.slack_total_s", self.total_slack().get());
        registry.counter_add(Class::Sim, "faults.fired", self.faults_fired() as u64);
        registry.counter_add(Class::Sim, "round.delivered", self.delivered_count() as u64);
        registry.record(Class::Sim, "faults.wasted_energy_j", self.wasted_energy().get());
    }

    /// Attaches this round's resolved, fault-annotated schedule to an
    /// open `timeline` span: summary totals and fault flags on the
    /// span itself, one `device_activity` child per device (the
    /// healthy attributes plus the planned-vs-effective pairs the
    /// auditor replays), and one `fault` / `retry` / `abort` marker
    /// child per event.
    pub fn trace_into(&self, span: &mut Span) {
        self.set_summary_attrs(span);
        for o in &self.outcomes {
            Self::emit_outcome(span, o, false);
        }
    }

    /// Digest-mode variant of [`FaultedRound::trace_into`] (see
    /// [`DigestConfig`]): the same summary totals plus `digest: true`
    /// on `span` itself, one `cohort_digest` child carrying streaming
    /// aggregates over every outcome (counts, energy/slack/wasted sums
    /// and extrema, compact histograms, the latest release time), and
    /// the full per-device children — `device_activity` plus its
    /// `fault` / `retry` / `abort` markers — only for the exemplar
    /// devices picked by `cfg`.
    pub fn trace_digest_into(&self, span: &mut Span, cfg: DigestConfig) {
        self.set_summary_attrs(span);
        span.set("digest", true);
        let exemplars = sample_exemplars(self.outcomes.len(), cfg);
        {
            let mut energy_hist = Histogram::new();
            let mut slack_hist = Histogram::new();
            let mut energy_min = f64::INFINITY;
            let mut energy_max = f64::NEG_INFINITY;
            let mut slack_min = f64::INFINITY;
            let mut slack_max = f64::NEG_INFINITY;
            let mut release_max = Seconds::ZERO;
            for o in &self.outcomes {
                let energy = o.total_energy().get();
                let slack = o.slack().get();
                energy_hist.record(energy);
                slack_hist.record(slack);
                energy_min = energy_min.min(energy);
                energy_max = energy_max.max(energy);
                slack_min = slack_min.min(slack);
                slack_max = slack_max.max(slack);
                release_max = release_max.max(o.release_time());
            }
            span.child("cohort_digest")
                .with("devices", self.outcomes.len())
                .with("exemplars", exemplars.len())
                .with("uploads", self.uploaded_count())
                .with("delivered", self.delivered_count())
                .with("faults_fired", self.faults_fired())
                .with("energy_sum_j", self.total_energy().get())
                .with("energy_min_j", energy_min)
                .with("energy_max_j", energy_max)
                .with("compute_energy_sum_j", self.compute_energy().get())
                .with("wasted_energy_sum_j", self.wasted_energy().get())
                .with("slack_sum_s", self.total_slack().get())
                .with("slack_min_s", slack_min)
                .with("slack_max_s", slack_max)
                .with("release_max_s", release_max.get())
                .with("energy_hist", energy_hist.encode_compact())
                .with("slack_hist", slack_hist.encode_compact())
                .end();
        }
        for &i in &exemplars {
            Self::emit_outcome(span, &self.outcomes[i], true);
        }
    }

    fn set_summary_attrs(&self, span: &mut Span) {
        span.set("uploads", self.uploaded_count());
        span.set("makespan_s", self.round_time.get());
        span.set("slack_total_s", self.total_slack().get());
        span.set("energy_j", self.total_energy().get());
        span.set("compute_energy_j", self.compute_energy().get());
        span.set("wasted_energy_j", self.wasted_energy().get());
        span.set("selected", self.outcomes.len());
        span.set("delivered", self.delivered_count());
        span.set("fault_fired", self.faults_fired() > 0 || self.deadline_fired);
        if let Some(t) = self.deadline {
            span.set("deadline_s", t.get());
        }
        span.set("deadline_fired", self.deadline_fired);
    }

    fn emit_outcome(span: &mut Span, o: &DeviceOutcome, exemplar: bool) {
        {
            let mut act = span
                .child("device_activity")
                .with("device", o.device.to_string())
                .with("device_id", o.device.0)
                .with("f_hz", o.frequency.get())
                .with("f_planned_hz", o.planned_frequency.get())
                .with("f_max_hz", o.f_max.get())
                .with("planned_compute_finish_s", o.planned_compute_finish.get())
                .with("planned_upload_s", o.planned_upload.get())
                .with("compute_finish_s", o.compute_finish.get())
                .with("upload_start_s", o.upload_start.get())
                .with("upload_end_s", o.upload_end.get())
                .with("compute_energy_j", o.compute_energy.get())
                .with("compute_energy_at_max_j", o.compute_energy_at_max.get())
                .with("upload_energy_j", o.upload_energy.get())
                .with("wasted_energy_j", o.wasted_energy.get())
                .with("uploaded", o.uploaded)
                .with("delivered", o.delivered)
                .with("retries", o.retries);
            if exemplar {
                act.set("exemplar", true);
            }
            if let Some(fault) = o.fault {
                act.set("fault", fault.kind());
            }
            act.end();
        }
        if let Some(fault) = o.fault {
            span.child("fault")
                .with("device", o.device.to_string())
                .with("kind", fault.kind())
                .end();
        }
        if o.retries > 0 {
            let backoff = match o.fault {
                Some(DeviceFault::UploadRetry { backoff, .. }) => backoff.get(),
                _ => 0.0,
            };
            span.child("retry")
                .with("device", o.device.to_string())
                .with("failed_attempts", o.retries)
                .with("backoff_s", backoff)
                .end();
        }
        if let Some(reason) = o.abort {
            span.child("abort")
                .with("device", o.device.to_string())
                .with("reason", reason.label())
                .end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Uplink;
    use crate::cpu::DvfsCpu;
    use crate::timeline::RoundTimeline;
    use crate::units::{BitsPerSecond, Watts};

    fn device(id: usize, fmax_ghz: f64, samples: usize, mbps: f64) -> Device {
        let cpu =
            DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax_ghz)).unwrap();
        let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
        Device::new(DeviceId(id), cpu, 1.0e7, samples, uplink).unwrap()
    }

    fn payload() -> Bits {
        Bits::from_megabits(40.0)
    }

    fn fleet() -> (Vec<Device>, Vec<Hertz>) {
        let devs = vec![
            device(0, 2.0, 500, 8.0),
            device(1, 0.5, 500, 8.0),
            device(2, 2.0, 600, 4.0),
        ];
        let freqs = devs.iter().map(|d| d.cpu().range().max()).collect();
        (devs, freqs)
    }

    #[test]
    fn zero_faults_reproduce_the_healthy_timeline_bitwise() {
        let (devs, freqs) = fleet();
        let healthy = RoundTimeline::simulate(&devs, &freqs, payload()).unwrap();
        let faulted =
            FaultedRound::simulate(&devs, &freqs, payload(), &[None, None, None], None).unwrap();
        assert_eq!(faulted.outcomes().len(), healthy.activities().len());
        for (o, a) in faulted.outcomes().iter().zip(healthy.activities()) {
            assert_eq!(o.device, a.device);
            assert_eq!(o.frequency.get().to_bits(), a.frequency.get().to_bits());
            assert_eq!(o.compute_finish.get().to_bits(), a.compute_finish.get().to_bits());
            assert_eq!(o.upload_start.get().to_bits(), a.upload_start.get().to_bits());
            assert_eq!(o.upload_end.get().to_bits(), a.upload_end.get().to_bits());
            assert_eq!(o.compute_energy.get().to_bits(), a.compute_energy.get().to_bits());
            assert_eq!(o.upload_energy.get().to_bits(), a.upload_energy.get().to_bits());
            assert!(o.delivered && o.uploaded);
            assert_eq!(o.wasted_energy, Joules::ZERO);
        }
        assert_eq!(faulted.round_time().get().to_bits(), healthy.makespan().get().to_bits());
        assert_eq!(faulted.eq10_bound().get().to_bits(), healthy.eq10_bound().get().to_bits());
        assert_eq!(faulted.total_energy().get().to_bits(), healthy.total_energy().get().to_bits());
        assert_eq!(faulted.total_slack().get().to_bits(), healthy.total_slack().get().to_bits());
        assert!(!faulted.deadline_fired());
        assert_eq!(faulted.wasted_energy(), Joules::ZERO);
    }

    #[test]
    fn crash_compute_wastes_partial_energy_and_never_uploads() {
        let (devs, freqs) = fleet();
        let faults = [Some(DeviceFault::CrashCompute { at: 0.5 }), None, None];
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &faults, None).unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        assert!(!o.uploaded && !o.delivered);
        assert_eq!(o.abort, Some(AbortReason::CrashCompute));
        let full = devs[0].compute_energy(freqs[0]).unwrap();
        assert!((o.compute_energy.get() - 0.5 * full.get()).abs() < 1e-12);
        assert_eq!(o.upload_energy, Joules::ZERO);
        assert_eq!(o.wasted_energy, o.compute_energy);
        assert_eq!(r.delivered_count(), 2);
        assert_eq!(r.uploaded_count(), 2);
        assert_eq!(r.faults_fired(), 1);
    }

    #[test]
    fn straggler_slows_compute_below_fmin_and_reprices_energy() {
        let (devs, freqs) = fleet();
        // 0.1 × 2 GHz = 0.2 GHz < f_min = 0.3 GHz: legal for physics,
        // illegal for the governor.
        let faults = [Some(DeviceFault::Straggler { slowdown: 0.1 }), None, None];
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &faults, None).unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        assert!(o.frequency < devs[0].cpu().range().min());
        assert!(o.compute_finish > o.planned_compute_finish);
        assert!((o.compute_finish.get() - o.planned_compute_finish.get() / 0.1).abs() < 1e-9);
        let expected = devs[0].cpu().compute_energy_unchecked(devs[0].work(), o.frequency);
        assert_eq!(o.compute_energy.get().to_bits(), expected.get().to_bits());
        // Delivered late, but delivered.
        assert!(o.delivered);
        assert_eq!(o.wasted_energy, Joules::ZERO);
    }

    #[test]
    fn upload_retries_stretch_occupation_and_waste_failed_attempts() {
        let (devs, freqs) = fleet();
        let fault = DeviceFault::UploadRetry {
            failed_attempts: 2,
            backoff: Seconds::new(1.0),
            exhausted: false,
        };
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &[Some(fault), None, None], None)
            .unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        let d = devs[0].upload_delay(payload()).get();
        // 2 failures with back-off, then the success: 3d + 2b.
        assert!(((o.upload_end - o.upload_start).get() - (3.0 * d + 2.0)).abs() < 1e-9);
        let per_attempt = devs[0].upload_energy(payload());
        assert!((o.upload_energy.get() - 3.0 * per_attempt.get()).abs() < 1e-9);
        assert!((o.wasted_energy.get() - 2.0 * per_attempt.get()).abs() < 1e-9);
        assert!(o.delivered);
        assert_eq!(o.retries, 2);
    }

    #[test]
    fn exhausted_retries_abort_and_waste_everything() {
        let (devs, freqs) = fleet();
        let fault = DeviceFault::UploadRetry {
            failed_attempts: 3,
            backoff: Seconds::new(0.5),
            exhausted: true,
        };
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &[Some(fault), None, None], None)
            .unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        let d = devs[0].upload_delay(payload()).get();
        // 3 failures, back-off only between them: 3d + 2b.
        assert!(((o.upload_end - o.upload_start).get() - (3.0 * d + 1.0)).abs() < 1e-9);
        assert!(!o.delivered && o.uploaded);
        assert_eq!(o.abort, Some(AbortReason::RetriesExhausted));
        assert_eq!(o.wasted_energy.get().to_bits(), o.total_energy().get().to_bits());
    }

    #[test]
    fn channel_degradation_stretches_and_reprices_the_upload() {
        let (devs, freqs) = fleet();
        let fault = DeviceFault::ChannelDegradation { gain: 0.5 };
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &[Some(fault), None, None], None)
            .unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        let d = devs[0].upload_delay(payload()).get();
        assert!(((o.upload_end - o.upload_start).get() - 2.0 * d).abs() < 1e-9);
        let nominal = devs[0].upload_energy(payload());
        assert!((o.upload_energy.get() - 2.0 * nominal.get()).abs() < 1e-9);
        assert!(o.delivered);
        assert_eq!(o.wasted_energy, Joules::ZERO);
    }

    #[test]
    fn crash_upload_frees_the_channel_early_and_wastes_all_energy() {
        let (devs, freqs) = fleet();
        let fault = DeviceFault::CrashUpload { at: 0.25 };
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &[Some(fault), None, None], None)
            .unwrap();
        let o = r.outcome(DeviceId(0)).unwrap();
        let d = devs[0].upload_delay(payload()).get();
        assert!(((o.upload_end - o.upload_start).get() - 0.25 * d).abs() < 1e-9);
        assert!(o.uploaded && !o.delivered);
        assert_eq!(o.abort, Some(AbortReason::CrashUpload));
        assert_eq!(o.wasted_energy.get().to_bits(), o.total_energy().get().to_bits());
    }

    #[test]
    fn deadline_drops_late_uploads_and_prorates_their_energy() {
        let (devs, freqs) = fleet();
        // Healthy round: device 1 computes 10 s then uploads 5 s.
        // A 9 s deadline cuts it mid-compute.
        let deadline = Some(Seconds::new(9.0));
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &[None, None, None], deadline)
            .unwrap();
        assert!(r.deadline_fired());
        assert_eq!(r.round_time(), Seconds::new(9.0));
        let slow = r.outcome(DeviceId(1)).unwrap();
        assert!(!slow.delivered);
        assert_eq!(slow.abort, Some(AbortReason::DeadlineExceeded));
        let full = devs[1].compute_energy(freqs[1]).unwrap();
        assert!((slow.compute_energy.get() - 0.9 * full.get()).abs() < 1e-12);
        // Its upload never started before t = 9 → zero upload spend.
        assert_eq!(slow.upload_energy, Joules::ZERO);
        assert_eq!(slow.wasted_energy.get().to_bits(), slow.total_energy().get().to_bits());
        // On-time devices are untouched.
        let fast = r.outcome(DeviceId(0)).unwrap();
        assert!(fast.delivered);
        assert_eq!(fast.wasted_energy, Joules::ZERO);
    }

    #[test]
    fn invalid_fault_parameters_are_rejected() {
        let (devs, freqs) = fleet();
        let bad = [
            DeviceFault::CrashCompute { at: 0.0 },
            DeviceFault::CrashUpload { at: 1.0 },
            DeviceFault::Straggler { slowdown: 1.0 },
            DeviceFault::UploadRetry {
                failed_attempts: 0,
                backoff: Seconds::ZERO,
                exhausted: false,
            },
            DeviceFault::ChannelDegradation { gain: 0.0 },
        ];
        for fault in bad {
            let faults = [Some(fault), None, None];
            assert!(
                FaultedRound::simulate(&devs, &freqs, payload(), &faults, None).is_err(),
                "{fault:?} should be rejected"
            );
        }
    }

    #[test]
    fn metrics_and_trace_report_fault_series() {
        use helcfl_telemetry::{analyze::Trace, MemorySink, Telemetry};
        let (devs, freqs) = fleet();
        let faults = [
            Some(DeviceFault::CrashCompute { at: 0.5 }),
            None,
            Some(DeviceFault::UploadRetry {
                failed_attempts: 1,
                backoff: Seconds::new(0.5),
                exhausted: false,
            }),
        ];
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &faults, None).unwrap();
        let mut registry = MetricsRegistry::new();
        r.record_metrics(&mut registry);
        assert_eq!(registry.counter("tdma.uploads"), 2);
        assert_eq!(registry.counter("faults.fired"), 2);
        assert_eq!(registry.counter("round.delivered"), 2);

        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        {
            let mut span = tele.span("timeline");
            r.trace_into(&mut span);
        }
        let trace = Trace::parse(&sink.lines().join("\n")).unwrap();
        let timeline = trace.spans.iter().find(|s| s.name == "timeline").unwrap();
        assert_eq!(timeline.attr_bool("fault_fired"), Some(true));
        assert_eq!(timeline.attr_u64("delivered"), Some(2));
        assert_eq!(timeline.attr_u64("selected"), Some(3));
        assert_eq!(trace.spans.iter().filter(|s| s.name == "fault").count(), 2);
        assert_eq!(trace.spans.iter().filter(|s| s.name == "retry").count(), 1);
        assert_eq!(trace.spans.iter().filter(|s| s.name == "abort").count(), 1);
        let crashed = trace
            .spans
            .iter()
            .find(|s| s.name == "device_activity" && s.attr_u64("device_id") == Some(0))
            .unwrap();
        assert_eq!(crashed.attr_bool("uploaded"), Some(false));
        assert_eq!(crashed.attr_str("fault"), Some("crash-compute"));
    }

    #[test]
    fn trace_digest_into_reconciles_with_the_full_trace() {
        use helcfl_telemetry::{analyze::Trace, MemorySink, Telemetry};
        let (devs, freqs) = fleet();
        let faults = [
            Some(DeviceFault::CrashCompute { at: 0.5 }),
            None,
            Some(DeviceFault::UploadRetry {
                failed_attempts: 1,
                backoff: Seconds::new(0.5),
                exhausted: false,
            }),
        ];
        let r = FaultedRound::simulate(&devs, &freqs, payload(), &faults, None).unwrap();
        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        {
            let mut span = tele.span("timeline");
            r.trace_digest_into(&mut span, DigestConfig { exemplars: 1, seed: 11 });
        }
        let trace = Trace::parse(&sink.lines().join("\n")).unwrap();

        // Summary attrs match the full-fidelity ones; digest flag set.
        let timeline = trace.spans.iter().find(|s| s.name == "timeline").unwrap();
        assert_eq!(timeline.attr_bool("digest"), Some(true));
        assert_eq!(timeline.attr_u64("selected"), Some(3));
        assert_eq!(timeline.attr_u64("delivered"), Some(2));

        // The digest carries totals that agree with the round itself.
        let digest = trace.spans.iter().find(|s| s.name == "cohort_digest").unwrap();
        assert_eq!(digest.attr_u64("devices"), Some(3));
        assert_eq!(digest.attr_u64("uploads"), Some(2));
        assert_eq!(digest.attr_u64("delivered"), Some(2));
        assert_eq!(digest.attr_u64("faults_fired"), Some(2));
        assert_eq!(digest.attr_f64("energy_sum_j"), Some(r.total_energy().get()));
        assert_eq!(
            digest.attr_f64("wasted_energy_sum_j"),
            Some(r.wasted_energy().get())
        );
        assert_eq!(digest.attr_f64("slack_sum_s"), Some(r.total_slack().get()));
        let release_max = r
            .outcomes()
            .iter()
            .map(|o| o.release_time())
            .fold(Seconds::ZERO, Seconds::max);
        assert_eq!(digest.attr_f64("release_max_s"), Some(release_max.get()));
        let energy_hist =
            Histogram::decode_compact(digest.attr_str("energy_hist").unwrap()).unwrap();
        assert_eq!(energy_hist.count, 3);

        // Exactly one exemplar, fully attributed; its markers (if any)
        // are the only fault/retry/abort children in the digest trace.
        let activities: Vec<_> =
            trace.spans.iter().filter(|s| s.name == "device_activity").collect();
        assert_eq!(activities.len(), 1);
        let a = activities[0];
        assert_eq!(a.attr_bool("exemplar"), Some(true));
        let id = a.attr_u64("device_id").unwrap() as usize;
        let o = r.outcome(DeviceId(id)).unwrap();
        assert_eq!(a.attr_bool("delivered"), Some(o.delivered));
        assert_eq!(a.attr_f64("wasted_energy_j"), Some(o.wasted_energy.get()));
        let marker_count = |name: &str| trace.spans.iter().filter(|s| s.name == name).count();
        assert_eq!(marker_count("fault"), usize::from(o.fault.is_some()));
        assert_eq!(marker_count("retry"), usize::from(o.retries > 0));
        assert_eq!(marker_count("abort"), usize::from(o.abort.is_some()));
    }
}
