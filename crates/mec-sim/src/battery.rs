//! Battery model for energy-constrained user devices.
//!
//! The paper's §I motivation: "most of user devices are powered by
//! batteries … their energy is quickly exhausted or even device
//! shutdown occurs during FL training". This module supplies the
//! battery the rest of the system drains — the FL runner (see
//! `fl-sim`) removes depleted devices from the selectable set, which
//! is how energy waste turns into *lost data* and ultimately lost
//! accuracy.


use crate::error::{MecError, Result};
use crate::units::Joules;

/// A device battery with finite capacity.
///
/// # Examples
///
/// ```
/// use mec_sim::battery::Battery;
/// use mec_sim::units::Joules;
///
/// let mut b = Battery::new(Joules::new(10.0))?;
/// assert!(b.try_drain(Joules::new(4.0)));
/// assert_eq!(b.remaining(), Joules::new(6.0));
/// assert!(!b.try_drain(Joules::new(7.0))); // refuses and depletes
/// assert!(b.is_depleted());
/// # Ok::<(), mec_sim::MecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity: Joules,
    remaining: Joules,
}

impl Battery {
    /// Creates a full battery.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] for a non-positive
    /// or non-finite capacity.
    pub fn new(capacity: Joules) -> Result<Self> {
        if !(capacity.get() > 0.0 && capacity.is_finite()) {
            return Err(MecError::NonPositiveParameter {
                name: "battery_capacity",
                value: capacity.get(),
            });
        }
        Ok(Self { capacity, remaining: capacity })
    }

    /// Rebuilds a battery at an exact charge level, for checkpoint
    /// restore. The `remaining` value is taken bit-for-bit — no
    /// clamping or rounding — so a resumed simulation drains from
    /// precisely the charge the interrupted run had left.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] for a non-positive or
    /// non-finite capacity, and [`MecError::NonPositiveParameter`] with
    /// name `battery_remaining` when `remaining` is not a finite value
    /// in `[0, capacity]`.
    pub fn restore(capacity: Joules, remaining: Joules) -> Result<Self> {
        Self::new(capacity)?;
        let r = remaining.get();
        if !(r.is_finite() && r >= 0.0 && remaining <= capacity) {
            return Err(MecError::NonPositiveParameter {
                name: "battery_remaining",
                value: r,
            });
        }
        Ok(Self { capacity, remaining })
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Energy left.
    #[inline]
    pub fn remaining(&self) -> Joules {
        self.remaining
    }

    /// Remaining fraction in `[0, 1]`.
    #[inline]
    pub fn fraction(&self) -> f64 {
        (self.remaining.get() / self.capacity.get()).clamp(0.0, 1.0)
    }

    /// Whether the device has shut down (no usable energy).
    #[inline]
    pub fn is_depleted(&self) -> bool {
        self.remaining.get() <= 0.0
    }

    /// Whether the battery can fund an expenditure of `amount`.
    #[inline]
    pub fn can_afford(&self, amount: Joules) -> bool {
        self.remaining >= amount
    }

    /// Attempts to drain `amount`. On success the charge drops and
    /// `true` is returned. If the battery cannot afford it, the device
    /// browns out mid-round: the charge is zeroed (the energy was
    /// spent trying) and `false` is returned.
    pub fn try_drain(&mut self, amount: Joules) -> bool {
        debug_assert!(amount.get() >= 0.0, "cannot drain negative energy");
        if self.can_afford(amount) {
            self.remaining -= amount;
            true
        } else {
            self.remaining = Joules::ZERO;
            false
        }
    }

    /// Recharges to full (scenario resets between experiments).
    pub fn recharge(&mut self) {
        self.remaining = self.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_capacity() {
        assert!(Battery::new(Joules::ZERO).is_err());
        assert!(Battery::new(Joules::new(-5.0)).is_err());
        assert!(Battery::new(Joules::new(f64::NAN)).is_err());
        assert!(Battery::new(Joules::new(100.0)).is_ok());
    }

    #[test]
    fn drain_decrements_until_depleted() {
        let mut b = Battery::new(Joules::new(10.0)).unwrap();
        assert_eq!(b.fraction(), 1.0);
        assert!(b.try_drain(Joules::new(6.0)));
        assert!((b.fraction() - 0.4).abs() < 1e-12);
        assert!(!b.is_depleted());
        // Over-drain browns out: refused, but charge is gone.
        assert!(!b.try_drain(Joules::new(6.0)));
        assert!(b.is_depleted());
        assert_eq!(b.remaining(), Joules::ZERO);
        // Once dead, even zero-cost work is "affordable" but pointless.
        assert!(b.can_afford(Joules::ZERO));
    }

    #[test]
    fn exact_drain_is_allowed() {
        let mut b = Battery::new(Joules::new(5.0)).unwrap();
        assert!(b.try_drain(Joules::new(5.0)));
        assert!(b.is_depleted());
    }

    #[test]
    fn restore_is_bit_exact_and_validated() {
        let cap = Joules::new(10.0);
        // An awkward, non-representable-in-decimal charge survives the
        // round trip exactly.
        let charge = Joules::new(10.0 / 3.0);
        let b = Battery::restore(cap, charge).unwrap();
        assert_eq!(b.remaining().get().to_bits(), charge.get().to_bits());
        assert_eq!(b.capacity(), cap);
        // Bounds: empty and full are both legal states.
        assert!(Battery::restore(cap, Joules::ZERO).unwrap().is_depleted());
        assert_eq!(Battery::restore(cap, cap).unwrap().fraction(), 1.0);
        // Rejections: bad capacity, negative/overfull/non-finite charge.
        assert!(Battery::restore(Joules::ZERO, Joules::ZERO).is_err());
        assert!(Battery::restore(cap, Joules::new(-0.5)).is_err());
        assert!(Battery::restore(cap, Joules::new(10.5)).is_err());
        assert!(Battery::restore(cap, Joules::new(f64::NAN)).is_err());
    }

    #[test]
    fn recharge_restores_capacity() {
        let mut b = Battery::new(Joules::new(5.0)).unwrap();
        b.try_drain(Joules::new(5.0));
        b.recharge();
        assert_eq!(b.remaining(), Joules::new(5.0));
        assert!(!b.is_depleted());
    }
}
