//! # mec-sim — mobile-edge-computing system substrate
//!
//! The MEC system the HELCFL paper (DATE 2022) assumes but does not
//! ship: DVFS-capable heterogeneous user devices, a Shannon-rate
//! wireless uplink, a TDMA channel that serializes model uploads, and
//! the delay/energy bookkeeping of Eq. 4–11.
//!
//! The crate is deliberately independent of any learning code — it
//! models *when* things happen and *what they cost*, never what is
//! learned. The `fl-sim` crate couples it to actual training.
//!
//! ## Quick tour
//!
//! ```
//! use mec_sim::population::PopulationBuilder;
//! use mec_sim::timeline::RoundTimeline;
//! use mec_sim::units::Bits;
//!
//! // 100 heterogeneous devices per the paper's §VII-A.
//! let pop = PopulationBuilder::paper_default().seed(7).build()?;
//!
//! // Simulate one synchronous round for the first ten devices, each
//! // uploading a SqueezeNet-scale 40 Mbit model at max frequency.
//! let selected = &pop.devices()[..10];
//! let round = RoundTimeline::simulate_at_max(selected, Bits::from_megabits(40.0))?;
//! assert!(round.makespan().get() > 0.0);
//! assert!(round.total_energy().get() > 0.0);
//! # Ok::<(), mec_sim::MecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod channel;
pub mod comm;
pub mod cpu;
pub mod device;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod population;
pub mod tdma;
pub mod timeline;
pub mod units;

pub use error::{MecError, Result};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::device::Device>();
        assert_send_sync::<crate::fleet::Fleet>();
        assert_send_sync::<crate::fleet::AliveMask>();
        assert_send_sync::<crate::population::Population>();
        assert_send_sync::<crate::timeline::RoundTimeline>();
        assert_send_sync::<crate::MecError>();
    }
}
