//! Device-aware round timelines: compute spans + TDMA uploads +
//! energy accounting for one synchronous FL training iteration.
//!
//! [`RoundTimeline`] glues the per-device models (Eq. 4–9) to the
//! serialized TDMA channel ([`TdmaSchedule`]) and reports the metrics
//! the paper's evaluation needs: round delay, per-round energy
//! (Eq. 10–11), per-device slack, and an ASCII Gantt rendering of the
//! Fig. 1 schedule.


use helcfl_telemetry::{Class, Histogram, MetricsRegistry, Span};

use crate::device::{Device, DeviceId};
use crate::error::{MecError, Result};
use crate::tdma::{TdmaSchedule, UploadRequest};
use crate::units::{Bits, Hertz, Joules, Seconds};

/// One device's fully-resolved activity within a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceActivity {
    /// The device.
    pub device: DeviceId,
    /// The operating frequency it computed at.
    pub frequency: Hertz,
    /// The device's maximum frequency — the baseline the
    /// delay-neutrality and `E ∝ f²` audits compare against.
    pub f_max: Hertz,
    /// Local model-update delay `T^cal` (compute starts at t = 0).
    pub compute_finish: Seconds,
    /// When its upload obtained the channel.
    pub upload_start: Seconds,
    /// When its upload finished.
    pub upload_end: Seconds,
    /// Compute energy `E^cal` at `frequency` (Eq. 5).
    pub compute_energy: Joules,
    /// Compute energy the same workload would have cost at `f_max` —
    /// the `E ∝ f²` reference the audit checks `compute_energy`
    /// against (`E_f = E_max · (f / f_max)²`, and `E_f ≤ E_max`).
    pub compute_energy_at_max: Joules,
    /// Upload energy `E^com` (Eq. 8).
    pub upload_energy: Joules,
}

impl DeviceActivity {
    /// Idle wait between compute completion and upload start.
    #[inline]
    pub fn slack(&self) -> Seconds {
        self.upload_start - self.compute_finish
    }

    /// Total device energy in this round.
    #[inline]
    pub fn total_energy(&self) -> Joules {
        self.compute_energy + self.upload_energy
    }

    /// End-to-end span of this device (Eq. 9 plus any wait).
    #[inline]
    pub fn total_delay(&self) -> Seconds {
        self.upload_end
    }
}

/// Configuration for digest-mode tracing
/// ([`RoundTimeline::trace_digest_into`] and
/// [`crate::faults::FaultedRound::trace_digest_into`]).
///
/// Digest mode replaces the per-device `device_activity` spans with one
/// `cohort_digest` span carrying streaming aggregates, plus `exemplars`
/// deterministically sampled devices that still emit full spans so the
/// audit can replay representative schedules exactly. The sampler is a
/// fresh [`detrand::Rng`] seeded with `seed` — callers derive it from a
/// dedicated seed domain per round so digest tracing can never perturb
/// selection, training, or fault draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestConfig {
    /// How many exemplar devices keep full `device_activity` spans.
    /// Clamped to the cohort size.
    pub exemplars: usize,
    /// Per-round exemplar-sampler seed.
    pub seed: u64,
}

/// Samples `cfg.exemplars` distinct indices from `0..n`, returned in
/// ascending order so exemplar spans emit in channel order.
pub(crate) fn sample_exemplars(n: usize, cfg: DigestConfig) -> Vec<usize> {
    let k = cfg.exemplars.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut indices = detrand::Rng::seed_from_u64(cfg.seed).sample_indices(n, k);
    indices.sort_unstable();
    indices
}

/// The resolved timeline of one synchronous round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTimeline {
    activities: Vec<DeviceActivity>,
    payload: Bits,
}

impl RoundTimeline {
    /// Simulates one round for `devices` operating at per-device
    /// frequencies `frequencies`, each uploading `payload` bits.
    ///
    /// Computation runs in parallel across devices from t = 0; uploads
    /// serialize on the TDMA channel in compute-finish order.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::EmptyDeviceSet`] for no devices, a
    /// [`MecError::NonPositiveParameter`] if `frequencies` length
    /// mismatches, or [`MecError::FrequencyOutOfRange`] if a frequency
    /// is unsupported by its device.
    pub fn simulate(devices: &[Device], frequencies: &[Hertz], payload: Bits) -> Result<Self> {
        if devices.is_empty() {
            return Err(MecError::EmptyDeviceSet);
        }
        if devices.len() != frequencies.len() {
            return Err(MecError::NonPositiveParameter {
                name: "frequencies.len",
                value: frequencies.len() as f64,
            });
        }
        let mut requests = Vec::with_capacity(devices.len());
        for (dev, &f) in devices.iter().zip(frequencies) {
            requests.push(UploadRequest {
                device: dev.id(),
                compute_finish: dev.compute_delay(f)?,
                upload_duration: dev.upload_delay(payload),
            });
        }
        let schedule = TdmaSchedule::new(requests);
        let mut activities = Vec::with_capacity(devices.len());
        for slot in schedule.slots() {
            let (dev, &f) = devices
                .iter()
                .zip(frequencies)
                .find(|(d, _)| d.id() == slot.device)
                .expect("slot devices come from the input set");
            activities.push(DeviceActivity {
                device: slot.device,
                frequency: f,
                f_max: dev.cpu().range().max(),
                compute_finish: slot.compute_finish,
                upload_start: slot.upload_start,
                upload_end: slot.upload_end,
                compute_energy: dev.compute_energy(f)?,
                compute_energy_at_max: dev.compute_energy(dev.cpu().range().max())?,
                upload_energy: dev.upload_energy(payload),
            });
        }
        Ok(Self { activities, payload })
    }

    /// Convenience: simulate with every device at its maximum frequency
    /// (the "traditional FL" baseline of §VI-A).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoundTimeline::simulate`].
    pub fn simulate_at_max(devices: &[Device], payload: Bits) -> Result<Self> {
        let freqs: Vec<Hertz> = devices.iter().map(|d| d.cpu().range().max()).collect();
        Self::simulate(devices, &freqs, payload)
    }

    /// Per-device activities in channel (upload) order.
    #[inline]
    pub fn activities(&self) -> &[DeviceActivity] {
        &self.activities
    }

    /// The model payload size used for uploads.
    #[inline]
    pub fn payload(&self) -> Bits {
        self.payload
    }

    /// Round delay: the TDMA makespan (when the last upload lands).
    pub fn makespan(&self) -> Seconds {
        self.activities.last().map_or(Seconds::ZERO, |a| a.upload_end)
    }

    /// The paper's Eq. 10 lower bound `max_q (T^cal + T^com)`, which
    /// ignores channel contention.
    pub fn eq10_bound(&self) -> Seconds {
        self.activities
            .iter()
            .map(|a| a.compute_finish + (a.upload_end - a.upload_start))
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total round energy `E_Γ` (Eq. 11).
    pub fn total_energy(&self) -> Joules {
        self.activities.iter().map(DeviceActivity::total_energy).sum()
    }

    /// Total compute energy across devices.
    pub fn compute_energy(&self) -> Joules {
        self.activities.iter().map(|a| a.compute_energy).sum()
    }

    /// Total slack across devices — the head-room Alg. 3 exploits.
    pub fn total_slack(&self) -> Seconds {
        self.activities.iter().map(DeviceActivity::slack).sum()
    }

    /// Activity of a specific device, if it participated.
    pub fn activity(&self, device: DeviceId) -> Option<&DeviceActivity> {
        self.activities.iter().find(|a| a.device == device)
    }

    /// Records this round's TDMA and energy profile into a metrics
    /// registry.
    ///
    /// All values are derived from the resolved timeline — pure
    /// simulation state — so they carry [`Class::Sim`] and stay
    /// bit-identical across thread counts. Names:
    ///
    /// * `tdma.uploads` (counter) — uploads serialized this round;
    /// * `tdma.queue_wait_s` (histogram) — per-device wait between
    ///   compute finish and channel acquisition (the slack Alg. 3
    ///   harvests);
    /// * `device.energy_j` / `device.compute_energy_j` (histograms) —
    ///   per-device round energy split;
    /// * `round.makespan_s` / `round.slack_total_s` (histograms) —
    ///   one sample per round, distribution across the run.
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_add(Class::Sim, "tdma.uploads", self.activities.len() as u64);
        // Batched per metric: one registry walk per name, not three
        // string-keyed walks per device — at population scale this
        // loop runs over 10^4 devices every traced round.
        registry.record_iter(
            Class::Sim,
            "tdma.queue_wait_s",
            self.activities.iter().map(|a| a.slack().get()),
        );
        registry.record_iter(
            Class::Sim,
            "device.energy_j",
            self.activities.iter().map(|a| a.total_energy().get()),
        );
        registry.record_iter(
            Class::Sim,
            "device.compute_energy_j",
            self.activities.iter().map(|a| a.compute_energy.get()),
        );
        registry.record(Class::Sim, "round.makespan_s", self.makespan().get());
        registry.record(Class::Sim, "round.slack_total_s", self.total_slack().get());
    }

    /// Attaches this round's resolved schedule to an open `timeline`
    /// span: summary totals as attributes on `span` itself, plus one
    /// `device_activity` child span per device carrying everything the
    /// trace auditor needs to replay the round against the analytic
    /// model (frequency and `f_max`, compute/upload window, energy
    /// split). The children are zero-duration markers ended
    /// immediately, so they never distort the parent's wall-clock
    /// share.
    ///
    /// All attribute values are pure simulation state; the emission is
    /// a read-only projection and cannot perturb determinism.
    pub fn trace_into(&self, span: &mut Span) {
        self.set_summary_attrs(span);
        for a in &self.activities {
            Self::emit_activity(span, a, false);
        }
    }

    /// Digest-mode variant of [`RoundTimeline::trace_into`]: summary
    /// totals plus `digest: true` on `span` itself, one `cohort_digest`
    /// child carrying streaming aggregates over the whole cohort
    /// (counts, energy/slack sums and extrema, compact binary-exponent
    /// histograms), and full `device_activity` spans only for the
    /// exemplar devices picked by `cfg` (tagged `exemplar: true`,
    /// emitted in channel order).
    ///
    /// The digest is a pure projection of the resolved timeline —
    /// exactly the same state `trace_into` reads — so switching modes
    /// can never perturb the simulation.
    pub fn trace_digest_into(&self, span: &mut Span, cfg: DigestConfig) {
        self.set_summary_attrs(span);
        span.set("digest", true);
        let exemplars = sample_exemplars(self.activities.len(), cfg);
        {
            // Batched aggregation (see `Histogram::record_batch`):
            // per-device cost is an array increment, and the extrema
            // fall out of the histograms' own finite min/max — all
            // energies and slacks are finite by construction.
            let mut energy_hist = Histogram::new();
            let mut slack_hist = Histogram::new();
            energy_hist
                .record_batch(self.activities.iter().map(|a| a.total_energy().get()));
            slack_hist.record_batch(self.activities.iter().map(|a| a.slack().get()));
            span.child("cohort_digest")
                .with("devices", self.activities.len())
                .with("exemplars", exemplars.len())
                .with("uploads", self.activities.len())
                .with("energy_sum_j", self.total_energy().get())
                .with("energy_min_j", energy_hist.min)
                .with("energy_max_j", energy_hist.max)
                .with("compute_energy_sum_j", self.compute_energy().get())
                .with("slack_sum_s", self.total_slack().get())
                .with("slack_min_s", slack_hist.min)
                .with("slack_max_s", slack_hist.max)
                .with("release_max_s", self.makespan().get())
                .with("energy_hist", energy_hist.encode_compact())
                .with("slack_hist", slack_hist.encode_compact())
                .end();
        }
        for &i in &exemplars {
            Self::emit_activity(span, &self.activities[i], true);
        }
    }

    fn set_summary_attrs(&self, span: &mut Span) {
        span.set("uploads", self.activities.len());
        span.set("makespan_s", self.makespan().get());
        span.set("slack_total_s", self.total_slack().get());
        span.set("energy_j", self.total_energy().get());
        span.set("compute_energy_j", self.compute_energy().get());
    }

    fn emit_activity(span: &mut Span, a: &DeviceActivity, exemplar: bool) {
        let mut child = span
            .child("device_activity")
            .with("device", a.device.to_string())
            .with("device_id", a.device.0)
            .with("f_hz", a.frequency.get())
            .with("f_max_hz", a.f_max.get())
            .with("compute_finish_s", a.compute_finish.get())
            .with("upload_start_s", a.upload_start.get())
            .with("upload_end_s", a.upload_end.get())
            .with("compute_energy_j", a.compute_energy.get())
            .with("compute_energy_at_max_j", a.compute_energy_at_max.get())
            .with("upload_energy_j", a.upload_energy.get());
        if exemplar {
            child = child.with("exemplar", true);
        }
        child.end();
    }

    /// Renders the round as an ASCII Gantt chart (one row per device;
    /// `=` compute, `.` slack wait, `#` upload), reproducing the
    /// paper's Fig. 1 visually.
    pub fn gantt(&self, width: usize) -> String {
        let span = self.makespan().get();
        if span <= 0.0 || width == 0 {
            return String::new();
        }
        let scale = width as f64 / span;
        let mut out = String::new();
        for a in &self.activities {
            let compute = (a.compute_finish.get() * scale).round() as usize;
            let wait = (a.slack().get() * scale).round() as usize;
            let upload =
                ((a.upload_end.get() - a.upload_start.get()) * scale).round() as usize;
            out.push_str(&format!("{:>6} |", a.device.to_string()));
            out.push_str(&"=".repeat(compute));
            out.push_str(&".".repeat(wait));
            out.push_str(&"#".repeat(upload.max(1)));
            out.push('\n');
        }
        out.push_str(&format!(
            "        0{}{:.1}s\n",
            " ".repeat(width.saturating_sub(6)),
            span
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Uplink;
    use crate::cpu::DvfsCpu;
    use crate::units::{BitsPerSecond, Watts};

    fn device(id: usize, fmax_ghz: f64, samples: usize, mbps: f64) -> Device {
        let cpu =
            DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax_ghz)).unwrap();
        let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
        Device::new(DeviceId(id), cpu, 1.0e7, samples, uplink).unwrap()
    }

    fn payload() -> Bits {
        Bits::from_megabits(40.0)
    }

    #[test]
    fn empty_device_set_is_rejected() {
        assert!(matches!(
            RoundTimeline::simulate(&[], &[], payload()),
            Err(MecError::EmptyDeviceSet)
        ));
    }

    #[test]
    fn mismatched_frequencies_are_rejected() {
        let devs = [device(0, 2.0, 500, 8.0)];
        assert!(RoundTimeline::simulate(&devs, &[], payload()).is_err());
    }

    #[test]
    fn unsupported_frequency_is_rejected() {
        let devs = [device(0, 1.0, 500, 8.0)];
        assert!(RoundTimeline::simulate(&devs, &[Hertz::from_ghz(1.5)], payload()).is_err());
    }

    #[test]
    fn single_device_round_is_compute_plus_upload() {
        let devs = [device(0, 2.0, 500, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        // 2.5 s compute + 5 s upload.
        assert_eq!(tl.makespan(), Seconds::new(7.5));
        assert_eq!(tl.eq10_bound(), tl.makespan());
        assert_eq!(tl.total_slack(), Seconds::ZERO);
    }

    #[test]
    fn heterogeneous_round_serializes_uploads() {
        // Fast device: T_cal = 2.5 s; slow device: T_cal = 5e9/0.5e9 = 10 s.
        let devs = [device(0, 2.0, 500, 8.0), device(1, 0.5, 500, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let fast = tl.activity(DeviceId(0)).unwrap();
        let slow = tl.activity(DeviceId(1)).unwrap();
        assert_eq!(fast.upload_start, Seconds::new(2.5));
        assert_eq!(fast.upload_end, Seconds::new(7.5));
        // Slow device computes past the fast upload → starts at t=10.
        assert_eq!(slow.upload_start, Seconds::new(10.0));
        assert_eq!(tl.makespan(), Seconds::new(15.0));
        // Eq. 10 ignores contention: max(7.5, 15) = 15 here.
        assert_eq!(tl.eq10_bound(), Seconds::new(15.0));
    }

    #[test]
    fn slack_appears_when_compute_finishes_during_prior_upload() {
        // Both finish computing close together; uploads serialize.
        let devs = [device(0, 2.0, 500, 8.0), device(1, 2.0, 600, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let second = tl.activity(DeviceId(1)).unwrap();
        // Device 1 computes 3 s, waits until 7.5 s.
        assert_eq!(second.slack(), Seconds::new(4.5));
        assert!(tl.eq10_bound() < tl.makespan());
    }

    #[test]
    fn energy_accounts_compute_plus_upload_eq11() {
        let devs = [device(0, 2.0, 500, 8.0), device(1, 1.0, 500, 4.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let manual: Joules = devs
            .iter()
            .map(|d| {
                d.compute_energy(d.cpu().range().max()).unwrap() + d.upload_energy(payload())
            })
            .sum();
        assert!((tl.total_energy().get() - manual.get()).abs() < 1e-12);
        assert!(tl.compute_energy() < tl.total_energy());
    }

    #[test]
    fn lower_frequency_cuts_energy_without_extending_round_when_slack_absorbs_it() {
        let devs = [device(0, 2.0, 500, 8.0), device(1, 2.0, 600, 8.0)];
        let at_max = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        // Slow device 1 so it finishes exactly when device 0's upload ends
        // (t = 7.5 s): f = 6e9 cycles / 7.5 s = 0.8 GHz.
        let freqs = [Hertz::from_ghz(2.0), Hertz::from_ghz(0.8)];
        let tuned = RoundTimeline::simulate(&devs, &freqs, payload()).unwrap();
        assert_eq!(tuned.makespan(), at_max.makespan());
        assert!(tuned.total_energy() < at_max.total_energy());
        assert_eq!(tuned.activity(DeviceId(1)).unwrap().slack(), Seconds::ZERO);
    }

    #[test]
    fn gantt_renders_one_row_per_device() {
        let devs = [device(0, 2.0, 500, 8.0), device(1, 0.5, 500, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let g = tl.gantt(60);
        assert_eq!(g.lines().count(), 3); // 2 devices + axis
        assert!(g.contains("v0"));
        assert!(g.contains("v1"));
        assert!(g.contains('#'));
    }

    #[test]
    fn record_metrics_tallies_uploads_waits_and_energy() {
        let devs = [device(0, 2.0, 500, 8.0), device(1, 2.0, 600, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let mut registry = MetricsRegistry::new();
        tl.record_metrics(&mut registry);
        assert_eq!(registry.counter("tdma.uploads"), 2);
        let waits = registry.histogram("tdma.queue_wait_s").unwrap();
        assert_eq!(waits.count, 2);
        // Device 0 uploads immediately (zero wait → underflow tally);
        // device 1 waits 4.5 s.
        assert_eq!(waits.underflow, 1);
        assert_eq!(waits.max, 4.5);
        let energy = registry.histogram("device.energy_j").unwrap();
        assert_eq!(energy.count, 2);
        assert_eq!(
            registry.histogram("round.makespan_s").unwrap().max,
            tl.makespan().get()
        );
    }

    #[test]
    fn trace_into_emits_auditable_device_activity_spans() {
        use helcfl_telemetry::{analyze::Trace, MemorySink, Telemetry};
        let devs = [device(0, 2.0, 500, 8.0), device(1, 2.0, 600, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        {
            let mut span = tele.span("timeline");
            tl.trace_into(&mut span);
        }
        let text = sink.lines().join("\n");
        let trace = Trace::parse(&text).unwrap();
        let activities: Vec<_> =
            trace.spans.iter().filter(|s| s.name == "device_activity").collect();
        assert_eq!(activities.len(), 2);
        let a0 = activities
            .iter()
            .find(|s| s.attr_str("device") == Some("v0"))
            .expect("device 0 present");
        assert_eq!(a0.attr_u64("device_id"), Some(0));
        assert_eq!(a0.attr_f64("f_hz"), Some(2.0e9));
        assert_eq!(a0.attr_f64("f_max_hz"), Some(2.0e9));
        assert_eq!(a0.attr_f64("compute_finish_s"), Some(2.5));
        assert_eq!(a0.attr_f64("upload_start_s"), Some(2.5));
        assert_eq!(a0.attr_f64("upload_end_s"), Some(7.5));
        assert!(a0.attr_f64("compute_energy_j").unwrap() > 0.0);
        // At f_max the scaled and reference energies coincide.
        assert_eq!(
            a0.attr_f64("compute_energy_at_max_j"),
            a0.attr_f64("compute_energy_j")
        );
        let parent = trace.span(a0.parent.unwrap()).unwrap();
        assert_eq!(parent.name, "timeline");
        assert_eq!(parent.attr_u64("uploads"), Some(2));
        assert_eq!(parent.attr_f64("makespan_s"), Some(tl.makespan().get()));
        assert_eq!(parent.attr_f64("energy_j"), Some(tl.total_energy().get()));
    }

    #[test]
    fn exemplar_sampling_is_deterministic_sorted_and_clamped() {
        let cfg = DigestConfig { exemplars: 3, seed: 99 };
        let a = sample_exemplars(10, cfg);
        let b = sample_exemplars(10, cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted distinct: {a:?}");
        assert!(a.iter().all(|&i| i < 10));
        // Different seed, different pick (with overwhelming probability
        // for this pinned seed pair).
        assert_ne!(a, sample_exemplars(10, DigestConfig { exemplars: 3, seed: 100 }));
        // Clamped to the cohort; zero exemplars is allowed.
        assert_eq!(sample_exemplars(2, cfg), vec![0, 1]);
        assert!(sample_exemplars(5, DigestConfig { exemplars: 0, seed: 1 }).is_empty());
    }

    #[test]
    fn trace_digest_into_emits_cohort_digest_and_exemplars() {
        use helcfl_telemetry::{analyze::Trace, MemorySink, Telemetry};
        let devs = [
            device(0, 2.0, 500, 8.0),
            device(1, 2.0, 600, 8.0),
            device(2, 0.5, 500, 8.0),
            device(3, 1.0, 400, 4.0),
        ];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        let sink = MemorySink::new();
        let tele = Telemetry::with_sink(sink.clone());
        {
            let mut span = tele.span("timeline");
            tl.trace_digest_into(&mut span, DigestConfig { exemplars: 2, seed: 7 });
        }
        let text = sink.lines().join("\n");
        let trace = Trace::parse(&text).unwrap();

        let timeline = trace.spans.iter().find(|s| s.name == "timeline").unwrap();
        assert_eq!(timeline.attr_bool("digest"), Some(true));
        assert_eq!(timeline.attr_u64("uploads"), Some(4));

        let digest = trace.spans.iter().find(|s| s.name == "cohort_digest").unwrap();
        assert_eq!(digest.parent, Some(timeline.id));
        assert_eq!(digest.attr_u64("devices"), Some(4));
        assert_eq!(digest.attr_u64("exemplars"), Some(2));
        assert_eq!(digest.attr_f64("energy_sum_j"), Some(tl.total_energy().get()));
        assert_eq!(digest.attr_f64("slack_sum_s"), Some(tl.total_slack().get()));
        assert_eq!(digest.attr_f64("release_max_s"), Some(tl.makespan().get()));
        let energy_hist =
            Histogram::decode_compact(digest.attr_str("energy_hist").unwrap()).unwrap();
        assert_eq!(energy_hist.count, 4);
        let slack_hist =
            Histogram::decode_compact(digest.attr_str("slack_hist").unwrap()).unwrap();
        assert_eq!(slack_hist.count, 4);

        // Exactly K exemplar device_activity spans, each fully attributed
        // and tagged, values inside the digest extrema.
        let activities: Vec<_> =
            trace.spans.iter().filter(|s| s.name == "device_activity").collect();
        assert_eq!(activities.len(), 2);
        let emin = digest.attr_f64("energy_min_j").unwrap();
        let emax = digest.attr_f64("energy_max_j").unwrap();
        for a in &activities {
            assert_eq!(a.attr_bool("exemplar"), Some(true));
            let act = tl.activity(DeviceId(a.attr_u64("device_id").unwrap() as usize)).unwrap();
            assert_eq!(a.attr_f64("upload_end_s"), Some(act.upload_end.get()));
            let e = act.total_energy().get();
            assert!(e >= emin && e <= emax);
        }
        // Same config replays the same exemplar set.
        let sink2 = MemorySink::new();
        let tele2 = Telemetry::with_sink(sink2.clone());
        {
            let mut span = tele2.span("timeline");
            tl.trace_digest_into(&mut span, DigestConfig { exemplars: 2, seed: 7 });
        }
        let ids = |s: &MemorySink| {
            let text = s.lines().join("\n");
            let t = Trace::parse(&text).unwrap();
            t.spans
                .iter()
                .filter(|sp| sp.name == "device_activity")
                .map(|sp| sp.attr_u64("device_id").unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&sink), ids(&sink2));
    }

    #[test]
    fn gantt_with_zero_width_is_empty() {
        let devs = [device(0, 2.0, 500, 8.0)];
        let tl = RoundTimeline::simulate_at_max(&devs, payload()).unwrap();
        assert!(tl.gantt(0).is_empty());
    }
}
