//! Struct-of-arrays fleet storage for million-device populations.
//!
//! [`Population`] stores devices as an array of structs — convenient at
//! the paper's Q = 100, wasteful at Q = 10^7 where every per-round walk
//! drags the full 56-byte `Device` through cache. [`Fleet`] stores the
//! same information as parallel arrays with the *shared* parameters
//! (`f_min`, α, π, transmit power — uniform across the paper's §VII-A
//! populations) hoisted out to scalars, so the resident footprint is
//! ~20 bytes/device and per-round iteration touches only the arrays it
//! needs. Device ids are implicit: device `q` lives at index `q`.
//!
//! Invariants (checked at construction):
//!
//! - every per-device `f_max` is finite and ≥ the shared `f_min`;
//! - every per-device uplink rate is strictly positive and finite;
//! - every per-device sample count is strictly positive;
//! - the shared scalars pass the same validation as the corresponding
//!   [`DvfsCpu`]/[`Uplink`] constructors.
//!
//! [`Fleet::device`] reconstructs a bit-identical [`Device`] on demand
//! through the validated constructors, so all delay/energy math keeps a
//! single implementation.

use crate::channel::RadioEnvironment;
use crate::comm::Uplink;
use crate::cpu::{DvfsCpu, FrequencyRange};
use crate::device::{Device, DeviceId};
use crate::error::{MecError, Result};
use crate::population::Population;
use crate::units::{BitsPerSecond, Hertz, Watts};

/// Compact struct-of-arrays view of a device fleet.
///
/// # Examples
///
/// ```
/// use mec_sim::population::PopulationBuilder;
///
/// let builder = PopulationBuilder::paper_default().seed(7);
/// let fleet = builder.build_fleet()?;
/// let pop = builder.build()?;
/// assert_eq!(fleet.len(), pop.len());
/// assert_eq!(fleet.device(17), pop.devices()[17]);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    f_min: Hertz,
    alpha: f64,
    cycles_per_sample: f64,
    transmit_power: Watts,
    environment: RadioEnvironment,
    /// Per-device `f_max` in Hz; index is the device id.
    f_max: Vec<f64>,
    /// Per-device achieved uplink rate in bits/s; index is the device id.
    rate: Vec<f64>,
    /// Per-device dataset size `|D_q|`; index is the device id.
    num_samples: Vec<u32>,
}

impl Fleet {
    /// Assembles a fleet from raw arrays (the `PopulationBuilder` fast
    /// path). Validates every entry through the same rules as the
    /// device constructors.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::EmptyDeviceSet`] for zero devices, or the
    /// first validation error among the shared scalars and per-device
    /// entries.
    // The arguments mirror the struct's own layout (five shared
    // scalars + three parallel arrays); a params struct would repeat
    // the same eight fields one call site away.
    #[allow(clippy::too_many_arguments)]
    pub fn from_arrays(
        f_min: Hertz,
        alpha: f64,
        cycles_per_sample: f64,
        transmit_power: Watts,
        environment: RadioEnvironment,
        f_max: Vec<f64>,
        rate: Vec<f64>,
        num_samples: Vec<u32>,
    ) -> Result<Self> {
        if f_max.is_empty() {
            return Err(MecError::EmptyDeviceSet);
        }
        assert_eq!(f_max.len(), rate.len(), "parallel arrays must be equal length");
        assert_eq!(f_max.len(), num_samples.len(), "parallel arrays must be equal length");
        // Validate the shared scalars once through the real constructors.
        DvfsCpu::new(FrequencyRange::new(f_min, f_min)?, alpha)?;
        if !(cycles_per_sample > 0.0 && cycles_per_sample.is_finite()) {
            return Err(MecError::NonPositiveParameter {
                name: "cycles_per_sample",
                value: cycles_per_sample,
            });
        }
        for (q, (&f, &r)) in f_max.iter().zip(&rate).enumerate() {
            FrequencyRange::new(f_min, Hertz::new(f))?;
            Uplink::new(transmit_power, BitsPerSecond::new(r))?;
            if num_samples[q] == 0 {
                return Err(MecError::NonPositiveParameter { name: "num_samples", value: 0.0 });
            }
        }
        Ok(Self {
            f_min,
            alpha,
            cycles_per_sample,
            transmit_power,
            environment,
            f_max,
            rate,
            num_samples,
        })
    }

    /// Compacts an existing [`Population`] into SoA form.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::EmptyDeviceSet`] for an empty population and
    /// [`MecError::NonPositiveParameter`] (naming the offending field)
    /// if the per-device parameters that the SoA layout hoists into
    /// shared scalars — `f_min`, α, π, transmit power — are not uniform
    /// across the population, or a dataset size overflows `u32`.
    pub fn from_population(population: &Population) -> Result<Self> {
        let devices = population.devices();
        let first = devices.first().ok_or(MecError::EmptyDeviceSet)?;
        let f_min = first.cpu().range().min();
        let alpha = first.cpu().alpha();
        let cycles_per_sample = first.cycles_per_sample();
        let transmit_power = first.uplink().power();
        let mut f_max = Vec::with_capacity(devices.len());
        let mut rate = Vec::with_capacity(devices.len());
        let mut num_samples = Vec::with_capacity(devices.len());
        for d in devices {
            if d.cpu().range().min() != f_min {
                return Err(MecError::NonPositiveParameter {
                    name: "fleet requires uniform f_min",
                    value: d.cpu().range().min().get(),
                });
            }
            if d.cpu().alpha() != alpha {
                return Err(MecError::NonPositiveParameter {
                    name: "fleet requires uniform alpha",
                    value: d.cpu().alpha(),
                });
            }
            if d.cycles_per_sample() != cycles_per_sample {
                return Err(MecError::NonPositiveParameter {
                    name: "fleet requires uniform cycles_per_sample",
                    value: d.cycles_per_sample(),
                });
            }
            if d.uplink().power() != transmit_power {
                return Err(MecError::NonPositiveParameter {
                    name: "fleet requires uniform transmit_power",
                    value: d.uplink().power().get(),
                });
            }
            let samples = u32::try_from(d.num_samples()).map_err(|_| {
                MecError::NonPositiveParameter {
                    name: "num_samples overflows the fleet's u32 storage",
                    value: d.num_samples() as f64,
                }
            })?;
            f_max.push(d.cpu().range().max().get());
            rate.push(d.uplink().rate().get());
            num_samples.push(samples);
        }
        Ok(Self {
            f_min,
            alpha,
            cycles_per_sample,
            transmit_power,
            environment: *population.environment(),
            f_max,
            rate,
            num_samples,
        })
    }

    /// Expands back to the array-of-structs [`Population`] (for code
    /// paths that still need a `&[Device]`).
    pub fn to_population(&self) -> Population {
        let devices = (0..self.len()).map(|q| self.device(q)).collect();
        Population::from_devices(devices, self.environment)
    }

    /// Number of devices `Q`.
    #[inline]
    pub fn len(&self) -> usize {
        self.f_max.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.f_max.is_empty()
    }

    /// The shared radio environment.
    #[inline]
    pub fn environment(&self) -> &RadioEnvironment {
        &self.environment
    }

    /// Reconstructs device `q` through the validated constructors —
    /// bit-identical to the `Population` device it was built from.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn device(&self, q: usize) -> Device {
        let range = FrequencyRange::new(self.f_min, Hertz::new(self.f_max[q]))
            .expect("validated at construction");
        let cpu = DvfsCpu::new(range, self.alpha).expect("validated at construction");
        let uplink = Uplink::new(self.transmit_power, BitsPerSecond::new(self.rate[q]))
            .expect("validated at construction");
        Device::new(
            DeviceId(q),
            cpu,
            self.cycles_per_sample,
            self.num_samples[q] as usize,
            uplink,
        )
        .expect("validated at construction")
    }

    /// Materializes the selected cohort as `Device`s — O(selected), the
    /// only per-round array-of-structs allocation a fleet-backed round
    /// needs.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&self, ids: &[DeviceId]) -> Vec<Device> {
        ids.iter().map(|id| self.device(id.0)).collect()
    }

    /// Iterates all devices in id order, reconstructing each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = Device> + '_ {
        (0..self.len()).map(|q| self.device(q))
    }

    /// Replaces device `q`'s dataset size (the partitioner's shard
    /// installation, Alg. 1 line 2).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] for a zero size.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn set_num_samples(&mut self, q: usize, num_samples: u32) -> Result<()> {
        if num_samples == 0 {
            return Err(MecError::NonPositiveParameter { name: "num_samples", value: 0.0 });
        }
        self.num_samples[q] = num_samples;
        Ok(())
    }

    /// Resident bytes of the per-device arrays plus the fixed header —
    /// the quantity `BENCH_population.json` reports per device.
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + self.f_max.capacity() * core::mem::size_of::<f64>()
            + self.rate.capacity() * core::mem::size_of::<f64>()
            + self.num_samples.capacity() * core::mem::size_of::<u32>()
    }
}

/// Dense per-id liveness bitmap for streaming availability.
///
/// The runner used to materialize a filtered `Vec<Device>` of alive
/// devices every round — O(Q) time and memory per round. An
/// `AliveMask` is updated incrementally as batteries deplete and gives
/// O(1) membership checks, so per-round cost stays O(selected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliveMask {
    words: Vec<u64>,
    len: usize,
    alive: usize,
}

impl AliveMask {
    /// A mask of `len` devices, all alive.
    pub fn all_alive(len: usize) -> Self {
        let words = vec![u64::MAX; len.div_ceil(64)];
        Self { words, len, alive: len }
    }

    /// Number of tracked devices (alive or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask tracks zero devices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of currently-alive devices.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Whether device `q` is alive. Out-of-range ids are dead.
    #[inline]
    pub fn is_alive(&self, q: usize) -> bool {
        q < self.len && self.words[q / 64] & (1u64 << (q % 64)) != 0
    }

    /// Marks device `q` dead. Returns `true` if it was alive.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn kill(&mut self, q: usize) -> bool {
        assert!(q < self.len, "device {q} out of range for mask of {}", self.len);
        let bit = 1u64 << (q % 64);
        let was = self.words[q / 64] & bit != 0;
        if was {
            self.words[q / 64] &= !bit;
            self.alive -= 1;
        }
        was
    }

    /// Marks device `q` alive again (battery recharge / rejoin).
    /// Returns `true` if it was dead.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.len()`.
    pub fn revive(&mut self, q: usize) -> bool {
        assert!(q < self.len, "device {q} out of range for mask of {}", self.len);
        let bit = 1u64 << (q % 64);
        let was_dead = self.words[q / 64] & bit == 0;
        if was_dead {
            self.words[q / 64] |= bit;
            self.alive += 1;
        }
        was_dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use crate::units::Bits;

    #[test]
    fn from_population_round_trips_every_device() {
        let pop = PopulationBuilder::paper_default().num_devices(25).seed(11).build().unwrap();
        let fleet = Fleet::from_population(&pop).unwrap();
        assert_eq!(fleet.len(), 25);
        for (q, d) in pop.devices().iter().enumerate() {
            assert_eq!(fleet.device(q), *d, "device {q} did not round-trip");
        }
        assert_eq!(fleet.to_population(), pop);
    }

    #[test]
    fn reconstructed_devices_price_delays_identically() {
        let pop = PopulationBuilder::paper_default().num_devices(10).seed(3).build().unwrap();
        let fleet = Fleet::from_population(&pop).unwrap();
        let payload = Bits::from_megabits(40.0);
        for (q, d) in pop.devices().iter().enumerate() {
            let r = fleet.device(q);
            assert_eq!(r.total_delay_at_max(payload), d.total_delay_at_max(payload));
            assert_eq!(r.compute_delay_at_max(), d.compute_delay_at_max());
        }
    }

    #[test]
    fn gather_materializes_the_cohort_in_order() {
        let pop = PopulationBuilder::paper_default().num_devices(8).seed(5).build().unwrap();
        let fleet = Fleet::from_population(&pop).unwrap();
        let ids = [DeviceId(6), DeviceId(1), DeviceId(3)];
        let cohort = fleet.gather(&ids);
        assert_eq!(cohort.len(), 3);
        for (d, id) in cohort.iter().zip(ids) {
            assert_eq!(d.id(), id);
            assert_eq!(*d, pop.devices()[id.0]);
        }
    }

    #[test]
    fn heterogeneous_shared_parameters_are_rejected() {
        let pop = PopulationBuilder::paper_default().num_devices(4).seed(1).build().unwrap();
        let mut devices = pop.devices().to_vec();
        let odd = Device::new(
            devices[0].id(),
            DvfsCpu::new(
                FrequencyRange::new(Hertz::from_ghz(0.1), Hertz::from_ghz(1.0)).unwrap(),
                devices[0].cpu().alpha(),
            )
            .unwrap(),
            devices[0].cycles_per_sample(),
            devices[0].num_samples(),
            *devices[0].uplink(),
        )
        .unwrap();
        devices[0] = odd;
        let mixed = Population::from_devices(devices, *pop.environment());
        let err = Fleet::from_population(&mixed).unwrap_err();
        assert!(matches!(err, MecError::NonPositiveParameter { name, .. }
            if name.contains("uniform f_min")));
    }

    #[test]
    fn empty_population_is_rejected() {
        let empty = Population::from_devices(Vec::new(), RadioEnvironment::paper_default());
        assert_eq!(Fleet::from_population(&empty).unwrap_err(), MecError::EmptyDeviceSet);
    }

    #[test]
    fn set_num_samples_updates_reconstruction() {
        let pop = PopulationBuilder::paper_default().num_devices(3).seed(2).build().unwrap();
        let mut fleet = Fleet::from_population(&pop).unwrap();
        fleet.set_num_samples(1, 777).unwrap();
        assert_eq!(fleet.device(1).num_samples(), 777);
        assert!(fleet.set_num_samples(1, 0).is_err());
    }

    #[test]
    fn memory_bytes_stays_near_twenty_bytes_per_device() {
        let fleet = PopulationBuilder::paper_default()
            .num_devices(10_000)
            .build_fleet()
            .unwrap();
        let per_device = fleet.memory_bytes() as f64 / fleet.len() as f64;
        assert!(per_device < 32.0, "bytes/device {per_device}");
    }

    #[test]
    fn alive_mask_tracks_kill_and_revive() {
        let mut mask = AliveMask::all_alive(130);
        assert_eq!(mask.len(), 130);
        assert_eq!(mask.alive_count(), 130);
        assert!(mask.is_alive(0) && mask.is_alive(129));
        assert!(!mask.is_alive(130), "out of range is dead");

        assert!(mask.kill(64));
        assert!(!mask.kill(64), "second kill is a no-op");
        assert!(!mask.is_alive(64));
        assert_eq!(mask.alive_count(), 129);

        assert!(mask.revive(64));
        assert!(!mask.revive(64), "second revive is a no-op");
        assert!(mask.is_alive(64));
        assert_eq!(mask.alive_count(), 130);
    }

    #[test]
    fn alive_mask_handles_word_boundaries() {
        let mut mask = AliveMask::all_alive(64);
        for q in 0..64 {
            assert!(mask.kill(q));
        }
        assert_eq!(mask.alive_count(), 0);
        assert!(!mask.is_alive(63));
    }

    #[test]
    fn fleet_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fleet>();
        assert_send_sync::<AliveMask>();
    }
}
