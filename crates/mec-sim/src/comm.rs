//! Per-user uplink: upload delay and energy (paper Eq. 7–8).


use crate::error::{MecError, Result};
use crate::units::{Bits, BitsPerSecond, Joules, Seconds, Watts};

/// A user's uplink to the FL central controller.
///
/// Captures the transmit power `p_q` and the achieved TDMA rate `R_q`
/// (computed once from Eq. 6 via
/// [`RadioEnvironment::uplink_rate`](crate::channel::RadioEnvironment::uplink_rate)).
///
/// # Examples
///
/// ```
/// use mec_sim::comm::Uplink;
/// use mec_sim::units::{Bits, BitsPerSecond, Watts};
///
/// let up = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(8.0))?;
/// let t = up.upload_delay(Bits::from_megabits(40.0));
/// assert_eq!(t.get(), 5.0);
/// assert_eq!(up.upload_energy(Bits::from_megabits(40.0)).get(), 1.0);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uplink {
    power: Watts,
    rate: BitsPerSecond,
}

impl Uplink {
    /// Creates an uplink from transmit power and achieved rate.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] if either quantity is
    /// not strictly positive and finite.
    pub fn new(power: Watts, rate: BitsPerSecond) -> Result<Self> {
        if !(power.get() > 0.0 && power.is_finite()) {
            return Err(MecError::NonPositiveParameter { name: "power", value: power.get() });
        }
        if !(rate.get() > 0.0 && rate.is_finite()) {
            return Err(MecError::NonPositiveParameter { name: "rate", value: rate.get() });
        }
        Ok(Self { power, rate })
    }

    /// Transmit power `p_q`.
    #[inline]
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Achieved uplink rate `R_q`.
    #[inline]
    pub fn rate(&self) -> BitsPerSecond {
        self.rate
    }

    /// Upload delay `T^com = C_model / R_q` (Eq. 7).
    #[inline]
    pub fn upload_delay(&self, payload: Bits) -> Seconds {
        payload / self.rate
    }

    /// Upload energy `E^com = p_q · T^com` (Eq. 8).
    #[inline]
    pub fn upload_energy(&self, payload: Bits) -> Joules {
        self.power * self.upload_delay(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(Uplink::new(Watts::ZERO, BitsPerSecond::from_mbps(1.0)).is_err());
        assert!(Uplink::new(Watts::new(0.2), BitsPerSecond::ZERO).is_err());
        assert!(Uplink::new(Watts::new(f64::NAN), BitsPerSecond::from_mbps(1.0)).is_err());
        assert!(Uplink::new(Watts::new(0.2), BitsPerSecond::new(f64::INFINITY)).is_err());
    }

    #[test]
    fn delay_and_energy_match_eq7_eq8() {
        let up = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(4.0)).unwrap();
        let payload = Bits::from_megabits(40.0);
        assert_eq!(up.upload_delay(payload), Seconds::new(10.0));
        assert_eq!(up.upload_energy(payload), Joules::new(2.0));
    }

    #[test]
    fn energy_is_linear_in_payload() {
        let up = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(4.0)).unwrap();
        let e1 = up.upload_energy(Bits::from_megabits(10.0));
        let e2 = up.upload_energy(Bits::from_megabits(20.0));
        assert!((e2.get() / e1.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_payload_takes_no_time_or_energy() {
        let up = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(4.0)).unwrap();
        assert_eq!(up.upload_delay(Bits::ZERO), Seconds::ZERO);
        assert_eq!(up.upload_energy(Bits::ZERO), Joules::ZERO);
    }
}
