//! Error types for the MEC simulator.

use core::fmt;

use crate::units::Hertz;

/// Errors produced when constructing or operating MEC system models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MecError {
    /// A DVFS range was constructed with `f_min > f_max` or a
    /// non-positive bound.
    InvalidFrequencyRange {
        /// The offending lower bound.
        min: Hertz,
        /// The offending upper bound.
        max: Hertz,
    },
    /// A requested operating frequency lies outside the device's
    /// supported `[f_min, f_max]` range.
    FrequencyOutOfRange {
        /// The requested frequency.
        requested: Hertz,
        /// The supported lower bound.
        min: Hertz,
        /// The supported upper bound.
        max: Hertz,
    },
    /// A model parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An operation that needs at least one device was given none.
    EmptyDeviceSet,
}

impl fmt::Display for MecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidFrequencyRange { min, max } => {
                write!(f, "invalid DVFS frequency range [{min}, {max}]")
            }
            Self::FrequencyOutOfRange { requested, min, max } => {
                write!(
                    f,
                    "frequency {requested} outside supported range [{min}, {max}]"
                )
            }
            Self::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            Self::EmptyDeviceSet => write!(f, "operation requires at least one device"),
        }
    }
}

impl std::error::Error for MecError {}

/// Convenience alias for results carrying a [`MecError`].
pub type Result<T> = core::result::Result<T, MecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MecError::InvalidFrequencyRange {
            min: Hertz::from_ghz(2.0),
            max: Hertz::from_ghz(1.0),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("invalid DVFS"));
        assert!(msg.contains("2000000000 Hz"));

        let e = MecError::NonPositiveParameter { name: "pi", value: -1.0 };
        assert!(e.to_string().contains("`pi`"));

        assert_eq!(
            MecError::EmptyDeviceSet.to_string(),
            "operation requires at least one device"
        );
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MecError>();
    }
}
