//! Heterogeneous user devices (the `v_q` of the paper).


use crate::comm::Uplink;
use crate::cpu::DvfsCpu;
use crate::error::{MecError, Result};
use crate::units::{Bits, Cycles, Hertz, Joules, Seconds};

/// Stable identifier of a user device within a population.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl core::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A user device participating in FL training.
///
/// Bundles the quantities the paper attaches to each `v_q`: a
/// DVFS-capable CPU, the per-sample work `π`, the local dataset size
/// `|D_q|`, and the uplink `(p_q, R_q)`.
///
/// # Examples
///
/// ```
/// use mec_sim::device::{Device, DeviceId};
/// use mec_sim::comm::Uplink;
/// use mec_sim::cpu::DvfsCpu;
/// use mec_sim::units::{Bits, BitsPerSecond, Hertz, Watts};
///
/// let cpu = DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(2.0))?;
/// let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(8.0))?;
/// let dev = Device::new(DeviceId(0), cpu, 1.0e7, 500, uplink)?;
/// // T^cal at f_max: 1e7·500 / 2e9 = 2.5 s; T^com: 40 Mbit / 8 Mbps = 5 s.
/// let total = dev.total_delay_at_max(Bits::from_megabits(40.0));
/// assert_eq!(total.get(), 7.5);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    id: DeviceId,
    cpu: DvfsCpu,
    cycles_per_sample: f64,
    num_samples: usize,
    uplink: Uplink,
}

impl Device {
    /// Creates a device.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] if `cycles_per_sample`
    /// is not strictly positive and finite or `num_samples` is zero.
    pub fn new(
        id: DeviceId,
        cpu: DvfsCpu,
        cycles_per_sample: f64,
        num_samples: usize,
        uplink: Uplink,
    ) -> Result<Self> {
        if !(cycles_per_sample > 0.0 && cycles_per_sample.is_finite()) {
            return Err(MecError::NonPositiveParameter {
                name: "cycles_per_sample",
                value: cycles_per_sample,
            });
        }
        if num_samples == 0 {
            return Err(MecError::NonPositiveParameter { name: "num_samples", value: 0.0 });
        }
        Ok(Self { id, cpu, cycles_per_sample, num_samples, uplink })
    }

    /// The device identifier.
    #[inline]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device CPU model.
    #[inline]
    pub fn cpu(&self) -> &DvfsCpu {
        &self.cpu
    }

    /// Per-sample CPU work `π` in cycles.
    #[inline]
    pub fn cycles_per_sample(&self) -> f64 {
        self.cycles_per_sample
    }

    /// Local dataset size `|D_q|`.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Replaces the local dataset size (used after data partitioning
    /// assigns actual shards).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NonPositiveParameter`] if `num_samples == 0`.
    pub fn set_num_samples(&mut self, num_samples: usize) -> Result<()> {
        if num_samples == 0 {
            return Err(MecError::NonPositiveParameter { name: "num_samples", value: 0.0 });
        }
        self.num_samples = num_samples;
        Ok(())
    }

    /// The uplink to the FLCC.
    #[inline]
    pub fn uplink(&self) -> &Uplink {
        &self.uplink
    }

    /// Total CPU work per local update: `π·|D_q|` cycles.
    #[inline]
    pub fn work(&self) -> Cycles {
        Cycles::new(self.cycles_per_sample * self.num_samples as f64)
    }

    /// Compute delay at frequency `f` (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::FrequencyOutOfRange`] if `f` is unsupported.
    pub fn compute_delay(&self, f: Hertz) -> Result<Seconds> {
        self.cpu.compute_delay(self.work(), f)
    }

    /// Compute delay at the device's maximum frequency.
    #[inline]
    pub fn compute_delay_at_max(&self) -> Seconds {
        self.cpu.compute_delay_at_max(self.work())
    }

    /// Compute energy at frequency `f` (Eq. 5).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::FrequencyOutOfRange`] if `f` is unsupported.
    pub fn compute_energy(&self, f: Hertz) -> Result<Joules> {
        self.cpu.compute_energy(self.work(), f)
    }

    /// Upload delay for a model of `payload` bits (Eq. 7).
    #[inline]
    pub fn upload_delay(&self, payload: Bits) -> Seconds {
        self.uplink.upload_delay(payload)
    }

    /// Upload energy for a model of `payload` bits (Eq. 8).
    #[inline]
    pub fn upload_energy(&self, payload: Bits) -> Joules {
        self.uplink.upload_energy(payload)
    }

    /// Total update-and-upload delay `T_q` at the maximum frequency
    /// (Eq. 9) — the quantity Alg. 2's utility uses.
    #[inline]
    pub fn total_delay_at_max(&self, payload: Bits) -> Seconds {
        self.compute_delay_at_max() + self.upload_delay(payload)
    }

    /// Total delay at an explicit frequency (Eq. 9).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::FrequencyOutOfRange`] if `f` is unsupported.
    pub fn total_delay(&self, f: Hertz, payload: Bits) -> Result<Seconds> {
        Ok(self.compute_delay(f)? + self.upload_delay(payload))
    }

    /// Total energy (compute + upload) at an explicit frequency
    /// (the summand of Eq. 11).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::FrequencyOutOfRange`] if `f` is unsupported.
    pub fn total_energy(&self, f: Hertz, payload: Bits) -> Result<Joules> {
        Ok(self.compute_energy(f)? + self.upload_energy(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{BitsPerSecond, Watts};

    fn device(id: usize, fmax_ghz: f64, samples: usize, mbps: f64) -> Device {
        let cpu =
            DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(fmax_ghz)).unwrap();
        let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(mbps)).unwrap();
        Device::new(DeviceId(id), cpu, 1.0e7, samples, uplink).unwrap()
    }

    #[test]
    fn constructor_validates_work_parameters() {
        let cpu =
            DvfsCpu::with_paper_alpha(Hertz::from_ghz(0.3), Hertz::from_ghz(2.0)).unwrap();
        let uplink = Uplink::new(Watts::new(0.2), BitsPerSecond::from_mbps(4.0)).unwrap();
        assert!(Device::new(DeviceId(0), cpu, 0.0, 10, uplink).is_err());
        assert!(Device::new(DeviceId(0), cpu, 1.0e7, 0, uplink).is_err());
    }

    #[test]
    fn work_is_pi_times_dataset_size() {
        let d = device(0, 2.0, 500, 4.0);
        assert_eq!(d.work(), Cycles::new(5.0e9));
    }

    #[test]
    fn delays_compose_into_total_eq9() {
        let d = device(0, 2.0, 500, 4.0);
        let payload = Bits::from_megabits(40.0);
        let t_cal = d.compute_delay_at_max();
        let t_com = d.upload_delay(payload);
        assert_eq!(d.total_delay_at_max(payload), t_cal + t_com);
        assert_eq!(
            d.total_delay(Hertz::from_ghz(2.0), payload).unwrap(),
            d.total_delay_at_max(payload)
        );
    }

    #[test]
    fn slower_clock_means_longer_delay_less_energy() {
        let d = device(0, 2.0, 500, 4.0);
        let slow = Hertz::from_ghz(1.0);
        let fast = Hertz::from_ghz(2.0);
        assert!(d.compute_delay(slow).unwrap() > d.compute_delay(fast).unwrap());
        assert!(d.compute_energy(slow).unwrap() < d.compute_energy(fast).unwrap());
    }

    #[test]
    fn set_num_samples_updates_work() {
        let mut d = device(0, 2.0, 500, 4.0);
        d.set_num_samples(1000).unwrap();
        assert_eq!(d.work(), Cycles::new(1.0e10));
        assert!(d.set_num_samples(0).is_err());
    }

    #[test]
    fn total_energy_sums_compute_and_upload() {
        let d = device(0, 2.0, 500, 4.0);
        let payload = Bits::from_megabits(40.0);
        let f = Hertz::from_ghz(1.5);
        let total = d.total_energy(f, payload).unwrap();
        let parts = d.compute_energy(f).unwrap() + d.upload_energy(payload);
        assert_eq!(total, parts);
    }

    #[test]
    fn device_id_displays_with_v_prefix() {
        assert_eq!(DeviceId(7).to_string(), "v7");
    }
}
